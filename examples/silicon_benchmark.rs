//! The paper's silicon benchmark in miniature: compare the Ref, Opt-D, Opt-S
//! and Opt-M execution modes (Sec. V-E) on the same crystalline-silicon
//! workload and report ns/day plus the speedup over Ref, i.e. a reduced-size
//! version of Fig. 4 — each run built through the `SimulationBuilder` API.
//!
//! ```bash
//! cargo run --release --example silicon_benchmark [n_atoms] [n_steps]
//! ```

use lammps_tersoff_vector::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_atoms: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4096);
    let n_steps: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);

    let lattice = Lattice::silicon_with_atoms(n_atoms);
    println!(
        "silicon benchmark: {} atoms ({}×{}×{} cells), {} steps per mode\n",
        lattice.n_atoms(),
        lattice.cells[0],
        lattice.cells[1],
        lattice.cells[2],
        n_steps
    );

    let modes = [
        ("Ref", ExecutionMode::Ref, Scheme::Scalar),
        (
            "Opt-D (scheme 1a, 4×f64)",
            ExecutionMode::OptD,
            Scheme::JLanes,
        ),
        (
            "Opt-S (scheme 1b, 16×f32)",
            ExecutionMode::OptS,
            Scheme::FusedLanes,
        ),
        (
            "Opt-M (scheme 1b, 16×f32/f64)",
            ExecutionMode::OptM,
            Scheme::FusedLanes,
        ),
    ];

    let mut reference_time = None;
    println!(
        "{:<32} {:>12} {:>12} {:>10}",
        "mode", "s/step", "ns/day", "speedup"
    );
    for (label, mode, scheme) in modes {
        let (sim_box, atoms) = lattice.build_perturbed(0.05, 11);
        let potential = make_potential(
            TersoffParams::silicon(),
            TersoffOptions {
                mode,
                scheme,
                width: 0,
                threads: 1,
                backend: None,
            },
        );
        let mut sim = Simulation::builder(atoms, sim_box, potential)
            .masses(vec![units::mass::SI])
            .temperature(1000.0, 3)
            .build()
            .expect("valid simulation setup");
        let report = sim.run(n_steps);
        let per_step = report.seconds_per_step();
        let speedup = reference_time.map(|r: f64| r / per_step).unwrap_or(1.0);
        if reference_time.is_none() {
            reference_time = Some(per_step);
        }
        println!(
            "{label:<32} {per_step:>12.5} {:>12.4} {speedup:>9.2}x",
            report.ns_per_day
        );
    }

    println!("\nNote: on this host all modes share one scalar ISA; the paper's");
    println!("cross-architecture numbers are projected by `cargo run -p bench --bin fig4_single_thread`.");
}
