//! Multi-species example: cubic silicon carbide (zincblende SiC) with the
//! Tersoff-1989 mixed parameter set, run with the reference and the
//! vectorized implementation to demonstrate that the optimizations preserve
//! multi-element systems (the correctness concern behind the paper's
//! "filter with the maximum cutoff" rule, Sec. IV-D).
//!
//! ```bash
//! cargo run --release --example sic_alloy
//! ```

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;

fn main() {
    let (sim_box, atoms) = Lattice::silicon_carbide([3, 3, 3]).build_perturbed(0.04, 5);
    let n_si = atoms.type_.iter().filter(|&&t| t == 0).count();
    let n_c = atoms.type_.iter().filter(|&&t| t == 1).count();
    println!(
        "zincblende SiC: {} atoms ({} Si + {} C), box {:.2} Å",
        atoms.n_total(),
        n_si,
        n_c,
        sim_box.lengths()[0]
    );

    let params = TersoffParams::silicon_carbide();
    println!(
        "parameter table: {} elements, {} triplet entries, max cutoff {:.3} Å",
        params.n_elements(),
        params.entries().len(),
        params.max_cutoff
    );

    let list = NeighborList::build_binned(
        &atoms,
        &sim_box,
        NeighborSettings::new(params.max_cutoff, 1.0),
    );
    println!(
        "neighbor list: {:.1} atoms per extended list S_i (max {})",
        list.average_count(),
        list.max_count()
    );

    // Reference (LAMMPS-equivalent) forces.
    let mut reference = TersoffRef::new(params.clone());
    let mut out_ref = ComputeOutput::zeros(atoms.n_total());
    reference.compute(&atoms, &sim_box, &list, &mut out_ref);

    // Vectorized scheme (1b), mixed precision, 16 lanes.
    let mut optimized = make_potential(
        params.clone(),
        TersoffOptions {
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 16,
            threads: 1,
            backend: None,
        },
    );
    let mut out_opt = ComputeOutput::zeros(atoms.n_total());
    optimized.compute(&atoms, &sim_box, &list, &mut out_opt);

    println!("\n{:<28} {:>16} {:>16}", "", "reference", "Opt-M (1b, w16)");
    println!(
        "{:<28} {:>16.6} {:>16.6}",
        "potential energy (eV)", out_ref.energy, out_opt.energy
    );
    println!(
        "{:<28} {:>16.6} {:>16.6}",
        "energy per atom (eV)",
        out_ref.energy / atoms.n_local as f64,
        out_opt.energy / atoms.n_local as f64
    );
    println!(
        "{:<28} {:>16.3e} {:>16.3e}",
        "net force (should be ~0)",
        out_ref.net_force()[0].abs() + out_ref.net_force()[1].abs() + out_ref.net_force()[2].abs(),
        out_opt.net_force()[0].abs() + out_opt.net_force()[1].abs() + out_opt.net_force()[2].abs()
    );
    println!(
        "\nmax |F_ref − F_opt| = {:.3e} eV/Å   relative energy difference = {:.3e}",
        out_ref.max_force_difference(&out_opt),
        ((out_ref.energy - out_opt.energy) / out_ref.energy).abs()
    );
    println!("(the paper's Fig. 3 bounds the corresponding long-run drift at 2e-5)");

    // A short NVE run through the builder API: two species means two masses,
    // and the builder verifies the masses table covers every atom type
    // before anything can index out of bounds.
    let (sim_box, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.02, 5);
    let potential = make_potential(params, TersoffOptions::default());
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI, units::mass::C])
        .temperature(300.0, 9)
        .thermo_every(10)
        .build()
        .expect("valid SiC simulation setup");
    let report = sim.run(50);
    println!(
        "\n50-step NVE check (Opt-M): drift {:.2e}, {} rebuilds, E/atom {:.4} eV",
        report.max_drift,
        report.total_rebuilds,
        report.final_thermo.energy_per_atom(sim.atoms.n_local)
    );
}
