//! Quickstart: run a short NVE simulation of crystalline silicon with the
//! paper's default optimized Tersoff implementation (Opt-M, scheme 1b),
//! built through the `SimulationBuilder` API with console observers.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lammps_tersoff_vector::prelude::*;

fn main() {
    // A 4×4×4 diamond-cubic silicon crystal (512 atoms), slightly perturbed
    // so forces are non-trivial, with velocities drawn for 300 K.
    let (sim_box, atoms) = Lattice::silicon([4, 4, 4]).build_perturbed(0.05, 42);
    println!(
        "system: {} Si atoms in a {:.2} Å box",
        atoms.n_local,
        sim_box.lengths()[0]
    );

    // The paper's Opt-M execution mode: single-precision compute,
    // double-precision accumulation, fused-pair vectorization (scheme 1b)
    // with 16 lanes.
    let options = TersoffOptions::default();
    println!("potential: Tersoff Si(C) 1988, mode {}\n", options.label());
    let potential = make_potential(TersoffParams::silicon(), options);

    // The builder validates the setup (typed BuildError instead of a panic)
    // and the observers replace hand-rolled output loops: ThermoPrinter
    // writes one line per sample, TimingPrinter the breakdown at the end.
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .thermo_every(20)
        .observe(ThermoPrinter::new())
        .observe(TimingPrinter::new())
        .build()
        .expect("valid simulation setup");

    let report = sim.run(100);

    println!("\nneighbor rebuilds: {}", report.total_rebuilds);
    println!("max |ΔE/E₀| over the run: {:.2e}", report.max_drift);
    println!(
        "throughput: {:.3} ns/day on this machine",
        report.ns_per_day
    );
    println!(
        "thermo history holds {} samples (via the default ThermoLog observer)",
        sim.thermo_history().len()
    );
}
