//! Quickstart: run a short NVE simulation of crystalline silicon with the
//! paper's default optimized Tersoff implementation (Opt-M, scheme 1b).
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lammps_tersoff_vector::prelude::*;

fn main() {
    // A 4×4×4 diamond-cubic silicon crystal (512 atoms), slightly perturbed
    // so forces are non-trivial, with velocities drawn for 300 K.
    let (sim_box, mut atoms) = Lattice::silicon([4, 4, 4]).build_perturbed(0.05, 42);
    let masses = vec![units::mass::SI];
    init_velocities(&mut atoms, &masses, 300.0, 7);
    println!(
        "system: {} Si atoms in a {:.2} Å box",
        atoms.n_local,
        sim_box.lengths()[0]
    );

    // The paper's Opt-M execution mode: single-precision compute,
    // double-precision accumulation, fused-pair vectorization (scheme 1b)
    // with 16 lanes.
    let options = TersoffOptions::default();
    println!("potential: Tersoff Si(C) 1988, mode {}", options.label());
    let potential = make_potential(TersoffParams::silicon(), options);

    let config = SimulationConfig {
        masses,
        thermo_every: 20,
        ..Default::default()
    };
    let mut sim = Simulation::new(atoms, sim_box, potential, config);

    println!(
        "\n{:>6} {:>12} {:>14} {:>14} {:>10}",
        "step", "T (K)", "E_pot (eV)", "E_tot (eV)", "drift"
    );
    sim.run(100);
    for t in &sim.thermo_history {
        println!(
            "{:>6} {:>12.2} {:>14.4} {:>14.4} {:>10.2e}",
            t.step,
            t.temperature,
            t.potential,
            t.total,
            (t.total - sim.thermo_history[0].total) / sim.thermo_history[0].total.abs()
        );
    }

    println!("\nneighbor rebuilds: {}", sim.n_rebuilds);
    println!(
        "max |ΔE/E₀| over the run: {:.2e}",
        sim.drift.max_relative_drift()
    );
    println!("throughput: {:.3} ns/day on this machine", sim.ns_per_day());
    println!("\ntimer breakdown:\n{}", sim.timers.report());
}
