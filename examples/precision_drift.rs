//! A miniature of the paper's Fig. 3: track the relative difference of the
//! total energy between the single-precision and the double-precision solver
//! over an NVE trajectory (the paper runs 32 000 atoms for a million steps
//! and finds the deviation stays within 0.002%).
//!
//! The experiment is *declared*, not hand-assembled: this example executes
//! the committed `scenarios/precision_drift.json` spec — the same file the
//! `tersoff-run` batch CLI smokes in CI — whose mode matrix produces the
//! Opt-D and Opt-S trajectories differenced below.
//!
//! ```bash
//! cargo run --release --example precision_drift [n_steps]
//! ```

use lammps_tersoff_vector::prelude::*;
use tersoff::driver::ExecutionMode;

const SPEC: &str = include_str!("../scenarios/precision_drift.json");

fn main() {
    let mut scenario = Scenario::from_json(SPEC).expect("embedded scenario is valid");
    if let Some(steps) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        scenario.run.steps = steps;
        scenario.run.thermo_every = (steps / 20).max(1);
    }

    println!(
        "running {} Si atoms for {} steps in double and single precision...",
        scenario.n_atoms(),
        scenario.run.steps
    );
    let outcome = scenario.execute(None).expect("scenario runs");
    let trace = |mode: ExecutionMode| {
        &outcome
            .variants
            .iter()
            .find(|v| v.variant.mode == mode)
            .expect("matrix declares this mode")
            .trace
    };
    let double = trace(ExecutionMode::OptD);
    let single = trace(ExecutionMode::OptS);

    println!(
        "\n{:>8} {:>18} {:>18} {:>14}",
        "step", "E_tot double (eV)", "E_tot single (eV)", "|ΔE|/|E|"
    );
    let mut worst = 0.0f64;
    for (d, s) in double.iter().zip(single.iter()) {
        let rel = ((s.total - d.total) / d.total).abs();
        worst = worst.max(rel);
        println!(
            "{:>8} {:>18.6} {:>18.6} {rel:>14.3e}",
            d.step, d.total, s.total
        );
    }
    println!("\nworst relative deviation: {worst:.3e}");
    println!("paper (Fig. 3, 32 000 atoms, 10⁶ steps): stays below 2.0e-5");
    if worst < 2.0e-4 {
        println!("→ single precision is adequate for this workload, as the paper concludes.");
    }
}
