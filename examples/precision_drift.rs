//! A miniature of the paper's Fig. 3: track the relative difference of the
//! total energy between the single-precision and the double-precision solver
//! over an NVE trajectory (the paper runs 32 000 atoms for a million steps
//! and finds the deviation stays within 0.002%).
//!
//! ```bash
//! cargo run --release --example precision_drift [n_steps]
//! ```

use lammps_tersoff_vector::prelude::*;

fn run_trajectory(mode: ExecutionMode, steps: u64, sample_every: u64) -> Vec<(u64, f64)> {
    let (sim_box, mut atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.02, 9);
    let masses = vec![units::mass::SI];
    init_velocities(&mut atoms, &masses, 600.0, 13);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 1,
            backend: None,
        },
    );
    let config = SimulationConfig {
        masses,
        thermo_every: sample_every,
        ..Default::default()
    };
    let mut sim = Simulation::new(atoms, sim_box, potential, config);
    sim.run(steps);
    sim.thermo_history
        .iter()
        .map(|t| (t.step, t.total))
        .collect()
}

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let sample_every = (steps / 20).max(1);

    println!(
        "running {} Si atoms for {steps} steps in double and single precision...",
        8 * 27
    );
    let double = run_trajectory(ExecutionMode::OptD, steps, sample_every);
    let single = run_trajectory(ExecutionMode::OptS, steps, sample_every);

    println!(
        "\n{:>8} {:>18} {:>18} {:>14}",
        "step", "E_tot double (eV)", "E_tot single (eV)", "|ΔE|/|E|"
    );
    let mut worst = 0.0f64;
    for ((step, e_d), (_, e_s)) in double.iter().zip(single.iter()) {
        let rel = ((e_s - e_d) / e_d).abs();
        worst = worst.max(rel);
        println!("{step:>8} {e_d:>18.6} {e_s:>18.6} {rel:>14.3e}");
    }
    println!("\nworst relative deviation: {worst:.3e}");
    println!("paper (Fig. 3, 32 000 atoms, 10⁶ steps): stays below 2.0e-5");
    if worst < 2.0e-4 {
        println!("→ single precision is adequate for this workload, as the paper concludes.");
    }
}
