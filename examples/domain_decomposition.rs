//! Domain decomposition example: run the **full distributed timestep** over
//! a grid of ranks (the in-process analog of LAMMPS' MPI decomposition used
//! by the paper's node and cluster runs) — per-rank integration and neighbor
//! builds, atom migration, ghost exchange as halo messages — and verify the
//! trajectory is **bitwise identical** to the single-domain driver for every
//! grid.
//!
//! ```bash
//! cargo run --release --example domain_decomposition
//! ```

use lammps_tersoff_vector::prelude::*;

const STEPS: u64 = 60;

fn setup() -> SimulationBuilder<impl Potential> {
    let (sim_box, atoms) = Lattice::silicon([4, 4, 4]).build_perturbed(0.03, 21);
    Simulation::builder(
        atoms,
        sim_box,
        make_potential(TersoffParams::silicon(), TersoffOptions::default()),
    )
    .masses(vec![units::mass::SI])
    .temperature(1500.0, 7)
    .thermo_every(10)
    .threads(0) // auto: all available cores, result is thread-count independent
}

fn main() {
    // Single-domain reference trajectory.
    let mut single = setup().build().expect("valid setup");
    let reference = single.run(STEPS);
    println!(
        "system: {} Si atoms, box {:.2} Å — {} steps, E = {:.6} eV",
        single.atoms.n_local,
        single.sim_box.lengths()[0],
        STEPS,
        reference.final_thermo.total,
    );

    println!(
        "\n{:<8} {:>6} {:>11} {:>12} {:>10} {:>14} {:>8} {:>8}",
        "grid", "ranks", "atoms/rank", "ghost frac", "migrated", "energy (eV)", "comm %", "bitwise"
    );
    for grid in [[1, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let mut dom = DomainSimulation::new(setup(), grid).expect("valid grid");
        let report = dom.run(STEPS);
        let energy = report.final_thermo.total;
        let bitwise = energy.to_bits() == reference.final_thermo.total.to_bits();

        let timers = &dom.sim().timers;
        let total: f64 = Stage::ALL.iter().map(|&s| timers.seconds(s)).sum();
        let comm = timers.seconds(Stage::Comm) + timers.seconds(Stage::Migrate);
        let per_rank = dom.atoms_per_rank();

        println!(
            "{:<8} {:>6} {:>11} {:>12.3} {:>10} {:>14.6} {:>8.2} {:>8}",
            format!("{}x{}x{}", grid[0], grid[1], grid[2]),
            dom.n_ranks(),
            format!(
                "{}-{}",
                per_rank.iter().min().unwrap(),
                per_rank.iter().max().unwrap()
            ),
            dom.ghost_fraction(),
            dom.migrations(),
            energy,
            100.0 * comm / total.max(1e-12),
            if bitwise { "yes" } else { "NO" },
        );
        assert!(
            bitwise,
            "grid {grid:?} diverged from the single-domain trajectory"
        );
    }

    println!("\nEvery decomposition reproduces the single-domain trajectory bit for bit;");
    println!("the growing ghost fraction is the surface-to-volume communication cost");
    println!("behind the strong-scaling behaviour of the paper's Fig. 9.");
}
