//! Domain decomposition example: split a silicon crystal over a grid of
//! ranks (the in-process analog of LAMMPS' MPI decomposition used by the
//! paper's node and cluster runs), exchange ghost atoms, compute Tersoff
//! forces per rank, fold ghost forces back, and verify the result against a
//! single-domain computation.
//!
//! ```bash
//! cargo run --release --example domain_decomposition
//! ```

#![allow(clippy::needless_range_loop)] // stencil-style 0..3 loops are intentional

use lammps_tersoff_vector::prelude::*;
use md_core::decomposition::DecomposedSystem;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;

fn main() {
    let (sim_box, atoms) = Lattice::silicon([4, 4, 4]).build_perturbed(0.05, 21);
    println!(
        "system: {} Si atoms, box {:.2} Å",
        atoms.n_local,
        sim_box.lengths()[0]
    );

    // Single-domain reference forces.
    let params = TersoffParams::silicon();
    let skin = 1.0;
    let mut single = TersoffRef::new(params.clone());
    let list = NeighborList::build_binned(
        &atoms,
        &sim_box,
        NeighborSettings::new(params.max_cutoff, skin),
    );
    let mut reference = ComputeOutput::zeros(atoms.n_total());
    single.compute(&atoms, &sim_box, &list, &mut reference);
    println!("single-domain energy: {:.6} eV", reference.energy);

    println!(
        "\n{:<10} {:>8} {:>12} {:>14} {:>16} {:>12}",
        "grid", "ranks", "ghost frac", "energy (eV)", "max |ΔF| (eV/Å)", "comm (ms)"
    );
    // One shared runtime: ghost exchange and the per-rank neighbor rebuilds
    // all dispatch through the same worker team (results are bitwise
    // identical for any thread count).
    let runtime = ParallelRuntime::new(0);
    for grid in [[1, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let mut dec = DecomposedSystem::new(&atoms, sim_box, grid);
        dec.use_runtime(&runtime);
        dec.exchange_ghosts(params.max_cutoff + skin);
        dec.compute_forces(|| TersoffRef::new(params.clone()), skin);

        let forces = dec.collect_forces();
        let mut max_diff = 0.0f64;
        for i in 0..atoms.n_local {
            let f = forces[&atoms.id[i]];
            for d in 0..3 {
                max_diff = max_diff.max((f[d] - reference.forces[i][d]).abs());
            }
        }
        println!(
            "{:<10} {:>8} {:>12.3} {:>14.6} {:>16.3e} {:>12.3}",
            format!("{}x{}x{}", grid[0], grid[1], grid[2]),
            dec.n_ranks(),
            dec.ghost_fraction(),
            dec.total_energy(),
            max_diff,
            dec.timers.seconds(Stage::Comm) * 1e3
        );
    }

    println!("\nEvery decomposition reproduces the single-domain energy and forces;");
    println!("the growing ghost fraction is the surface-to-volume communication cost");
    println!("behind the strong-scaling behaviour of the paper's Fig. 9.");
}
