//! The decomposed-timestep contract, end to end: a [`DomainSimulation`]
//! produces a **bitwise identical** trajectory to the single-domain
//! [`Simulation`] for every rank grid at every thread count, migrates atoms
//! between ranks without losing any, and aborts on an injected fault at the
//! same deterministic step regardless of how the box is decomposed.

use lammps_tersoff_vector::prelude::*;

const STEPS: u64 = 60;

/// A hot Lennard-Jones silicon lattice: cheap enough to sweep the whole
/// grid × threads matrix, hot enough that the run rebuilds its neighbor
/// list and migrates atoms across rank boundaries.
fn lj_builder(threads: usize) -> SimulationBuilder<LennardJones> {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.02, 13);
    Simulation::builder(atoms, sim_box, LennardJones::new(0.1, 2.0, 4.0))
        .masses(vec![units::mass::SI])
        .temperature(3000.0, 11)
        .thermo_every(5)
        .threads(threads)
}

/// Everything a trajectory can disagree on, bit for bit.
#[derive(PartialEq, Debug)]
struct Trace {
    thermo: Vec<(u64, [u64; 4])>,
    x: Vec<[u64; 3]>,
    v: Vec<[u64; 3]>,
    final_total: u64,
    rebuilds: u64,
}

fn trace_of(sim: &Simulation<impl Potential>, report: &RunReport) -> Trace {
    let bits = |rows: &[[f64; 3]]| {
        rows.iter()
            .map(|r| [r[0].to_bits(), r[1].to_bits(), r[2].to_bits()])
            .collect::<Vec<_>>()
    };
    Trace {
        thermo: sim
            .thermo_history()
            .iter()
            .map(|t| {
                (
                    t.step,
                    [
                        t.kinetic.to_bits(),
                        t.potential.to_bits(),
                        t.total.to_bits(),
                        t.pressure.to_bits(),
                    ],
                )
            })
            .collect(),
        x: bits(&sim.atoms.x[..sim.atoms.n_local]),
        v: bits(&sim.atoms.v[..sim.atoms.n_local]),
        final_total: report.final_thermo.total.to_bits(),
        rebuilds: report.total_rebuilds,
    }
}

fn single_domain_trace(threads: usize) -> Trace {
    let mut sim = lj_builder(threads).build().expect("valid setup");
    let report = sim.run(STEPS);
    trace_of(&sim, &report)
}

#[test]
fn decomposed_runs_are_bitwise_identical_for_every_grid_and_thread_count() {
    let reference = single_domain_trace(1);
    assert!(
        reference.rebuilds > 1,
        "trajectory must exercise rebuilds (got {})",
        reference.rebuilds
    );
    for grid in [[2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        for threads in [1usize, 2, 4, 8] {
            let mut dom = DomainSimulation::new(lj_builder(threads), grid).expect("valid grid");
            let report = dom.run(STEPS);
            let trace = trace_of(dom.sim(), &report);
            assert_eq!(
                trace, reference,
                "grid {grid:?} at {threads} threads diverged from single-domain"
            );
        }
    }
}

#[test]
fn migration_conserves_atoms_and_reproduces_the_single_domain_trajectory() {
    let reference = single_domain_trace(1);
    let mut dom = DomainSimulation::new(lj_builder(4), [2, 2, 1]).expect("valid grid");
    let n_atoms = dom.sim().atoms.n_local;
    let report = dom.run(STEPS);

    assert!(
        dom.migrations() > 0,
        "a hot run must hand atoms across rank boundaries"
    );
    let per_rank = dom.atoms_per_rank();
    assert_eq!(per_rank.len(), 4);
    assert_eq!(
        per_rank.iter().sum::<usize>(),
        n_atoms,
        "migration lost or duplicated atoms: {per_rank:?}"
    );
    assert!(
        per_rank.iter().all(|&n| n > 0),
        "every rank should keep a share of the lattice: {per_rank:?}"
    );
    assert_eq!(
        trace_of(dom.sim(), &report),
        reference,
        "migrating run diverged from the single-domain trajectory"
    );
}

#[test]
fn health_fault_aborts_the_decomposed_run_at_the_same_step_for_every_grid() {
    let diverge = |grid: Option<[usize; 3]>| {
        let builder = lj_builder(2)
            .inject_fault(FaultPlan::new(FaultKind::Nan, 4))
            .observe(HealthGuard::new(HealthSettings::default()));
        let result = match grid {
            None => builder.build().expect("valid setup").try_run(20),
            Some(g) => DomainSimulation::new(builder, g)
                .expect("valid grid")
                .try_run(20),
        };
        match result {
            Err(RunError::Diverged {
                step,
                reason,
                report,
            }) => {
                assert!(
                    matches!(report.status, RunStatus::Diverged { .. }),
                    "partial report must record the abort"
                );
                assert!(report.steps < 20, "the run must stop early");
                (step, reason)
            }
            other => panic!("expected Diverged for grid {grid:?}, got {other:?}"),
        }
    };

    let (step, reason) = diverge(None);
    assert_eq!(step, 4, "NaN injected at step 4 must be caught at step 4");
    for grid in [[2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let (dec_step, dec_reason) = diverge(Some(grid));
        assert_eq!(
            (dec_step, &dec_reason),
            (step, &reason),
            "grid {grid:?}: fault abort must not depend on the decomposition"
        );
    }
}
