//! Cross-backend physics invariance at kernel granularity.
//!
//! Every optimized kernel owns one `vektor` backend instance
//! (portable / avx2 / avx512), monomorphized through the
//! `vektor::dispatch::run_kernel` trampoline. Forcing any supported
//! instance through `TersoffOptions::backend` has to reproduce the portable
//! results **bit for bit** — forces, energy, virial and a whole thermo
//! trace — for every mode×scheme, threaded. This is the system-level
//! counterpart of `crates/vektor/tests/backend_equivalence.rs` (which
//! checks the per-op wrappers and a synthetic trampolined kernel) applied
//! to the *real* multiversioned kernel instances, and the guarantee that
//! lets `VEKTOR_BACKEND` be a pure speed knob.
//!
//! Dispatch is kernel-granular and there is no process-global state, so
//! these tests need no serialization: two potentials with different forced
//! backends coexist in one process (asserted below).

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;

fn supported_backends() -> Vec<BackendImpl> {
    BackendImpl::ALL
        .into_iter()
        .filter(|&b| dispatch::supported(b))
        .collect()
}

fn compute_under(options: TersoffOptions) -> ComputeOutput {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.06, 2024);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    let mut pot = make_potential(TersoffParams::silicon(), options);
    let mut out = ComputeOutput::zeros(atoms.n_total());
    pot.compute(&atoms, &sim_box, &list, &mut out);
    out
}

fn assert_bitwise(reference: &ComputeOutput, out: &ComputeOutput, what: &str) {
    assert_eq!(
        reference.energy.to_bits(),
        out.energy.to_bits(),
        "{what}: energy differs"
    );
    assert_eq!(
        reference.virial.to_bits(),
        out.virial.to_bits(),
        "{what}: virial differs"
    );
    for (i, (a, b)) in reference.forces.iter().zip(out.forces.iter()).enumerate() {
        for d in 0..3 {
            assert_eq!(
                a[d].to_bits(),
                b[d].to_bits(),
                "{what}: force[{i}][{d}] differs"
            );
        }
    }
}

#[test]
fn forces_are_bitwise_identical_across_backends() {
    for mode in [
        ExecutionMode::Ref,
        ExecutionMode::OptD,
        ExecutionMode::OptS,
        ExecutionMode::OptM,
    ] {
        for scheme in [
            Scheme::Scalar,
            Scheme::JLanes,
            Scheme::FusedLanes,
            Scheme::ILanes,
        ] {
            let base = TersoffOptions {
                mode,
                scheme,
                width: 0,
                threads: 2,
                backend: Some(BackendImpl::Portable),
            };
            let reference = compute_under(base);
            for backend in supported_backends() {
                let out = compute_under(TersoffOptions {
                    backend: Some(backend),
                    ..base
                });
                assert_bitwise(
                    &reference,
                    &out,
                    &format!("{mode:?}/{scheme:?} under {backend}"),
                );
            }
        }
    }
}

/// Explicit widths that engage the hardware paths the default widths miss:
/// the AVX-512 instance's hardware scatter needs scheme (1a) at `f64 × 8` /
/// `f32 × 16` (the default 1a widths are 4/8, which chunk through AVX2),
/// and `f64 × 16` exercises the multi-chunk gathers of both intrinsic
/// implementations.
#[test]
fn forces_are_bitwise_identical_at_hardware_scatter_widths() {
    for (mode, width) in [
        (ExecutionMode::OptD, 8),
        (ExecutionMode::OptD, 16),
        (ExecutionMode::OptS, 16),
        (ExecutionMode::OptM, 16),
    ] {
        let base = TersoffOptions {
            mode,
            scheme: Scheme::JLanes,
            width,
            threads: 2,
            backend: Some(BackendImpl::Portable),
        };
        let reference = compute_under(base);
        for backend in supported_backends() {
            let out = compute_under(TersoffOptions {
                backend: Some(backend),
                ..base
            });
            assert_bitwise(
                &reference,
                &out,
                &format!("{mode:?}/1a/w{width} under {backend}"),
            );
        }
    }
}

fn thermo_trace(backend: BackendImpl) -> Vec<(u64, u64, u64)> {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 7);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default()
            .with_threads(2)
            .with_backend(backend),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(600.0, 3)
        .thermo_every(5)
        .build()
        .expect("valid setup");
    sim.run(25);
    sim.thermo_history()
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect()
}

#[test]
fn thermo_trace_is_bitwise_identical_per_backend() {
    let backends = supported_backends();
    let reference = thermo_trace(BackendImpl::Portable);
    assert!(!reference.is_empty());
    for &backend in &backends {
        // Deterministic per backend (repeat run), and identical across
        // backends (vs the portable trace).
        let first = thermo_trace(backend);
        let second = thermo_trace(backend);
        assert_eq!(first, second, "{backend} trace not deterministic");
        assert_eq!(first, reference, "{backend} trace differs from portable");
    }
}

#[test]
fn options_resolve_and_kernels_report_their_instance() {
    let auto = TersoffOptions::default();
    assert!(dispatch::supported(auto.resolved_backend()));
    let forced = TersoffOptions::default().with_backend(BackendImpl::Portable);
    assert_eq!(forced.resolved_backend(), BackendImpl::Portable);
    // A request beyond host support clamps to something runnable.
    let clamped = TersoffOptions::default().with_backend(BackendImpl::Avx512);
    assert!(dispatch::supported(clamped.resolved_backend()));
    // The built potential carries exactly the resolved instance and reports
    // it through the engine wrapper.
    let pot = make_potential(TersoffParams::silicon(), forced);
    assert_eq!(pot.executed_backend(), Some("portable"));
    let pot = make_potential(TersoffParams::silicon(), auto);
    assert_eq!(pot.executed_backend(), Some(auto.resolved_backend().name()));
}

#[test]
fn kernels_with_different_backends_coexist() {
    // Kernel-granular dispatch: building a second potential must not change
    // what the first one executes (the retired design had process-global
    // state where the latest resolution won). Actually *compute* with both
    // potentials, interleaved, so a regression to shared compute-time state
    // could not hide behind each instance's stored field.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.06, 99);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    let mut portable = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_backend(BackendImpl::Portable),
    );
    let mut fast = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_backend(dispatch::detect_best()),
    );
    assert_eq!(portable.executed_backend(), Some("portable"));
    assert_eq!(
        fast.executed_backend(),
        Some(dispatch::detect_best().name())
    );

    let mut out_portable_1 = ComputeOutput::zeros(atoms.n_total());
    let mut out_fast = ComputeOutput::zeros(atoms.n_total());
    let mut out_portable_2 = ComputeOutput::zeros(atoms.n_total());
    portable.compute(&atoms, &sim_box, &list, &mut out_portable_1);
    fast.compute(&atoms, &sim_box, &list, &mut out_fast);
    // The portable instance computes identically after the fast instance
    // ran, and both instances agree bitwise.
    portable.compute(&atoms, &sim_box, &list, &mut out_portable_2);
    assert_bitwise(&out_portable_1, &out_fast, "portable vs fast instance");
    assert_bitwise(
        &out_portable_1,
        &out_portable_2,
        "portable recompute after fast instance ran",
    );
    assert_eq!(portable.executed_backend(), Some("portable"));
}
