//! Cross-backend physics invariance.
//!
//! The `vektor` runtime dispatch (portable / avx2 / avx512) must be
//! invisible to the simulation: forcing any supported backend through
//! `TersoffOptions::backend` has to reproduce the portable results **bit
//! for bit** — forces, energy, virial and a whole thermo trace. This is the
//! system-level counterpart of `crates/vektor/tests/backend_equivalence.rs`
//! and the guarantee that lets `VEKTOR_BACKEND` be a pure speed knob.

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;
use std::sync::Mutex;

/// `make_potential` resolves `TersoffOptions::backend` into vektor's
/// process-global dispatch state; serialize the tests in this binary so no
/// test observes another's forced backend (results are backend-invariant —
/// that is the point of this file — but assertions on `dispatch::active()`
/// are not).
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

fn supported_backends() -> Vec<BackendImpl> {
    BackendImpl::ALL
        .into_iter()
        .filter(|&b| dispatch::supported(b))
        .collect()
}

fn compute_under(options: TersoffOptions) -> ComputeOutput {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.06, 2024);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    let mut pot = make_potential(TersoffParams::silicon(), options);
    let mut out = ComputeOutput::zeros(atoms.n_total());
    pot.compute(&atoms, &sim_box, &list, &mut out);
    out
}

#[test]
fn forces_are_bitwise_identical_across_backends() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in [
        ExecutionMode::Ref,
        ExecutionMode::OptD,
        ExecutionMode::OptS,
        ExecutionMode::OptM,
    ] {
        for scheme in [
            Scheme::Scalar,
            Scheme::JLanes,
            Scheme::FusedLanes,
            Scheme::ILanes,
        ] {
            let base = TersoffOptions {
                mode,
                scheme,
                width: 0,
                threads: 2,
                backend: Some(BackendImpl::Portable),
            };
            let reference = compute_under(base);
            for backend in supported_backends() {
                let out = compute_under(TersoffOptions {
                    backend: Some(backend),
                    ..base
                });
                assert_eq!(
                    reference.energy.to_bits(),
                    out.energy.to_bits(),
                    "{mode:?}/{scheme:?} energy differs under {backend}"
                );
                assert_eq!(
                    reference.virial.to_bits(),
                    out.virial.to_bits(),
                    "{mode:?}/{scheme:?} virial differs under {backend}"
                );
                for (i, (a, b)) in reference.forces.iter().zip(out.forces.iter()).enumerate() {
                    for d in 0..3 {
                        assert_eq!(
                            a[d].to_bits(),
                            b[d].to_bits(),
                            "{mode:?}/{scheme:?} force[{i}][{d}] differs under {backend}"
                        );
                    }
                }
            }
        }
    }
}

fn thermo_trace(backend: BackendImpl) -> Vec<(u64, u64, u64)> {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 7);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default()
            .with_threads(2)
            .with_backend(backend),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(600.0, 3)
        .thermo_every(5)
        .build()
        .expect("valid setup");
    sim.run(25);
    sim.thermo_history()
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect()
}

#[test]
fn thermo_trace_is_bitwise_identical_per_backend() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let backends = supported_backends();
    let reference = thermo_trace(BackendImpl::Portable);
    assert!(!reference.is_empty());
    for &backend in &backends {
        // Deterministic per backend (repeat run), and identical across
        // backends (vs the portable trace).
        let first = thermo_trace(backend);
        let second = thermo_trace(backend);
        assert_eq!(first, second, "{backend} trace not deterministic");
        assert_eq!(first, reference, "{backend} trace differs from portable");
    }
}

#[test]
fn options_resolve_and_report_the_backend() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let auto = TersoffOptions::default();
    assert!(dispatch::supported(auto.resolved_backend()));
    let forced = TersoffOptions::default().with_backend(BackendImpl::Portable);
    assert_eq!(forced.resolved_backend(), BackendImpl::Portable);
    // A request beyond host support clamps to something runnable.
    let clamped = TersoffOptions::default().with_backend(BackendImpl::Avx512);
    assert!(dispatch::supported(clamped.resolved_backend()));
    // Building a potential activates the request.
    let _pot = make_potential(TersoffParams::silicon(), forced);
    assert_eq!(dispatch::active(), BackendImpl::Portable);
    // Auto-resolution restores the environment/detection default.
    let _pot = make_potential(TersoffParams::silicon(), auto);
    assert_eq!(dispatch::active(), dispatch::default_backend());
}
