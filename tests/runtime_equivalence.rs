//! The `ParallelRuntime` thread-count contract: the **whole timestep** —
//! force computation, neighbor rebuilds, ghost exchange, velocity-Verlet
//! updates, kinetic-energy reductions — produces **bitwise identical**
//! results for every thread count.
//!
//! This is what fixed chunk boundaries (depending only on the problem size)
//! plus ordered chunk merges buy: floating-point summation order never
//! depends on how many workers execute the chunks, so a 1-thread run and an
//! 8-thread run agree to the last bit. (Under a forced `TERSOFF_THREADS`
//! environment the thread counts below all resolve to the same value and the
//! assertions hold trivially — which is exactly why CI can force the whole
//! suite multi-threaded.)

use lammps_tersoff_vector::prelude::*;

/// A thermo trace with every energy field bit-exact, from a hot trajectory
/// that rebuilds its neighbor list during the measured window.
fn full_step_trace(threads: usize, builder_owns_runtime: bool) -> (Vec<(u64, [u64; 4])>, u64) {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.03, 41);
    // The potential requests 1 thread when the builder supplies the runtime,
    // so the builder's bind_runtime is what makes it parallel.
    let pot_threads = if builder_owns_runtime { 1 } else { threads };
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(pot_threads),
    );
    let mut builder = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(1500.0, 17) // hot: forces rebuilds within the run
        .thermo_every(10);
    if builder_owns_runtime {
        builder = builder.threads(threads);
    }
    let mut sim = builder.build().expect("valid setup");
    let report = sim.run(120);
    let trace = sim
        .thermo_history()
        .iter()
        .map(|t| {
            (
                t.step,
                [
                    t.kinetic.to_bits(),
                    t.potential.to_bits(),
                    t.total.to_bits(),
                    t.pressure.to_bits(),
                ],
            )
        })
        .collect();
    (trace, report.total_rebuilds)
}

#[test]
fn full_step_is_bitwise_identical_across_thread_counts() {
    let (reference, ref_rebuilds) = full_step_trace(1, false);
    assert!(
        ref_rebuilds > 1,
        "trajectory must exercise neighbor rebuilds (got {ref_rebuilds})"
    );
    for threads in [2usize, 4, 8] {
        let (trace, rebuilds) = full_step_trace(threads, false);
        assert_eq!(
            rebuilds, ref_rebuilds,
            "t{threads}: rebuild schedule diverged"
        );
        assert_eq!(
            trace, reference,
            "t{threads}: thermo trace is not bitwise identical to t1"
        );
    }
}

#[test]
fn builder_owned_runtime_matches_engine_owned_runtime_bitwise() {
    // `SimulationBuilder::threads(n)` re-binds the potential onto the
    // builder's runtime; the result must equal a potential that brought its
    // own n-thread runtime — and, by the contract above, the t1 run.
    let (reference, _) = full_step_trace(1, false);
    for threads in [2usize, 4] {
        let (trace, _) = full_step_trace(threads, true);
        assert_eq!(
            trace, reference,
            "builder-owned runtime t{threads} diverged"
        );
    }
}

#[test]
fn decomposed_timestep_is_bitwise_across_thread_counts() {
    // The full distributed timestep — per-rank integration, halo refresh,
    // atom migration, ghost exchange, per-rank neighbor builds — dispatches
    // through the same shared runtime as the single-domain step, so its
    // trajectory must also be bitwise identical for every thread count.
    let run = |threads: usize| {
        let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.03, 41);
        let potential = make_potential(
            TersoffParams::silicon(),
            TersoffOptions::default().with_threads(1),
        );
        let builder = Simulation::builder(atoms, sim_box, potential)
            .masses(vec![units::mass::SI])
            .temperature(1500.0, 17) // hot: forces rebuilds and migrations
            .thermo_every(10)
            .threads(threads);
        let mut dom = DomainSimulation::new(builder, [2, 2, 1]).expect("valid grid");
        let report = dom.run(120);

        let trace: Vec<(u64, [u64; 4])> = dom
            .sim()
            .thermo_history()
            .iter()
            .map(|t| {
                (
                    t.step,
                    [
                        t.kinetic.to_bits(),
                        t.potential.to_bits(),
                        t.total.to_bits(),
                        t.pressure.to_bits(),
                    ],
                )
            })
            .collect();
        let mut forces = Vec::new();
        dom.collect_forces_into(&mut forces);
        let force_bits: Vec<[u64; 3]> = forces
            .iter()
            .map(|f| [f[0].to_bits(), f[1].to_bits(), f[2].to_bits()])
            .collect();
        (
            trace,
            force_bits,
            report.total_rebuilds,
            dom.migrations(),
            dom.atoms_per_rank(),
            dom.ghost_fraction().to_bits(),
        )
    };

    let reference = run(1);
    assert!(
        reference.2 > 1,
        "trajectory must exercise neighbor rebuilds (got {})",
        reference.2
    );
    assert!(
        reference.3 > 0,
        "trajectory must migrate atoms across ranks"
    );
    assert!(f64::from_bits(reference.5) > 0.0, "ranks must have ghosts");
    for threads in [2usize, 4, 8] {
        let result = run(threads);
        assert_eq!(
            result.0, reference.0,
            "t{threads}: decomposed thermo trace not bitwise identical"
        );
        assert_eq!(
            result.1, reference.1,
            "t{threads}: decomposed forces not bitwise identical"
        );
        assert_eq!(
            result.2, reference.2,
            "t{threads}: rebuild schedule diverged"
        );
        assert_eq!(
            result.3, reference.3,
            "t{threads}: migration count diverged"
        );
        assert_eq!(result.4, reference.4, "t{threads}: rank occupancy diverged");
        assert_eq!(result.5, reference.5, "t{threads}: ghost fraction diverged");
    }
}
