//! Heap-allocation audit of the steady-state hot paths.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! evaluation (which builds the reusable filter/scratch/pool buffers), the
//! audited paths must perform **zero** heap allocations per step: the force
//! computation for every kernel family, the whole simulation step, the
//! runtime-parallel neighbor rebuild (both inside a hot rebuild-forcing
//! trajectory and in isolation), and the steady-state rank loop of the
//! decomposed timestep (integration, halo refresh, migration, ghost
//! exchange, per-rank rebuilds). The `ParallelRuntime`'s condvar job hand-off is what
//! keeps multi-thread dispatch off the heap.
//!
//! Everything lives in a single `#[test]` so no concurrent test case can
//! pollute the counter.

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_force_loop_performs_zero_allocations() {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 11);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    let mut out = ComputeOutput::zeros(atoms.n_total());

    // Every kernel family, single-threaded and through the threaded engine.
    // The Opt-D cases also audit the A = f64 direct-write path (forces
    // accumulate straight into the per-thread `ComputeOutput`, no
    // accumulation-precision double buffer).
    let cases = [
        ("Ref/t1", ExecutionMode::Ref, Scheme::Scalar, 1usize),
        ("Opt-D/scalar/t1", ExecutionMode::OptD, Scheme::Scalar, 1),
        ("Opt-D/1a/t1", ExecutionMode::OptD, Scheme::JLanes, 1),
        ("Opt-D/1b/t1", ExecutionMode::OptD, Scheme::FusedLanes, 1),
        ("Opt-M/1b/t1", ExecutionMode::OptM, Scheme::FusedLanes, 1),
        ("Opt-D/1c/t1", ExecutionMode::OptD, Scheme::ILanes, 1),
        ("Ref/t2", ExecutionMode::Ref, Scheme::Scalar, 2),
        ("Opt-D/scalar/t3", ExecutionMode::OptD, Scheme::Scalar, 3),
        ("Opt-D/1a/t2", ExecutionMode::OptD, Scheme::JLanes, 2),
        ("Opt-D/1b/t2", ExecutionMode::OptD, Scheme::FusedLanes, 2),
        ("Opt-M/1b/t2", ExecutionMode::OptM, Scheme::FusedLanes, 2),
        ("Opt-M/1b/t4", ExecutionMode::OptM, Scheme::FusedLanes, 4),
        ("Opt-S/1c/t2", ExecutionMode::OptS, Scheme::ILanes, 2),
        ("Opt-D/1c/t2", ExecutionMode::OptD, Scheme::ILanes, 2),
    ];

    for (label, mode, scheme, threads) in cases {
        let mut pot = make_potential(
            TersoffParams::silicon(),
            TersoffOptions {
                mode,
                scheme,
                width: 0,
                threads,
                backend: None,
            },
        );
        // Warm up: builds filter buffers, packed positions, per-thread
        // scratch and (for threads > 1) the worker pool.
        pot.compute(&atoms, &sim_box, &list, &mut out);
        pot.compute(&atoms, &sim_box, &list, &mut out);

        let before = allocations();
        for _ in 0..5 {
            pot.compute(&atoms, &sim_box, &list, &mut out);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "{label}: {delta} heap allocations in 5 steady-state force evaluations"
        );
    }

    // The whole simulation step (integrate → rebuild check → force →
    // integrate) is also allocation-free in steady state. A perfect lattice
    // at T = 0 guarantees no neighbor-list rebuild fires inside the measured
    // window.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build();
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(2),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .build()
        .expect("valid setup");
    sim.run(10);
    // `run` records one final thermo sample into the default ThermoLog
    // observer per call; the log pre-sizes itself in on_run_start, so no
    // manual reserve is needed before the audited window.
    let before = allocations();
    sim.run(20);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{delta} heap allocations in 20 steady-state simulation steps"
    );

    // Neighbor-list rebuilds reuse the list's bin and CRS storage, so a hot
    // trajectory that keeps crossing the half-skin threshold also runs
    // allocation-free once the buffers hit their high-water mark. Warm up
    // through several rebuilds first (capacity growth is legitimate while
    // neighbor counts still fluctuate upward).
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.02, 5);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(2),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(1800.0, 3)
        .build()
        .expect("valid setup");
    sim.run(150);
    let rebuilds_before = sim.n_rebuilds;
    assert!(
        rebuilds_before > 3,
        "hot trajectory should rebuild several times in the warm-up ({rebuilds_before})"
    );
    let before = allocations();
    let report = sim.run(150);
    let delta = allocations() - before;
    assert!(
        report.rebuilds > 0,
        "measured window must actually exercise rebuilds"
    );
    assert_eq!(
        delta, 0,
        "{delta} heap allocations across {} rebuild-bearing steps ({} rebuilds)",
        report.steps, report.rebuilds
    );

    // The runtime-parallel neighbor rebuild in isolation: once the bin,
    // per-chunk row and CRS buffers have reached their high-water marks,
    // `rebuild_on` dispatching across a multi-thread pool allocates nothing.
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 23);
    let runtime = md_core::runtime::ParallelRuntime::new(2);
    let mut list = md_core::neighbor::NeighborList::default();
    let settings = NeighborSettings::new(3.0, 1.0);
    // Warm up: grows every buffer and spawns the pool.
    list.rebuild_on(&atoms, &sim_box, settings, &runtime);
    list.rebuild_on(&atoms, &sim_box, settings, &runtime);
    let before = allocations();
    for _ in 0..5 {
        list.rebuild_on(&atoms, &sim_box, settings, &runtime);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{delta} heap allocations in 5 steady-state threaded neighbor rebuilds"
    );

    // The steady-state rank loop of the decomposed timestep: per-rank
    // integration, halo position refresh, atom migration, ghost exchange,
    // per-rank neighbor rebuilds and the canonical list assembly all reuse
    // their mailboxes, rank storage and scratch rows in place, so a hot
    // decomposed trajectory allocates nothing once every buffer has hit its
    // high-water mark.
    let (global_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 7);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(2),
    );
    let builder = Simulation::builder(atoms, global_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(2500.0, 3)
        .threads(2);
    let mut dom = DomainSimulation::new(builder, [2, 2, 1]).expect("valid grid");
    // Warm up through rebuilds, migrations and halo re-planning. The hot
    // system keeps migrating atoms into new rank patterns for several
    // hundred steps, so the mailbox/rank-storage high-water marks rise
    // (legitimately allocating) until roughly step 650 — warm up well past
    // that before opening the audited window.
    dom.run(800);
    assert!(
        dom.sim().n_rebuilds > 3,
        "warm-up must exercise rebuilds ({})",
        dom.sim().n_rebuilds
    );
    assert!(dom.ghost_fraction() > 0.0, "ranks must hold ghost atoms");
    let migrations_warm = dom.migrations();
    let before = allocations();
    let report = dom.run(150);
    let delta = allocations() - before;
    assert!(
        report.rebuilds > 0,
        "measured window must exercise the rebuild path"
    );
    assert!(
        dom.migrations() > migrations_warm,
        "measured window must exercise atom migration"
    );
    assert_eq!(
        delta, 0,
        "{delta} heap allocations across {} steady-state decomposed steps \
         ({} rebuilds)",
        report.steps, report.rebuilds
    );
}
