//! End-to-end tests of `tersoff-serve`'s wire API over real loopback
//! sockets: scenario submission, status polling, NDJSON event streaming,
//! cancellation, the 4xx/429 error contract, and graceful shutdown — with
//! the load-bearing assertion that results served over HTTP are bitwise
//! identical to the same scenario executed by the `tersoff-run` batch
//! path (`Scenario::execute_with`).

use lammps_tersoff_vector::json::{parse, Json};
use lammps_tersoff_vector::scenario::{RunPolicy, Scenario};
use lammps_tersoff_vector::server::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// A minimal raw-socket HTTP/1.1 client (the server speaks
// `Connection: close`, so reading to EOF terminates every exchange)
// ---------------------------------------------------------------------------

struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        parse(std::str::from_utf8(&self.body).expect("UTF-8 body")).expect("JSON body")
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> HttpResponse {
    let end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete response head");
    let head = std::str::from_utf8(&raw[..end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = raw[end + 4..].to_vec();
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        body = decode_chunked(&body);
    }
    HttpResponse {
        status,
        headers,
        body,
    }
}

/// Decode a complete chunked-transfer body (`len\r\ndata\r\n` frames up to
/// the zero chunk).
fn decode_chunked(mut data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    while let Some(pos) = data.windows(2).position(|w| w == b"\r\n") {
        let size_text = std::str::from_utf8(&data[..pos]).expect("chunk size line");
        let size = usize::from_str_radix(size_text.trim(), 16).expect("hex chunk size");
        data = &data[pos + 2..];
        if size == 0 {
            break;
        }
        assert!(data.len() >= size + 2, "truncated chunk");
        out.extend_from_slice(&data[..size]);
        data = &data[size + 2..];
    }
    out
}

// ---------------------------------------------------------------------------
// JSON accessors for response bodies
// ---------------------------------------------------------------------------

fn field<'a>(json: &'a Json, name: &str) -> &'a Json {
    match json {
        Json::Obj(map) => map
            .get(name)
            .unwrap_or_else(|| panic!("missing field {name:?} in {json:?}")),
        other => panic!("expected object with {name:?}, got {other:?}"),
    }
}

fn num(json: &Json, name: &str) -> f64 {
    match field(json, name) {
        Json::Num(n) => *n,
        other => panic!("field {name:?} is not a number: {other:?}"),
    }
}

fn text<'a>(json: &'a Json, name: &str) -> &'a str {
    field(json, name).as_str().unwrap_or_else(|| {
        panic!("field {name:?} is not a string");
    })
}

fn arr<'a>(json: &'a Json, name: &str) -> &'a [Json] {
    match field(json, name) {
        Json::Arr(items) => items,
        other => panic!("field {name:?} is not an array: {other:?}"),
    }
}

fn boolean(json: &Json, name: &str) -> bool {
    match field(json, name) {
        Json::Bool(b) => *b,
        other => panic!("field {name:?} is not a bool: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Fixtures and helpers
// ---------------------------------------------------------------------------

/// The e2e scenario: the same 2×2×2 perturbed silicon crystal the
/// job-engine equivalence tests use, as the strict JSON the wire accepts.
fn fixture_json(name: &str, steps: u64, matrix: bool) -> String {
    let matrix_part = if matrix {
        ",\n  \"matrix\": {\"modes\": [\"Ref\", \"Opt-M\"], \"threads\": [1, 2]}"
    } else {
        ""
    };
    format!(
        r#"{{
  "name": "{name}",
  "system": {{"lattice": "silicon", "cells": [2, 2, 2], "perturbation": 0.04,
              "lattice_seed": 21, "temperature": 400.0, "velocity_seed": 5}},
  "potential": {{"params": "silicon", "mode": "Opt-M", "scheme": "1b", "threads": 1}},
  "run": {{"timestep": 0.001, "skin": 1.0, "steps": {steps}, "thermo_every": 2}}{matrix_part}
}}"#
    )
}

fn boot(workers: usize, queue_depth: usize) -> Server {
    Server::bind(ServerConfig {
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Poll `GET /v1/jobs/{id}` until `done`.
fn wait_done(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let response = request(addr, "GET", &format!("/v1/jobs/{id}"), b"");
        assert_eq!(response.status, 200, "status poll of job {id}");
        let json = response.json();
        if boolean(&json, "done") {
            return json;
        }
        assert!(Instant::now() < deadline, "job {id} did not finish in time");
        thread::sleep(Duration::from_millis(50));
    }
}

/// Per-label `(step, potential_bits, total_bits)` triples — the bitwise
/// identity currency, matching `tests/job_engine.rs`.
type TraceBits = Vec<(u64, String, String)>;

/// Execute the scenario locally through the batch path (`tersoff-run`'s
/// code path) and collect each variant's trace bits.
fn local_trace_bits(scenario_json: &str) -> BTreeMap<String, TraceBits> {
    let scenario = Scenario::from_json(scenario_json).expect("fixture parses");
    let report = scenario
        .execute_with(&RunPolicy {
            keep_going: true,
            ..RunPolicy::default()
        })
        .expect("local execution");
    report
        .variants
        .iter()
        .map(|v| {
            let bits = v
                .trace
                .iter()
                .map(|t| {
                    (
                        t.step,
                        format!("{:016x}", t.potential.to_bits()),
                        format!("{:016x}", t.total.to_bits()),
                    )
                })
                .collect();
            (v.label.clone(), bits)
        })
        .collect()
}

/// Extract the trace bits from a served `result` object.
fn served_trace_bits(result: &Json) -> TraceBits {
    arr(result, "trace")
        .iter()
        .map(|entry| {
            (
                num(entry, "step") as u64,
                text(entry, "potential_bits").to_string(),
                text(entry, "total_bits").to_string(),
            )
        })
        .collect()
}

/// Submit a scenario and return `(label, id)` per accepted job.
fn submit(addr: SocketAddr, body: &str) -> Vec<(String, u64)> {
    let response = request(addr, "POST", "/v1/jobs", body.as_bytes());
    assert_eq!(
        response.status,
        202,
        "submit: {}",
        String::from_utf8_lossy(&response.body)
    );
    let json = response.json();
    arr(&json, "jobs")
        .iter()
        .map(|job| (text(job, "label").to_string(), num(job, "id") as u64))
        .collect()
}

// ---------------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------------

#[test]
fn served_results_are_bitwise_identical_to_the_batch_runner() {
    let body = fixture_json("server_bitwise", 10, true);
    let baseline = local_trace_bits(&body);

    let server = boot(2, 64);
    let addr = server.local_addr();
    let jobs = submit(addr, &body);
    assert_eq!(jobs.len(), 4, "2 modes × 2 thread counts");

    let mut served = BTreeMap::new();
    for (label, id) in &jobs {
        let status = wait_done(addr, *id);
        assert_eq!(text(&status, "status"), "ok", "variant {label}");
        assert_eq!(text(&status, "label"), label);
        let result = field(&status, "result");
        assert_eq!(text(result, "status"), "ok");
        served.insert(label.clone(), served_trace_bits(result));
    }

    assert_eq!(
        served, baseline,
        "every energy bit served over HTTP must equal the batch runner's"
    );

    server.request_shutdown();
    let stats = server.join();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.finished, 4);
    assert_eq!(stats.queue_len, 0);
}

#[test]
fn concurrent_clients_all_receive_the_same_bits() {
    let body = fixture_json("server_concurrent", 10, true);
    let baseline = local_trace_bits(&body);

    let server = boot(2, 64);
    let addr = server.local_addr();

    const CLIENTS: usize = 3;
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let body = body.clone();
        handles.push(thread::spawn(move || {
            let jobs = submit(addr, &body);
            let mut served = BTreeMap::new();
            for (label, id) in jobs {
                let status = wait_done(addr, id);
                assert_eq!(text(&status, "status"), "ok");
                served.insert(label, served_trace_bits(field(&status, "result")));
            }
            served
        }));
    }
    for handle in handles {
        let served = handle.join().expect("client thread");
        assert_eq!(served, baseline, "per-client bitwise identity");
    }

    server.request_shutdown();
    let stats = server.join();
    assert_eq!(stats.submitted, (CLIENTS * 4) as u64);
    assert_eq!(stats.finished, (CLIENTS * 4) as u64);
    // The prepared system is shared through the artifact cache across all
    // clients' jobs: at least one build, the rest hits.
    assert!(stats.cache.hits > 0, "repeated system must hit the cache");
}

#[test]
fn the_error_contract_covers_400_404_and_405() {
    let server = boot(1, 8);
    let addr = server.local_addr();

    // Malformed JSON → 400 with the strict parser's own message.
    let response = request(addr, "POST", "/v1/jobs", b"this is not json");
    assert_eq!(response.status, 400);
    let error = text(&response.json(), "error").to_string();
    assert!(
        error.contains("JSON parse error"),
        "parser text surfaced: {error}"
    );

    // Valid JSON with an unknown key → 400 naming the key.
    let body = fixture_json("bad_key", 4, false).replace("\"skin\"", "\"skinn\"");
    let response = request(addr, "POST", "/v1/jobs", body.as_bytes());
    assert_eq!(response.status, 400);
    let error = text(&response.json(), "error").to_string();
    assert!(error.contains("skinn"), "offending key named: {error}");

    // Unknown job ids and unknown routes → 404.
    assert_eq!(request(addr, "GET", "/v1/jobs/424242", b"").status, 404);
    assert_eq!(request(addr, "DELETE", "/v1/jobs/424242", b"").status, 404);
    assert_eq!(
        request(addr, "GET", "/v1/jobs/424242/events", b"").status,
        404
    );
    assert_eq!(request(addr, "GET", "/nope", b"").status, 404);
    assert_eq!(
        request(addr, "GET", "/v1/jobs/not-a-number", b"").status,
        404
    );

    // Known route, wrong method → 405 with Allow.
    let response = request(addr, "GET", "/v1/jobs", b"");
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));
    assert_eq!(request(addr, "POST", "/healthz", b"").status, 405);
    assert_eq!(request(addr, "DELETE", "/metrics", b"").status, 405);

    server.request_shutdown();
    server.join();
}

#[test]
fn a_saturated_queue_answers_429_and_rolls_the_batch_back() {
    // One lane, one queue slot: the 4-variant matrix cannot fit — at the
    // latest the third variant hits SubmitError::Full while the lane is
    // busy with the first.
    let server = boot(1, 1);
    let addr = server.local_addr();

    let body = fixture_json("server_saturated", 300, true);
    let response = request(addr, "POST", "/v1/jobs", body.as_bytes());
    assert_eq!(response.status, 429);
    assert_eq!(response.header("retry-after"), Some("1"));
    let error = text(&response.json(), "error").to_string();
    assert!(error.contains("queue is full"), "{error}");

    // All-or-nothing: nothing was registered, so every id is unknown.
    for id in 1..=4u64 {
        assert_eq!(
            request(addr, "GET", &format!("/v1/jobs/{id}"), b"").status,
            404
        );
    }

    server.request_shutdown();
    let stats = server.join();
    // Every accepted-then-rolled-back job reached a terminal state. The
    // sum can exceed `submitted`: the rejected variant's balancing
    // `Cancelled` event counts without a matching accepted submit.
    assert!(
        stats.finished + stats.faulted + stats.cancelled >= stats.submitted,
        "terminal states must cover every accepted job: {stats:?}"
    );
    assert!(stats.cancelled > 0, "the rollback cancelled queued jobs");
}

#[test]
fn the_event_stream_is_live_replayable_ndjson() {
    let server = boot(1, 16);
    let addr = server.local_addr();

    let body = fixture_json("server_events", 10, false);
    let jobs = submit(addr, &body);
    let (label, id) = jobs[0].clone();

    // Follow the stream live, starting while the job runs: read_to_end
    // returns only once the server writes the terminal chunk.
    let live = request(addr, "GET", &format!("/v1/jobs/{id}/events"), b"");
    assert_eq!(live.status, 200);
    assert_eq!(
        live.header("content-type"),
        Some("application/x-ndjson"),
        "NDJSON content type"
    );
    assert_eq!(live.header("transfer-encoding"), Some("chunked"));

    let status = wait_done(addr, id);
    assert_eq!(text(&status, "status"), "ok");
    let trace = served_trace_bits(field(&status, "result"));

    // A second, late-joining stream replays the identical history.
    let replay = request(addr, "GET", &format!("/v1/jobs/{id}/events"), b"");
    assert_eq!(live.body, replay.body, "late join replays the full log");

    let lines: Vec<Json> = std::str::from_utf8(&live.body)
        .expect("UTF-8 stream")
        .lines()
        .map(|line| parse(line).expect("each line is one JSON event"))
        .collect();
    let kinds: Vec<&str> = lines.iter().map(|l| text(l, "event")).collect();
    assert_eq!(kinds.first(), Some(&"queued"));
    assert_eq!(kinds.get(1), Some(&"started"));
    assert_eq!(kinds.last(), Some(&"finished"));
    for line in &lines {
        assert_eq!(num(line, "job") as u64, id, "stream is single-job");
    }
    assert!(
        text(&lines[0], "name").ends_with(&label),
        "queued event names the variant"
    );

    // The streamed thermo samples carry the exact bits of the served
    // (and therefore batch-identical) trace.
    let streamed: Vec<(u64, String)> = lines
        .iter()
        .filter(|l| text(l, "event") == "thermo")
        .map(|l| {
            (
                num(l, "step") as u64,
                text(l, "total_energy_bits").to_string(),
            )
        })
        .collect();
    let expected: Vec<(u64, String)> = trace
        .into_iter()
        .map(|(step, _potential, total)| (step, total))
        .collect();
    assert_eq!(streamed, expected, "streamed energies are bit-exact");

    server.request_shutdown();
    server.join();
}

#[test]
fn cancel_is_queue_level_exact_over_http() {
    // One lane: the first variant starts running, the rest sit queued.
    let server = boot(1, 64);
    let addr = server.local_addr();

    let body = fixture_json("server_cancel", 150, true);
    let jobs = submit(addr, &body);
    assert_eq!(jobs.len(), 4);
    let last = jobs.last().expect("four jobs").1;

    // The last job cannot have reached the single lane yet.
    let response = request(addr, "DELETE", &format!("/v1/jobs/{last}"), b"");
    assert_eq!(response.status, 200);
    let json = response.json();
    assert!(boolean(&json, "cancelled"), "queued job must cancel");

    let status = wait_done(addr, last);
    assert_eq!(text(&status, "status"), "cancelled");
    assert_eq!(
        text(field(&status, "result"), "status"),
        "failed",
        "a cancelled variant resolves to the failed report status"
    );

    // Cancelling a terminal job is a no-op.
    let response = request(addr, "DELETE", &format!("/v1/jobs/{last}"), b"");
    assert!(!boolean(&response.json(), "cancelled"));

    // Shed the remaining queued work to keep the drain short.
    for (_, id) in &jobs[1..3] {
        request(addr, "DELETE", &format!("/v1/jobs/{id}"), b"");
    }

    server.request_shutdown();
    let stats = server.join();
    assert_eq!(stats.submitted, 4);
    assert!(stats.cancelled >= 1);
    assert_eq!(
        stats.submitted,
        stats.finished + stats.faulted + stats.cancelled
    );
}

#[test]
fn shutdown_drains_in_flight_jobs_and_refuses_intake() {
    let server = boot(1, 64);
    let addr = server.local_addr();

    let body = fixture_json("server_drain", 150, false);
    let jobs = submit(addr, &body);
    assert_eq!(jobs.len(), 1);
    let id = jobs[0].1;

    let response = request(addr, "POST", "/v1/shutdown", b"");
    assert_eq!(response.status, 200);
    assert_eq!(text(&response.json(), "status"), "draining");

    // Intake is closed while the drain serves existing clients.
    let refused = request(addr, "POST", "/v1/jobs", body.as_bytes());
    assert_eq!(refused.status, 503);
    let health = request(addr, "GET", "/healthz", b"");
    assert!(boolean(&health.json(), "draining"));

    // The in-flight job still completes and is still pollable mid-drain.
    let status = wait_done(addr, id);
    assert_eq!(text(&status, "status"), "ok");

    let stats = server.join();
    assert_eq!(stats.submitted, 1);
    assert_eq!(stats.finished, 1);
    assert_eq!(stats.queue_len, 0);

    // After join the listener is closed.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after join"
    );
}

#[test]
fn metrics_report_engine_and_registry_state() {
    let server = boot(1, 16);
    let addr = server.local_addr();

    let body = fixture_json("server_metrics", 10, false);
    let jobs = submit(addr, &body);
    wait_done(addr, jobs[0].1);

    let response = request(addr, "GET", "/metrics", b"");
    assert_eq!(response.status, 200);
    assert!(response
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/plain")));
    let metrics = String::from_utf8(response.body.clone()).expect("UTF-8 metrics");

    let value = |name: &str| -> f64 {
        metrics
            .lines()
            .find(|line| line.starts_with(name) && line.as_bytes().get(name.len()) == Some(&b' '))
            .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
            .split(' ')
            .nth(1)
            .unwrap()
            .parse()
            .expect("numeric sample")
    };
    assert_eq!(value("tersoff_engine_workers"), 1.0);
    assert_eq!(value("tersoff_engine_queue_depth"), 16.0);
    assert_eq!(value("tersoff_jobs_submitted_total"), 1.0);
    assert_eq!(value("tersoff_jobs_finished_total"), 1.0);
    assert!(value("tersoff_cache_misses_total") >= 1.0);
    assert!(value("tersoff_cache_resident_bytes") > 0.0);
    assert!(value("tersoff_uptime_seconds") > 0.0);
    assert!(value("tersoff_http_requests_total") >= 2.0);
    assert!(metrics.contains("tersoff_jobs{status=\"ok\"} 1"));

    server.request_shutdown();
    server.join();
}
