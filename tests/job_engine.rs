//! The job engine's cross-crate guarantees, through the scenario layer:
//!
//! * **bitwise equivalence across `--jobs`** — a batch executed through the
//!   engine at 1, 2 and 4 worker lanes produces per-variant thermo traces
//!   bitwise identical to each other (a job's bits depend only on its own
//!   inputs and its leased runtime, never on scheduling),
//! * **fault isolation** — a variant panicking under a `TERSOFF_FAULT`-style
//!   injection is typed `panicked` while every surviving variant of the
//!   same batch stays bitwise identical to a clean run,
//! * **cancellation** — cancelling a queued job leaves the already-running
//!   and completed variants intact and bitwise correct,
//! * the event stream narrates the batch (queued → started → thermo →
//!   finished) and the artifact cache actually hits on repeated systems.

use lammps_tersoff_vector::prelude::*;
use lammps_tersoff_vector::scenario::{
    FaultSpec, LatticeSpec, MatrixSpec, ParamSet, PotentialSpec, RunPolicy, RunSpec, Scenario,
    ScenarioReport, SystemSpec, VariantStatus,
};
use md_core::jobs::{JobEngine, JobOutcome, JobSpec, JobStatus};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn sample_scenario() -> Scenario {
    Scenario {
        name: "engine_fixture".into(),
        description: "job-engine equivalence fixture".into(),
        system: SystemSpec {
            lattice: LatticeSpec::Silicon,
            cells: [2, 2, 2],
            perturbation: 0.04,
            lattice_seed: 21,
            temperature: 400.0,
            velocity_seed: 5,
        },
        potential: PotentialSpec {
            params: ParamSet::Silicon,
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 1,
            backend: None,
        },
        run: RunSpec {
            timestep: 0.001,
            skin: 1.0,
            steps: 10,
            thermo_every: 2,
        },
        dump: None,
        decomposition: None,
        matrix: Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
            threads: vec![1, 2],
        }),
        max_drift: None,
        health: None,
        checkpoint: None,
        fault: None,
        properties: None,
    }
}

/// One variant's identity: label, status, and the exact bits of its
/// thermo trace as (step, potential bits, total bits) triples.
type VariantBits = (String, VariantStatus, Vec<(u64, u64, u64)>);

fn trace_bits(report: &ScenarioReport) -> Vec<VariantBits> {
    report
        .variants
        .iter()
        .map(|v| {
            (
                v.label.clone(),
                v.status,
                v.trace
                    .iter()
                    .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn batches_are_bitwise_identical_at_every_jobs_count() {
    let scenario = sample_scenario();
    let run_at = |jobs: usize| {
        let policy = RunPolicy {
            jobs,
            keep_going: true,
            ..RunPolicy::default()
        };
        trace_bits(&scenario.execute_with(&policy).expect("batch runs"))
    };
    let serial = run_at(1);
    assert_eq!(serial.len(), 4, "2 modes x 2 thread counts");
    for (_, status, bits) in &serial {
        assert_eq!(*status, VariantStatus::Ok);
        assert!(!bits.is_empty());
    }
    for jobs in [2, 4] {
        assert_eq!(
            run_at(jobs),
            serial,
            "--jobs {jobs} diverged bitwise from the serial drain"
        );
    }
}

#[test]
fn faulted_variants_are_isolated_and_survivors_stay_bitwise() {
    let scenario = sample_scenario();
    let clean = trace_bits(
        &scenario
            .execute_with(&RunPolicy {
                jobs: 1,
                keep_going: true,
                ..RunPolicy::default()
            })
            .expect("clean batch runs"),
    );

    // The TERSOFF_FAULT format: panic at step 3 in every Ref variant.
    let policy = RunPolicy {
        jobs: 4,
        keep_going: true,
        fault_override: Some(FaultSpec::parse_env("panic@3@Ref").expect("valid fault spec")),
        ..RunPolicy::default()
    };
    let faulted = scenario.execute_with(&policy).expect("faulted batch runs");
    assert_eq!(faulted.variants.len(), clean.len());

    let mut panicked = 0;
    for (v, (label, _, clean_bits)) in faulted.variants.iter().zip(&clean) {
        assert_eq!(&v.label, label, "variant order must not depend on faults");
        if v.label.contains("Ref") {
            assert_eq!(v.status, VariantStatus::Panicked, "{}", v.label);
            assert!(v.error.is_some());
            panicked += 1;
        } else {
            assert_eq!(v.status, VariantStatus::Ok, "{}", v.label);
            let bits: Vec<(u64, u64, u64)> = v
                .trace
                .iter()
                .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
                .collect();
            assert_eq!(
                &bits, clean_bits,
                "{}: survivor diverged from the clean run",
                v.label
            );
        }
    }
    assert_eq!(panicked, 2, "both Ref thread counts must have faulted");
}

#[test]
fn cancelling_queued_jobs_leaves_completed_variants_intact() {
    let scenario = sample_scenario();
    let serial = trace_bits(
        &scenario
            .execute_with(&RunPolicy {
                jobs: 1,
                keep_going: true,
                ..RunPolicy::default()
            })
            .expect("serial batch runs"),
    );

    // One lane, plugged by a blocker job: everything submitted after it
    // queues behind it, so cancellation targets a job that has not started.
    let engine = JobEngine::with_workers(1);
    let (release, gate) = mpsc::channel::<()>();
    let blocker = engine
        .submit(JobSpec::new("blocker", move |_ctx| {
            gate.recv().expect("released");
            0u32
        }))
        .expect("blocker submits");
    let deadline = Instant::now() + Duration::from_secs(10);
    while blocker.poll() != JobStatus::Running {
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::yield_now();
    }

    let policy = RunPolicy {
        keep_going: true,
        ..RunPolicy::default()
    };
    let variants = scenario.variants();
    let mut handles = Vec::new();
    for &v in &variants {
        handles.push(
            scenario
                .submit(&engine, v, scenario.run.steps, &policy)
                .expect("variant submits"),
        );
    }
    let last = handles.pop().expect("four variants queued");
    assert!(last.cancel(), "a queued job must accept cancellation");
    release.send(()).expect("blocker releases");
    assert!(matches!(blocker.wait(), JobOutcome::Finished(0)));

    // The cancelled job never ran; every completed variant matches the
    // serial drain bit for bit.
    assert!(matches!(last.wait(), JobOutcome::Cancelled));
    for (handle, (label, _, serial_bits)) in handles.into_iter().zip(&serial) {
        let JobOutcome::Finished(report) = handle.wait() else {
            panic!("{label}: completed variant lost to cancellation");
        };
        assert_eq!(&report.label, label);
        assert_eq!(report.status, VariantStatus::Ok);
        let bits: Vec<(u64, u64, u64)> = report
            .trace
            .iter()
            .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
            .collect();
        assert_eq!(
            &bits, serial_bits,
            "{label}: bits changed under cancellation"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn event_stream_narrates_the_batch_and_the_cache_hits() {
    let mut scenario = sample_scenario();
    scenario.matrix = Some(MatrixSpec {
        modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
        threads: vec![1],
    });
    let engine = JobEngine::with_workers(2);
    let events = engine.subscribe();
    let policy = RunPolicy {
        keep_going: true,
        ..RunPolicy::default()
    };
    let report = scenario
        .execute_on(&engine, &policy)
        .expect("batch runs on shared engine");
    assert!(report
        .variants
        .iter()
        .all(|v| v.status == VariantStatus::Ok));

    let kinds: Vec<&'static str> = events.try_iter().map(|e| e.kind()).collect();
    for expected in ["queued", "started", "thermo", "finished"] {
        assert!(
            kinds.contains(&expected),
            "missing {expected:?} in event stream: {kinds:?}"
        );
    }
    // Every recorded thermo sample was also published on the stream.
    let expected: usize = report.variants.iter().map(|v| v.trace.len()).sum();
    assert_eq!(kinds.iter().filter(|k| **k == "thermo").count(), expected);

    // Both variants share one lattice and one parameter table: the second
    // build must hit the artifact cache.
    let stats = engine.stats();
    assert!(
        stats.cache.hits >= 2,
        "expected lattice+params cache hits, got {:?}",
        stats.cache
    );
    assert_eq!(report.engine.workers, 2);
}
