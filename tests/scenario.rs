//! The scenario layer's cross-crate guarantees:
//!
//! * spec files round-trip through JSON without loss,
//! * the enum names (`ExecutionMode`, `Scheme`, `BackendImpl`) round-trip
//!   through `Display`/`FromStr` (they are the vocabulary of the spec files),
//! * **golden equivalence** — executing a scenario produces a thermo trace
//!   bitwise identical to the equivalent hand-built `SimulationBuilder` run,
//!   so the declarative layer can never drift from the programmatic API,
//! * the shipped `scenarios/` specs all load, declare drift bounds, and
//!   (briefly) run — the same contract the CI smoke job enforces at longer
//!   step counts via `tersoff-run`.

use lammps_tersoff_vector::prelude::*;
use lammps_tersoff_vector::scenario::{
    LatticeSpec, MatrixSpec, ParamSet, PotentialSpec, RunSpec, Scenario, SystemSpec, Variant,
};
use std::path::Path;
use tersoff::driver::BackendImpl;

fn sample_scenario() -> Scenario {
    Scenario {
        name: "golden".into(),
        description: "builder-equivalence fixture".into(),
        system: SystemSpec {
            lattice: LatticeSpec::Silicon,
            cells: [2, 2, 2],
            perturbation: 0.04,
            lattice_seed: 21,
            temperature: 400.0,
            velocity_seed: 5,
        },
        potential: PotentialSpec {
            params: ParamSet::Silicon,
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 2,
            backend: None,
        },
        run: RunSpec {
            timestep: 0.001,
            skin: 1.0,
            steps: 30,
            thermo_every: 5,
        },
        dump: None,
        decomposition: None,
        matrix: None,
        max_drift: Some(1e-3),
        health: None,
        checkpoint: None,
        fault: None,
    }
}

#[test]
fn scenario_round_trips_through_serde_json() {
    let s = sample_scenario();
    let text = s.to_json();
    assert_eq!(Scenario::from_json(&text).unwrap(), s);

    // With matrix and without optional fields.
    let mut with_matrix = s.clone();
    with_matrix.matrix = Some(MatrixSpec {
        modes: vec![ExecutionMode::Ref, ExecutionMode::OptD],
        threads: vec![1, 4],
    });
    with_matrix.max_drift = None;
    let back = Scenario::from_json(&with_matrix.to_json()).unwrap();
    assert_eq!(back, with_matrix);
    assert_eq!(back.variants().len(), 4);
}

#[test]
fn enum_labels_round_trip_through_from_str() {
    for mode in ExecutionMode::ALL {
        assert_eq!(mode.label().parse::<ExecutionMode>().unwrap(), mode);
        assert_eq!(format!("{mode}"), mode.label());
    }
    for scheme in Scheme::ALL {
        assert_eq!(scheme.label().parse::<Scheme>().unwrap(), scheme);
        assert_eq!(format!("{scheme}"), scheme.label());
    }
    for backend in BackendImpl::ALL {
        assert_eq!(backend.name().parse::<BackendImpl>().unwrap(), backend);
        assert_eq!(format!("{backend}"), backend.name());
    }
    assert!("nope".parse::<ExecutionMode>().is_err());
    assert!("nope".parse::<Scheme>().is_err());
    assert!("nope".parse::<BackendImpl>().is_err());
}

/// The golden test: a `tersoff-run` scenario execution must be bitwise
/// identical to the equivalent hand-built `SimulationBuilder` run — same
/// lattice, same seeds, same kernel, same threaded engine.
#[test]
fn scenario_execution_is_bitwise_identical_to_hand_built_run() {
    let scenario = sample_scenario();

    // The declarative path (what `tersoff-run` does).
    let outcome = scenario.execute(None).expect("scenario runs");
    let scenario_trace: Vec<(u64, u64, u64)> = outcome.variants[0]
        .trace
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect();

    // The hand-built path: everything assembled explicitly.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.04, 21);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 2,
            backend: None,
        },
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .timestep(0.001)
        .skin(1.0)
        .masses(vec![units::mass::SI])
        .temperature(400.0, 5)
        .thermo_every(5)
        .build()
        .expect("valid hand-built setup");
    sim.run(30);
    let hand_trace: Vec<(u64, u64, u64)> = sim
        .thermo_history()
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect();

    assert!(!scenario_trace.is_empty());
    assert_eq!(
        scenario_trace, hand_trace,
        "scenario execution diverged from the equivalent hand-built run"
    );
}

#[test]
fn shipped_scenarios_load_and_run_briefly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let scenarios = Scenario::discover(&dir).expect("scenarios/ loads");
    assert!(
        scenarios.len() >= 4,
        "expected the shipped scenario set, found {}",
        scenarios.len()
    );
    for (path, scenario) in scenarios {
        assert!(
            scenario.max_drift.is_some(),
            "{}: shipped scenarios must declare a drift bound for the CI smoke job",
            path.display()
        );
        // A couple of steps only — the CI smoke job runs them longer.
        let outcome = scenario
            .execute(Some(2))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(outcome.steps, 2);
        for v in &outcome.variants {
            assert!(
                v.report().final_thermo.potential < 0.0,
                "{}: {} ended unbound",
                path.display(),
                v.label
            );
        }
    }
}

#[test]
fn scenario_variant_options_match_the_spec() {
    let scenario = sample_scenario();
    let options = scenario.options_for(Variant {
        mode: ExecutionMode::OptD,
        threads: 4,
    });
    assert_eq!(options.mode, ExecutionMode::OptD);
    assert_eq!(options.scheme, Scheme::FusedLanes);
    assert_eq!(options.threads, 4);
    assert_eq!(options.label(), "Opt-D/1b/w8/t4");
}
