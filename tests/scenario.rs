//! The scenario layer's cross-crate guarantees:
//!
//! * spec files round-trip through JSON without loss,
//! * the enum names (`ExecutionMode`, `Scheme`, `BackendImpl`) round-trip
//!   through `Display`/`FromStr` (they are the vocabulary of the spec files),
//! * **golden equivalence** — executing a scenario produces a thermo trace
//!   bitwise identical to the equivalent hand-built `SimulationBuilder` run,
//!   so the declarative layer can never drift from the programmatic API,
//! * the shipped `scenarios/` specs all load, declare drift bounds, and
//!   (briefly) run — the same contract the CI smoke job enforces at longer
//!   step counts via `tersoff-run`.

use lammps_tersoff_vector::prelude::*;
use lammps_tersoff_vector::scenario::{
    LatticeSpec, MatrixSpec, ParamSet, PotentialSpec, RunSpec, Scenario, SystemSpec, Variant,
};
use std::path::Path;
use tersoff::driver::BackendImpl;

fn sample_scenario() -> Scenario {
    Scenario {
        name: "golden".into(),
        description: "builder-equivalence fixture".into(),
        system: SystemSpec {
            lattice: LatticeSpec::Silicon,
            cells: [2, 2, 2],
            perturbation: 0.04,
            lattice_seed: 21,
            temperature: 400.0,
            velocity_seed: 5,
        },
        potential: PotentialSpec {
            params: ParamSet::Silicon,
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 2,
            backend: None,
        },
        run: RunSpec {
            timestep: 0.001,
            skin: 1.0,
            steps: 30,
            thermo_every: 5,
        },
        dump: None,
        decomposition: None,
        matrix: None,
        max_drift: Some(1e-3),
        health: None,
        checkpoint: None,
        fault: None,
        properties: None,
    }
}

#[test]
fn scenario_round_trips_through_serde_json() {
    let s = sample_scenario();
    let text = s.to_json();
    assert_eq!(Scenario::from_json(&text).unwrap(), s);

    // With matrix and without optional fields.
    let mut with_matrix = s.clone();
    with_matrix.matrix = Some(MatrixSpec {
        modes: vec![ExecutionMode::Ref, ExecutionMode::OptD],
        threads: vec![1, 4],
    });
    with_matrix.max_drift = None;
    let back = Scenario::from_json(&with_matrix.to_json()).unwrap();
    assert_eq!(back, with_matrix);
    assert_eq!(back.variants().len(), 4);
}

#[test]
fn enum_labels_round_trip_through_from_str() {
    for mode in ExecutionMode::ALL {
        assert_eq!(mode.label().parse::<ExecutionMode>().unwrap(), mode);
        assert_eq!(format!("{mode}"), mode.label());
    }
    for scheme in Scheme::ALL {
        assert_eq!(scheme.label().parse::<Scheme>().unwrap(), scheme);
        assert_eq!(format!("{scheme}"), scheme.label());
    }
    for backend in BackendImpl::ALL {
        assert_eq!(backend.name().parse::<BackendImpl>().unwrap(), backend);
        assert_eq!(format!("{backend}"), backend.name());
    }
    assert!("nope".parse::<ExecutionMode>().is_err());
    assert!("nope".parse::<Scheme>().is_err());
    assert!("nope".parse::<BackendImpl>().is_err());
}

/// The golden test: a `tersoff-run` scenario execution must be bitwise
/// identical to the equivalent hand-built `SimulationBuilder` run — same
/// lattice, same seeds, same kernel, same threaded engine.
#[test]
fn scenario_execution_is_bitwise_identical_to_hand_built_run() {
    let scenario = sample_scenario();

    // The declarative path (what `tersoff-run` does).
    let outcome = scenario.execute(None).expect("scenario runs");
    let scenario_trace: Vec<(u64, u64, u64)> = outcome.variants[0]
        .trace
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect();

    // The hand-built path: everything assembled explicitly.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.04, 21);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 2,
            backend: None,
        },
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .timestep(0.001)
        .skin(1.0)
        .masses(vec![units::mass::SI])
        .temperature(400.0, 5)
        .thermo_every(5)
        .build()
        .expect("valid hand-built setup");
    sim.run(30);
    let hand_trace: Vec<(u64, u64, u64)> = sim
        .thermo_history()
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect();

    assert!(!scenario_trace.is_empty());
    assert_eq!(
        scenario_trace, hand_trace,
        "scenario execution diverged from the equivalent hand-built run"
    );
}

#[test]
fn shipped_scenarios_load_and_run_briefly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let scenarios = Scenario::discover(&dir).expect("scenarios/ loads");
    assert!(
        scenarios.len() >= 4,
        "expected the shipped scenario set, found {}",
        scenarios.len()
    );
    for (path, scenario) in scenarios {
        assert!(
            scenario.max_drift.is_some(),
            "{}: shipped scenarios must declare a drift bound for the CI smoke job",
            path.display()
        );
        // A couple of steps only — the CI smoke job runs them longer.
        let outcome = scenario
            .execute(Some(2))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(outcome.steps, 2);
        for v in &outcome.variants {
            assert!(
                v.report().final_thermo.potential < 0.0,
                "{}: {} ended unbound",
                path.display(),
                v.label
            );
        }
    }
}

/// A `properties` block rides a declarative run end to end: the observers
/// attach, the expected-value checks land in the report, and the report
/// JSON (the shape `tersoff-run` writes and `tersoff-serve` returns)
/// carries the `properties` object. Elastic constants are exercised by the
/// release-mode CI materials job; here the cheap observer + fallback
/// cohesive path keeps the debug suite fast.
#[test]
fn properties_block_attaches_observers_and_reports() {
    use lammps_tersoff_vector::scenario::{
        ExpectedProperties, PropertiesSpec, RdfSpec, StressSpec,
    };

    let mut scenario = sample_scenario();
    scenario.name = "props".into();
    scenario.max_drift = None;
    scenario.properties = Some(PropertiesSpec {
        stress: Some(StressSpec { every: 5 }),
        rdf: Some(RdfSpec {
            every: 5,
            bins: 64,
            r_max: 0.0,
        }),
        elastic: None,
        // Perturbed 400 K silicon sits near the cohesive minimum; a loose
        // tolerance keeps the check deterministic-pass without pinning a
        // thermalized energy too tightly.
        expected: Some(ExpectedProperties {
            cohesive_ev: Some(-4.63),
            lattice_a: None,
            c11_gpa: None,
            c12_gpa: None,
            c44_gpa: None,
            tolerance_pct: 5.0,
        }),
    });

    let outcome = scenario.execute(None).expect("scenario runs");
    let report = &outcome.variants[0];
    let props = report
        .properties
        .as_ref()
        .expect("full-length run measures properties");

    let stress = props.stress.as_ref().expect("stress observer attached");
    assert_eq!(stress.every, 5);
    assert!(stress.samples > 0);
    assert!(stress.time_averaged.iter().any(|&v| v != 0.0));

    let rdf = props.rdf.as_ref().expect("rdf observer attached");
    assert_eq!(rdf.bins, 64);
    assert!(rdf.r_max > 0.0, "r_max = 0 must resolve to cutoff + skin");
    assert!(rdf.samples > 0);
    assert!(rdf.g.iter().any(|&g| g > 0.0), "g(r) must see neighbors");

    assert!(props.elastic.is_none());
    let check = props
        .checks
        .iter()
        .find(|c| c.name == "cohesive_ev")
        .expect("expected block generates a cohesive check");
    assert!(check.ok, "cohesive check failed: {check:?}");
    assert!(outcome.property_violations().is_empty());

    let json = outcome.to_report_json();
    for key in ["\"properties\"", "\"stress_bar\"", "\"rdf\"", "\"checks\""] {
        assert!(json.contains(key), "report JSON missing {key}");
    }

    // A step-capped smoke run of the same spec must SKIP the measurement:
    // the capped trace is not the declared experiment.
    let capped = scenario.execute(Some(5)).expect("capped run");
    assert!(capped.variants[0].properties.is_none());
}

#[test]
fn scenario_variant_options_match_the_spec() {
    let scenario = sample_scenario();
    let options = scenario.options_for(Variant {
        mode: ExecutionMode::OptD,
        threads: 4,
    });
    assert_eq!(options.mode, ExecutionMode::OptD);
    assert_eq!(options.scheme, Scheme::FusedLanes);
    assert_eq!(options.threads, 4);
    assert_eq!(options.label(), "Opt-D/1b/w8/t4");
}
