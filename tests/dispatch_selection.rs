//! Dispatch-selection semantics at kernel granularity.
//!
//! Who decides which per-ISA kernel instance a potential executes, and in
//! which order:
//!
//! 1. `TersoffOptions::backend = Some(_)` — an explicit driver-level
//!    request, clamped to host support; overrides everything.
//! 2. `VEKTOR_BACKEND` — the environment override consulted when the
//!    options leave the choice open (`None`); unknown values warn once and
//!    fall through to detection.
//! 3. `is_x86_feature_detected!` — the widest supported implementation, in
//!    **every** build flavor (kernel-granularity dispatch inlines the
//!    intrinsics through the `#[target_feature]` trampoline, so baseline
//!    builds no longer demote to portable).
//!
//! Non-x86 targets always resolve to the portable instance — that path is
//! compile-checked by the `cross-check (aarch64)` CI job; the cfg-gated
//! test at the bottom runs wherever such a target actually executes tests.
//!
//! The env-mutating tests serialize on a local mutex; nothing here is
//! process-global anymore, but the environment itself is.

use lammps_tersoff_vector::prelude::*;
use std::sync::Mutex;
use tersoff::driver::make_range_potential;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_env_backend<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let previous = std::env::var("VEKTOR_BACKEND").ok();
    match value {
        Some(v) => std::env::set_var("VEKTOR_BACKEND", v),
        None => std::env::remove_var("VEKTOR_BACKEND"),
    }
    let result = f();
    match previous {
        Some(v) => std::env::set_var("VEKTOR_BACKEND", v),
        None => std::env::remove_var("VEKTOR_BACKEND"),
    }
    drop(guard);
    result
}

fn options(mode: ExecutionMode, scheme: Scheme, backend: Option<BackendImpl>) -> TersoffOptions {
    TersoffOptions {
        mode,
        scheme,
        width: 0,
        threads: 1,
        backend,
    }
}

/// Every optimized kernel type (scalar-opt and schemes 1a/1b/1c, each
/// precision mode) honors an explicit `TersoffOptions::backend` request at
/// kernel granularity: the built instance reports exactly the clamped
/// request.
#[test]
fn options_backend_picks_the_kernel_instance() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in [
        ExecutionMode::OptD,
        ExecutionMode::OptS,
        ExecutionMode::OptM,
    ] {
        for scheme in [
            Scheme::Scalar,
            Scheme::JLanes,
            Scheme::FusedLanes,
            Scheme::ILanes,
        ] {
            for request in BackendImpl::ALL {
                let opts = options(mode, scheme, Some(request));
                let pot = make_range_potential(TersoffParams::silicon(), opts);
                assert_eq!(
                    pot.executed_backend(),
                    Some(dispatch::clamp(request).name()),
                    "{mode:?}/{scheme:?} requested {request}"
                );
            }
        }
    }
    // The reference implementation is not backend-dispatched.
    let reference = make_range_potential(
        TersoffParams::silicon(),
        options(ExecutionMode::Ref, Scheme::Scalar, Some(BackendImpl::Avx2)),
    );
    assert_eq!(reference.executed_backend(), None);
}

/// `VEKTOR_BACKEND` selects the instance when the options leave the choice
/// open, and loses to an explicit options-level request.
#[test]
fn env_var_picks_the_kernel_instance() {
    for (value, expected) in [
        ("portable", BackendImpl::Portable),
        ("avx2", dispatch::clamp(BackendImpl::Avx2)),
        ("avx512", dispatch::clamp(BackendImpl::Avx512)),
    ] {
        let executed = with_env_backend(Some(value), || {
            make_range_potential(
                TersoffParams::silicon(),
                options(ExecutionMode::OptM, Scheme::FusedLanes, None),
            )
            .executed_backend()
        });
        assert_eq!(executed, Some(expected.name()), "VEKTOR_BACKEND={value}");
    }
    // Options-level request wins over the environment.
    let executed = with_env_backend(Some("avx512"), || {
        make_range_potential(
            TersoffParams::silicon(),
            options(
                ExecutionMode::OptM,
                Scheme::FusedLanes,
                Some(BackendImpl::Portable),
            ),
        )
        .executed_backend()
    });
    assert_eq!(executed, Some("portable"));
}

/// Unknown `VEKTOR_BACKEND` values warn (once, on stderr) and fall back to
/// detection; `auto`/empty/unset mean "detect the widest supported".
#[test]
fn unknown_env_values_fall_back_to_detection() {
    let detected = dispatch::detect_best().name();
    for value in [Some("definitely-not-an-isa"), Some("auto"), Some(""), None] {
        let executed = with_env_backend(value, || {
            make_range_potential(
                TersoffParams::silicon(),
                options(ExecutionMode::OptM, Scheme::FusedLanes, None),
            )
            .executed_backend()
        });
        assert_eq!(executed, Some(detected), "VEKTOR_BACKEND={value:?}");
    }
}

/// The whole point of the tentpole: in *any* build of this test (baseline
/// RUSTFLAGS included), auto-detection on an AVX2+FMA host selects the
/// intrinsic instance — the fast path no longer needs compile-time
/// features.
#[cfg(target_arch = "x86_64")]
#[test]
fn default_build_engages_the_widest_supported_instance() {
    if !dispatch::supported(BackendImpl::Avx2) {
        eprintln!("skipping: avx2+fma not available on this host");
        return;
    }
    let executed = with_env_backend(None, || {
        make_range_potential(
            TersoffParams::silicon(),
            options(ExecutionMode::OptM, Scheme::FusedLanes, None),
        )
        .executed_backend()
    });
    assert_ne!(executed, Some("portable"));
    assert_eq!(executed, Some(dispatch::detect_best().name()));
}

/// Off x86_64 every request — explicit or detected — resolves to the
/// portable instance (compiled everywhere; executed by the aarch64
/// cross-check target when tests run there).
#[cfg(not(target_arch = "x86_64"))]
#[test]
fn non_x86_targets_always_run_portable() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(dispatch::detect_best(), BackendImpl::Portable);
    for request in BackendImpl::ALL {
        assert_eq!(dispatch::clamp(request), BackendImpl::Portable);
        let pot = make_range_potential(
            TersoffParams::silicon(),
            options(ExecutionMode::OptM, Scheme::FusedLanes, Some(request)),
        );
        assert_eq!(pot.executed_backend(), Some("portable"));
    }
}
