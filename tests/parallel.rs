//! Correctness of the thread-parallel force engine: for every execution mode
//! × scheme combination the threaded driver must reproduce the single-thread
//! forces and energy **bitwise** — the engine partitions atoms into fixed
//! chunks whose boundaries depend only on the atom count and merges the
//! per-chunk buffers in fixed chunk order, so the floating-point summation
//! order is identical for every thread count.

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;

fn silicon_workload() -> (SimBox, AtomData, NeighborList) {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 4242);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    (sim_box, atoms, list)
}

fn compute_with(
    options: TersoffOptions,
    b: &SimBox,
    atoms: &AtomData,
    list: &NeighborList,
) -> ComputeOutput {
    let mut pot = make_potential(TersoffParams::silicon(), options);
    let mut out = ComputeOutput::zeros(atoms.n_total());
    // Two evaluations so the second one exercises the buffer-reuse path.
    pot.compute(atoms, b, list, &mut out);
    pot.compute(atoms, b, list, &mut out);
    out
}

#[test]
fn threaded_engine_matches_single_thread_for_every_mode_and_scheme() {
    let (b, atoms, list) = silicon_workload();

    for mode in ExecutionMode::ALL {
        for scheme in [
            Scheme::Scalar,
            Scheme::JLanes,
            Scheme::FusedLanes,
            Scheme::ILanes,
        ] {
            let base = TersoffOptions {
                mode,
                scheme,
                width: 0,
                threads: 1,
                backend: None,
            };
            let reference = compute_with(base, &b, &atoms, &list);

            for threads in [2usize, 4, 8] {
                let out = compute_with(base.with_threads(threads), &b, &atoms, &list);
                assert_eq!(
                    out.energy.to_bits(),
                    reference.energy.to_bits(),
                    "{mode:?}/{scheme:?} t{threads}: energy not bitwise identical"
                );
                assert_eq!(
                    out.virial.to_bits(),
                    reference.virial.to_bits(),
                    "{mode:?}/{scheme:?} t{threads}: virial not bitwise identical"
                );
                for (i, (a, r)) in out.forces.iter().zip(reference.forces.iter()).enumerate() {
                    for d in 0..3 {
                        assert_eq!(
                            a[d].to_bits(),
                            r[d].to_bits(),
                            "{mode:?}/{scheme:?} t{threads}: force[{i}][{d}] differs"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn threaded_simulation_conserves_energy() {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 99);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(4),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(500.0, 7)
        .thermo_every(10)
        .build()
        .expect("valid threaded setup");
    let report = sim.run(100);
    assert!(
        report.max_drift < 1e-3,
        "threaded drift {}",
        report.max_drift
    );
}

fn thermo_trace(threads: usize, steps: u64) -> Vec<(u64, u64)> {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.04, 21);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions::default().with_threads(threads),
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(400.0, 5)
        .thermo_every(5)
        .build()
        .expect("valid threaded setup");
    sim.run(steps);
    sim.thermo_history()
        .iter()
        .map(|t| (t.step, t.total.to_bits()))
        .collect()
}

#[test]
fn same_seed_gives_bitwise_identical_thermo_trace() {
    // Determinism of the threaded engine: repeated runs with the same seed
    // and thread count agree to the last bit, because per-chunk buffers are
    // merged in fixed chunk order regardless of scheduling.
    let a = thermo_trace(4, 30);
    let b = thermo_trace(4, 30);
    assert_eq!(a, b);
    // And since chunk boundaries are fixed by the atom count (never the
    // thread count), a different thread count agrees **bitwise** too — the
    // ParallelRuntime contract (see tests/runtime_equivalence.rs for the
    // full-step version with rebuilds and ghosts).
    let c = thermo_trace(2, 30);
    assert_eq!(a, c);
}

#[test]
fn auto_thread_count_resolves_and_computes() {
    let (b, atoms, list) = silicon_workload();
    let out = compute_with(TersoffOptions::default().with_threads(0), &b, &atoms, &list);
    assert!(out.energy < 0.0);
    assert!(TersoffOptions::default()
        .with_threads(0)
        .label()
        .starts_with("Opt-M/1b/w16"));
    assert_eq!(
        TersoffOptions::default().with_threads(4).label(),
        "Opt-M/1b/w16/t4"
    );
}
