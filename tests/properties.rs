//! Materials-property layer tests: the virial-tensor contract, the
//! stress/RDF observers and the elastic-constants driver.
//!
//! The pinned pressure goldens below were generated on the scalar-virial
//! code base (before the tensor promotion) by the `generate_pressure_goldens`
//! test. They pin the satellite guarantee of the tensor change: **pressure —
//! which flows from the virial-tensor trace — is bitwise identical to the
//! pre-existing scalar-virial pressure** for every mode × scheme, so the
//! tensor accumulation cannot silently shift thermo traces.

use lammps_tersoff_vector::prelude::*;

/// One short hot trajectory; returns (step, pressure bits) per thermo sample.
fn pressure_trace(mode: ExecutionMode, scheme: Scheme) -> Vec<(u64, u64)> {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 42);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            scheme,
            width: 0,
            threads: 1,
            backend: None,
        },
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .thermo_every(5)
        .build()
        .expect("valid setup");
    sim.run(30);
    sim.thermo_history()
        .iter()
        .map(|t| (t.step, t.pressure.to_bits()))
        .collect()
}

/// Regenerates the table below. Run with:
/// `cargo test --release generate_pressure_goldens -- --ignored --nocapture`
#[test]
#[ignore]
fn generate_pressure_goldens() {
    for mode in ExecutionMode::ALL {
        for scheme in Scheme::ALL {
            if mode == ExecutionMode::Ref && scheme != Scheme::Scalar {
                continue; // Ref ignores the scheme
            }
            let trace = pressure_trace(mode, scheme);
            print!("    (\"{}\", \"{}\", &[", mode.label(), scheme.label());
            for (step, bits) in &trace {
                print!("({step}, {bits:#018x}), ");
            }
            println!("]),");
        }
    }
}

/// One golden series: (mode, scheme, [(step, pressure bits)]).
type PressureGolden = (&'static str, &'static str, &'static [(u64, u64)]);

/// Captured on the scalar-virial code base — regenerate only with
/// `generate_pressure_goldens` on a commit *before* a change that is
/// allowed to move pressure.
const PRESSURE_GOLDENS: &[PressureGolden] = &[
    (
        "Ref",
        "scalar",
        &[
            (0, 0x40ad77e7952cb6d8),
            (5, 0x40b0874ebee41021),
            (10, 0x40b41d064e944756),
            (15, 0x40b678d441a07cd1),
            (20, 0x40b587470c73bc52),
            (25, 0x40b1c097358b1c7e),
            (30, 0x40ab79f434f3878a),
        ],
    ),
    (
        "Opt-D",
        "scalar",
        &[
            (0, 0x40ad77e7952cb6d2),
            (5, 0x40b0874ebee4101f),
            (10, 0x40b41d064e944751),
            (15, 0x40b678d441a07d63),
            (20, 0x40b587470c73bc7c),
            (25, 0x40b1c097358b1c53),
            (30, 0x40ab79f434f386f9),
        ],
    ),
    (
        "Opt-D",
        "1a",
        &[
            (0, 0x40ad77e7952cb6d8),
            (5, 0x40b0874ebee41010),
            (10, 0x40b41d064e94474b),
            (15, 0x40b678d441a07d76),
            (20, 0x40b587470c73bca2),
            (25, 0x40b1c097358b1cca),
            (30, 0x40ab79f434f38747),
        ],
    ),
    (
        "Opt-D",
        "1b",
        &[
            (0, 0x40ad77e7952cb6d2),
            (5, 0x40b0874ebee4101f),
            (10, 0x40b41d064e94475c),
            (15, 0x40b678d441a07d40),
            (20, 0x40b587470c73bc4b),
            (25, 0x40b1c097358b1c63),
            (30, 0x40ab79f434f3871e),
        ],
    ),
    (
        "Opt-D",
        "1c",
        &[
            (0, 0x40ad77e7952cb6d5),
            (5, 0x40b0874ebee4101d),
            (10, 0x40b41d064e94474c),
            (15, 0x40b678d441a07d64),
            (20, 0x40b587470c73bc64),
            (25, 0x40b1c097358b1c51),
            (30, 0x40ab79f434f386f9),
        ],
    ),
    (
        "Opt-S",
        "scalar",
        &[
            (0, 0x40ad7b31c331d2e7),
            (5, 0x40b089e0c6fbe315),
            (10, 0x40b41e676d25d180),
            (15, 0x40b67aa2219580e3),
            (20, 0x40b5897523206e84),
            (25, 0x40b1c23945a82c82),
            (30, 0x40ab7efe9fc0a067),
        ],
    ),
    (
        "Opt-S",
        "1a",
        &[
            (0, 0x40ad7b318f1a4fb0),
            (5, 0x40b089e0c6e16de8),
            (10, 0x40b41e686462434d),
            (15, 0x40b67aa176bc68a8),
            (20, 0x40b589774466fa64),
            (25, 0x40b1c239a61282e0),
            (30, 0x40ab7efa0f9db48a),
        ],
    ),
    (
        "Opt-S",
        "1b",
        &[
            (0, 0x40ad7b318f1a4fb0),
            (5, 0x40b089e0b37b2ebd),
            (10, 0x40b41e66778bb074),
            (15, 0x40b67aa1d0da923b),
            (20, 0x40b58978a105b53d),
            (25, 0x40b1c239a4dbf110),
            (30, 0x40ab7efadffebe88),
        ],
    ),
    (
        "Opt-S",
        "1c",
        &[
            (0, 0x40ad7b31750e8e15),
            (5, 0x40b089e0cdb06f3a),
            (10, 0x40b41e668b4e8335),
            (15, 0x40b67aa19e346715),
            (20, 0x40b58978af5dc934),
            (25, 0x40b1c2399a2d599e),
            (30, 0x40ab7efa887deb98),
        ],
    ),
    (
        "Opt-M",
        "scalar",
        &[
            (0, 0x40ad7b3177244afd),
            (5, 0x40b089e0bde6b837),
            (10, 0x40b41e6826a058b9),
            (15, 0x40b67aa1c7e3b67f),
            (20, 0x40b58977323af3b1),
            (25, 0x40b1c239b43810e8),
            (30, 0x40ab7efa97c43d4f),
        ],
    ),
    (
        "Opt-M",
        "1a",
        &[
            (0, 0x40ad7b31737b27a0),
            (5, 0x40b089e0b9b3ae41),
            (10, 0x40b41e682364b565),
            (15, 0x40b67aa1c2abe4ea),
            (20, 0x40b5897747eda62e),
            (25, 0x40b1c239b3fdd58c),
            (30, 0x40ab7efaa056e00e),
        ],
    ),
    (
        "Opt-M",
        "1b",
        &[
            (0, 0x40ad7b317cb682bd),
            (5, 0x40b089e0b9be9cfa),
            (10, 0x40b41e667e4f6610),
            (15, 0x40b67aa1d3fcc214),
            (20, 0x40b58978aab91e8f),
            (25, 0x40b1c239a3579288),
            (30, 0x40ab7efad00c653d),
        ],
    ),
    (
        "Opt-M",
        "1c",
        &[
            (0, 0x40ad7b316d460aba),
            (5, 0x40b089e0c236efb1),
            (10, 0x40b41e6696fb88f5),
            (15, 0x40b67aa1be0fdc9a),
            (20, 0x40b58978b693782a),
            (25, 0x40b1c239a4d13cff),
            (30, 0x40ab7efa9fecac84),
        ],
    ),
];

#[test]
fn pressure_is_bitwise_identical_to_scalar_virial_goldens() {
    assert!(
        !PRESSURE_GOLDENS.is_empty(),
        "golden table must be populated (run generate_pressure_goldens)"
    );
    for (mode_s, scheme_s, expected) in PRESSURE_GOLDENS {
        let mode: ExecutionMode = mode_s.parse().unwrap();
        let scheme: Scheme = scheme_s.parse().unwrap();
        let trace = pressure_trace(mode, scheme);
        assert_eq!(
            trace.len(),
            expected.len(),
            "{mode_s}/{scheme_s}: sample count changed"
        );
        for ((step, bits), (e_step, e_bits)) in trace.iter().zip(expected.iter()) {
            assert_eq!(step, e_step, "{mode_s}/{scheme_s}: thermo cadence changed");
            assert_eq!(
                bits,
                e_bits,
                "{mode_s}/{scheme_s} step {step}: pressure {:e} != golden {:e}",
                f64::from_bits(*bits),
                f64::from_bits(*e_bits)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Virial-tensor validation
// ---------------------------------------------------------------------------

/// Final-step ComputeOutput of a short hot run for a mode × scheme.
fn tensor_of(mode: ExecutionMode, scheme: Scheme, threads: usize) -> ([f64; 6], f64) {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 42);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            scheme,
            width: 0,
            threads,
            backend: None,
        },
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .threads(threads)
        .build()
        .expect("valid setup");
    sim.run(20);
    let out = &sim.compute_out;
    (out.virial_tensor, out.virial)
}

#[test]
fn tensor_trace_matches_scalar_virial_for_every_mode_and_scheme() {
    for mode in ExecutionMode::ALL {
        for scheme in Scheme::ALL {
            if mode == ExecutionMode::Ref && scheme != Scheme::Scalar {
                continue;
            }
            let (tensor, virial) = tensor_of(mode, scheme, 1);
            let trace = tensor[0] + tensor[1] + tensor[2];
            // The scalar channel fuses the three diagonal products per
            // interaction, the tensor sums them per component — identical
            // math, different association, so tight-relative not bitwise.
            let tol = match mode {
                ExecutionMode::Ref | ExecutionMode::OptD => 1e-9,
                _ => 1e-3, // f32 accumulation modes
            };
            assert!(
                (trace - virial).abs() <= tol * virial.abs().max(1.0),
                "{}/{}: trace {trace} vs virial {virial}",
                mode.label(),
                scheme.label()
            );
        }
    }
}

#[test]
fn tensor_is_bitwise_identical_across_thread_counts() {
    for mode in [ExecutionMode::Ref, ExecutionMode::OptD, ExecutionMode::OptS] {
        let (t1, v1) = tensor_of(mode, Scheme::JLanes, 1);
        for threads in [2, 4] {
            let (tn, vn) = tensor_of(mode, Scheme::JLanes, threads);
            assert_eq!(v1.to_bits(), vn.to_bits(), "{}: virial", mode.label());
            for c in 0..6 {
                assert_eq!(
                    t1[c].to_bits(),
                    tn[c].to_bits(),
                    "{} threads={threads}: tensor[{c}]",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn tensor_matches_finite_difference_strain_derivative() {
    // The physics check: W_ab = -dE/dε_ab at zero kinetic contribution.
    // Apply a small affine strain to a perturbed cell and compare the
    // energy's strain derivative against the tensor from the unstrained
    // configuration (reference kernel, f64).
    let lattice = Lattice::silicon([2, 2, 2]);
    let (sim_box, atoms) = lattice.build_perturbed(0.05, 9);

    let energy_of = |strain: [f64; 3]| -> f64 {
        let lengths = sim_box.lengths();
        let hi = [
            lengths[0] * (1.0 + strain[0]),
            lengths[1] * (1.0 + strain[1]),
            lengths[2] * (1.0 + strain[2]),
        ];
        let strained_box = SimBox::orthogonal([0.0; 3], hi);
        let mut strained = atoms.clone();
        for i in 0..strained.n_local {
            for (d, s) in strain.iter().enumerate() {
                strained.x[i][d] *= 1.0 + s;
            }
            strained.x[i] = strained_box.wrap(strained.x[i]);
        }
        let mut potential = make_potential(
            TersoffParams::silicon(),
            TersoffOptions {
                mode: ExecutionMode::Ref,
                scheme: Scheme::Scalar,
                width: 0,
                threads: 1,
                backend: None,
            },
        );
        let list = NeighborList::build_binned(
            &strained,
            &strained_box,
            NeighborSettings::new(potential.cutoff(), 0.5),
        );
        let mut out = ComputeOutput::zeros(strained.n_total());
        potential.compute(&strained, &strained_box, &list, &mut out);
        out.energy
    };

    let mut potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode: ExecutionMode::Ref,
            scheme: Scheme::Scalar,
            width: 0,
            threads: 1,
            backend: None,
        },
    );
    let list = NeighborList::build_binned(
        &atoms,
        &sim_box,
        NeighborSettings::new(potential.cutoff(), 0.5),
    );
    let mut out = ComputeOutput::zeros(atoms.n_total());
    potential.compute(&atoms, &sim_box, &list, &mut out);

    let h = 1e-6;
    for (c, axis) in [(0usize, 0usize), (1, 1), (2, 2)] {
        let mut plus = [0.0; 3];
        plus[axis] = h;
        let mut minus = [0.0; 3];
        minus[axis] = -h;
        // dE/dε_aa = -W_aa for the diagonal components.
        let de = (energy_of(plus) - energy_of(minus)) / (2.0 * h);
        let w = out.virial_tensor[c];
        assert!(
            (de + w).abs() < 1e-3 * w.abs().max(1.0),
            "component {c}: dE/de = {de}, -W = {}",
            -w
        );
    }
}
