//! The fault-tolerance contract, end to end:
//!
//! * an injected panic surfaces as a typed [`RunError::Panicked`], the
//!   simulation refuses further runs, and the shared [`ParallelRuntime`]
//!   stays healthy — a fresh simulation on the *same* runtime is bitwise
//!   identical to one on a fresh runtime,
//! * an injected NaN is caught by the [`HealthGuard`] as a typed
//!   [`RunError::Diverged`] at a step and reason that are identical across
//!   thread counts and kernel modes (the abort is deterministic),
//! * checkpoint → resume continues a run **bitwise identically** — same
//!   thermo samples, same final state bits,
//! * the scenario batch runner isolates a fault to the targeted variant:
//!   with `--keep-going` semantics the other variants still run on the
//!   reused runtime and match the fault-free run bit for bit,
//! * the builder rejects non-finite configuration with typed errors, and
//! * a disarmed trajectory writer surfaces as a [`RunReport`] warning
//!   instead of silently truncating the file.

use lammps_tersoff_vector::prelude::*;
use lammps_tersoff_vector::scenario::{
    FaultSpec, LatticeSpec, MatrixSpec, ParamSet, PotentialSpec, RunPolicy, RunSpec, Scenario,
    SystemSpec, VariantStatus,
};

fn silicon_setup() -> (SimBox, AtomData) {
    Lattice::silicon([2, 2, 2]).build_perturbed(0.04, 11)
}

fn silicon_potential(mode: ExecutionMode, threads: usize) -> Box<dyn Potential> {
    make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            threads,
            ..TersoffOptions::default()
        },
    )
}

fn trace_bits(sim: &Simulation<Box<dyn Potential>>) -> Vec<(u64, u64, u64)> {
    sim.thermo_history()
        .iter()
        .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
        .collect()
}

// ---------------------------------------------------------------------------
// Typed panics + runtime reuse
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_is_typed_and_the_runtime_survives() {
    let runtime = ParallelRuntime::new(2);

    // A simulation that panics inside a worker at step 3.
    let (sim_box, atoms) = silicon_setup();
    let mut faulty = Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::OptM, 2))
        .runtime(&runtime)
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .thermo_every(2)
        .inject_fault(FaultPlan::new(FaultKind::Panic, 3))
        .build()
        .expect("valid setup");
    match faulty.try_run(10) {
        Err(RunError::Panicked { step, message }) => {
            assert_eq!(step, 3);
            assert!(message.contains("injected fault"), "message: {message}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The faulted simulation refuses to continue...
    assert!(matches!(faulty.try_run(1), Err(RunError::AlreadyFaulted)));
    drop(faulty);

    // ...but the runtime it panicked on is still healthy: a fresh run on the
    // *same* runtime is bitwise identical to one on a fresh runtime.
    let run_on = |rt: &ParallelRuntime| {
        let (sim_box, atoms) = silicon_setup();
        let mut sim =
            Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::OptM, 2))
                .runtime(rt)
                .masses(vec![units::mass::SI])
                .temperature(300.0, 7)
                .thermo_every(2)
                .build()
                .expect("valid setup");
        sim.run(10);
        trace_bits(&sim)
    };
    let reused = run_on(&runtime);
    let fresh = run_on(&ParallelRuntime::new(2));
    assert!(!reused.is_empty());
    assert_eq!(
        reused, fresh,
        "a worker panic must not perturb later runs on the same runtime"
    );
}

// ---------------------------------------------------------------------------
// Health-guard divergence: typed and deterministic
// ---------------------------------------------------------------------------

fn diverge_with(mode: ExecutionMode, threads: usize) -> (u64, String) {
    let (sim_box, atoms) = silicon_setup();
    let mut sim = Simulation::builder(atoms, sim_box, silicon_potential(mode, threads))
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .thermo_every(5)
        .inject_fault(FaultPlan::new(FaultKind::Nan, 4))
        .observe(HealthGuard::new(HealthSettings::default()))
        .build()
        .expect("valid setup");
    match sim.try_run(20) {
        Err(RunError::Diverged {
            step,
            reason,
            report,
        }) => {
            assert!(
                matches!(report.status, RunStatus::Diverged { .. }),
                "partial report must record the abort"
            );
            assert!(report.steps < 20, "the run must stop early");
            (step, reason)
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn health_abort_is_deterministic_across_threads_and_modes() {
    let (step, reason) = diverge_with(ExecutionMode::Ref, 1);
    assert_eq!(step, 4, "NaN injected at step 4 must be caught at step 4");
    assert!(
        reason.contains("non-finite"),
        "reason should name the violation: {reason}"
    );
    // Bitwise identical across thread counts (same kernel): the health
    // checks read only deterministic state.
    assert_eq!((step, reason.clone()), diverge_with(ExecutionMode::Ref, 4));
    // Across kernels the embedded float digits differ (mixed vs double
    // precision trajectories), but the abort step and the named violation
    // are the same.
    let (m_step, m_reason) = diverge_with(ExecutionMode::OptM, 2);
    assert_eq!(m_step, step);
    let violation = |r: &str| r.split(':').next().unwrap().to_string();
    assert_eq!(violation(&m_reason), violation(&reason));
    // `run` (the infallible form) reports the same abort via the status.
    let (sim_box, atoms) = silicon_setup();
    let mut sim = Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::Ref, 1))
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .inject_fault(FaultPlan::new(FaultKind::Nan, 4))
        .observe(HealthGuard::new(HealthSettings::default()))
        .build()
        .expect("valid setup");
    let report = sim.run(20);
    assert_eq!(
        report.status,
        RunStatus::Diverged {
            step,
            reason: reason.clone()
        }
    );
}

// ---------------------------------------------------------------------------
// Checkpoint → resume, bitwise
// ---------------------------------------------------------------------------

#[test]
fn resumed_run_is_bitwise_identical_to_an_uninterrupted_one() {
    let build = |resume: Option<Checkpoint>| {
        let (sim_box, atoms) = silicon_setup();
        let mut b = Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::OptM, 2))
            .masses(vec![units::mass::SI])
            .thermo_every(5);
        b = match resume {
            None => b.temperature(500.0, 3),
            Some(cp) => b.resume_from(cp),
        };
        b.build().expect("valid setup")
    };

    // The uninterrupted reference: 40 steps in one go.
    let mut whole = build(None);
    whole.run(40);
    let whole_trace = trace_bits(&whole);

    // The interrupted run: 20 steps, checkpoint, rebuild, 20 more.
    let mut first = build(None);
    first.run(20);
    let checkpoint = first.checkpoint();
    let serialized = checkpoint.to_json();
    let restored = Checkpoint::from_json(&serialized).expect("checkpoint round-trips");
    drop(first);
    let mut second = build(Some(restored));
    assert_eq!(second.step, 20);
    second.run(20);

    // Every thermo sample from the resume point on matches bit for bit, and
    // the final microstates serialize to identical bytes.
    let resumed_trace = trace_bits(&second);
    let whole_tail: Vec<_> = whole_trace.iter().filter(|t| t.0 >= 20).collect();
    let resumed_tail: Vec<_> = resumed_trace.iter().filter(|t| t.0 >= 20).collect();
    assert!(!whole_tail.is_empty());
    assert_eq!(
        whole_tail, resumed_tail,
        "thermo traces diverged after resume"
    );
    assert_eq!(
        whole.checkpoint().to_json(),
        second.checkpoint().to_json(),
        "final microstates differ after resume"
    );
}

// ---------------------------------------------------------------------------
// Scenario batch isolation
// ---------------------------------------------------------------------------

fn two_variant_scenario() -> Scenario {
    Scenario {
        name: "fault_isolation".into(),
        description: "batch-isolation fixture".into(),
        system: SystemSpec {
            lattice: LatticeSpec::Silicon,
            cells: [2, 2, 2],
            perturbation: 0.04,
            lattice_seed: 21,
            temperature: 400.0,
            velocity_seed: 5,
        },
        potential: PotentialSpec {
            params: ParamSet::Silicon,
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 2,
            backend: None,
        },
        run: RunSpec {
            timestep: 0.001,
            skin: 1.0,
            steps: 12,
            thermo_every: 4,
        },
        dump: None,
        decomposition: None,
        matrix: Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptD],
            threads: vec![2],
        }),
        max_drift: Some(1e-3),
        health: None,
        checkpoint: None,
        fault: None,
        properties: None,
    }
}

#[test]
fn batch_isolates_an_injected_panic_to_the_targeted_variant() {
    let scenario = two_variant_scenario();

    // Fault-free baseline.
    let clean = scenario
        .execute_with(&RunPolicy::default())
        .expect("baseline runs");
    assert!(clean.variants.iter().all(|v| v.status == VariantStatus::Ok));

    // Inject a panic into the Ref variant only; keep going past it.
    let policy = RunPolicy {
        keep_going: true,
        fault_override: Some(FaultSpec {
            kind: FaultKind::Panic,
            step: 2,
            variant: Some("Ref".into()),
        }),
        ..RunPolicy::default()
    };
    let faulted = scenario.execute_with(&policy).expect("batch completes");
    assert_eq!(faulted.variants.len(), clean.variants.len());

    for (f, c) in faulted.variants.iter().zip(clean.variants.iter()) {
        assert_eq!(f.label, c.label);
        if f.label.contains("Ref") {
            assert_eq!(f.status, VariantStatus::Panicked, "{}", f.label);
            assert!(f.report.is_none());
            assert!(f.error.is_some());
        } else {
            // The surviving variant ran after the crash, on the same shared
            // runtime (both variants resolve to 2 threads) — and its results
            // are bit-for-bit what the fault-free batch produced.
            assert_eq!(f.status, VariantStatus::Ok, "{}", f.label);
            let bits = |v: &lammps_tersoff_vector::scenario::VariantReport| {
                v.trace
                    .iter()
                    .map(|t| (t.step, t.potential.to_bits(), t.total.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert!(!f.trace.is_empty());
            assert_eq!(
                bits(f),
                bits(c),
                "{}: surviving variant perturbed by the crash",
                f.label
            );
        }
    }
}

#[test]
fn deterministic_divergence_is_not_retried_but_a_panic_is() {
    let mut scenario = two_variant_scenario();
    scenario.matrix = None; // single Opt-M variant
    let policy = RunPolicy {
        retries: 2,
        keep_going: true,
        fault_override: Some(FaultSpec {
            kind: FaultKind::Nan,
            step: 3,
            variant: None,
        }),
        ..RunPolicy::default()
    };
    // Without a health guard the NaN just propagates; add one via the spec.
    scenario.health = Some(lammps_tersoff_vector::scenario::HealthSpec {
        every: 1,
        max_temperature: None,
        max_displacement: None,
    });
    let outcome = scenario.execute_with(&policy).expect("batch completes");
    let v = &outcome.variants[0];
    assert_eq!(v.status, VariantStatus::Diverged);
    assert_eq!(v.attempts, 1, "divergence is deterministic — never retried");
    // The partial report is preserved alongside the typed error.
    assert!(v.report.is_some());
    assert!(matches!(
        v.report.as_ref().unwrap().status,
        RunStatus::Diverged { step: 3, .. }
    ));

    // A panic, by contrast, consumes every retry.
    let policy = RunPolicy {
        retries: 2,
        keep_going: true,
        fault_override: Some(FaultSpec {
            kind: FaultKind::Panic,
            step: 3,
            variant: None,
        }),
        ..RunPolicy::default()
    };
    let outcome = scenario.execute_with(&policy).expect("batch completes");
    let v = &outcome.variants[0];
    assert_eq!(v.status, VariantStatus::Panicked);
    assert_eq!(v.attempts, 3, "1 attempt + 2 retries");
}

#[test]
fn fault_spec_env_syntax_round_trips() {
    let spec = FaultSpec::parse_env("panic@5@Ref").expect("valid spec");
    assert_eq!(spec.kind, FaultKind::Panic);
    assert_eq!(spec.step, 5);
    assert_eq!(spec.variant.as_deref(), Some("Ref"));
    assert!(spec.applies_to("Ref/1b/w8/t2"));
    assert!(!spec.applies_to("Opt-D/1b/w8/t2"));

    let spec = FaultSpec::parse_env(" nan@12 ").expect("valid spec");
    assert_eq!(spec.kind, FaultKind::Nan);
    assert_eq!(spec.step, 12);
    assert!(spec.variant.is_none());
    assert!(spec.applies_to("anything"));

    assert!(FaultSpec::parse_env("panic").is_err());
    assert!(FaultSpec::parse_env("segfault@3").is_err());
    assert!(FaultSpec::parse_env("panic@notanumber").is_err());
}

// ---------------------------------------------------------------------------
// Builder validation + warning propagation
// ---------------------------------------------------------------------------

type SiBuilder = SimulationBuilder<Box<dyn Potential>>;

#[test]
fn builder_rejects_non_finite_configuration() {
    let build = |f: fn(SiBuilder) -> SiBuilder| {
        let (sim_box, atoms) = silicon_setup();
        let b = Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::Ref, 1))
            .masses(vec![units::mass::SI]);
        f(b).build().err()
    };
    assert!(matches!(
        build(|b| b.timestep(f64::INFINITY)),
        Some(BuildError::NonFiniteTimestep(_))
    ));
    assert!(matches!(
        build(|b| b.timestep(f64::NAN)),
        Some(BuildError::NonFiniteTimestep(_))
    ));
    assert!(matches!(
        build(|b| b.skin(f64::NAN)),
        Some(BuildError::NonFiniteSkin(_))
    ));
    assert!(matches!(
        build(|b| b.temperature(f64::NAN, 1)),
        Some(BuildError::InvalidTemperature(_))
    ));
    assert!(matches!(
        build(|b| b.temperature(-10.0, 1)),
        Some(BuildError::InvalidTemperature(_))
    ));
    assert!(matches!(
        build(|b| b.masses(vec![f64::NAN])),
        Some(BuildError::NonFiniteMass { atom_type: 0, .. })
    ));
}

#[test]
fn disarmed_dump_surfaces_as_a_report_warning() {
    // /dev/full accepts opens but fails every write flush — the dump must
    // disarm itself and surface the truncation in the report warnings.
    let Ok(dump) = XyzDump::create("/dev/full", 1, vec!["Si".into()]) else {
        eprintln!("skipping: /dev/full not available");
        return;
    };
    let (sim_box, atoms) = silicon_setup();
    let mut sim = Simulation::builder(atoms, sim_box, silicon_potential(ExecutionMode::Ref, 1))
        .masses(vec![units::mass::SI])
        .temperature(300.0, 7)
        .observe(dump)
        .build()
        .expect("valid setup");
    let report = sim.run(20);
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("xyz dump disarmed")),
        "warnings: {:?}",
        report.warnings
    );
    let dump = sim.observer::<XyzDump>().expect("dump registered");
    assert!(dump.error().is_some());
}
