//! Cross-crate integration tests: full simulations driven through the public
//! API, exercising every execution mode the paper evaluates, the domain
//! decomposition, and the energy-conservation / precision claims.

#![allow(clippy::needless_range_loop)] // stencil-style 0..3 loops are intentional

use lammps_tersoff_vector::prelude::*;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::ComputeOutput;

fn silicon_simulation(
    mode: ExecutionMode,
    scheme: Scheme,
    steps: u64,
) -> (Simulation<Box<dyn Potential>>, RunReport) {
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.03, 17);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            scheme,
            width: 0,
            threads: 1,
            backend: None,
        },
    );
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(600.0, 5)
        .thermo_every(10)
        .build()
        .expect("valid simulation setup");
    let report = sim.run(steps);
    (sim, report)
}

#[test]
fn nve_energy_is_conserved_with_the_reference_solver() {
    let (sim, report) = silicon_simulation(ExecutionMode::Ref, Scheme::Scalar, 100);
    assert!(report.max_drift < 5e-5, "Ref drift {}", report.max_drift);
    assert!(sim.current_thermo().temperature > 100.0);
    assert_eq!(report.total_steps, 100);
}

#[test]
fn nve_energy_is_conserved_with_every_optimized_mode() {
    for (mode, scheme) in [
        (ExecutionMode::OptD, Scheme::JLanes),
        (ExecutionMode::OptD, Scheme::FusedLanes),
        (ExecutionMode::OptS, Scheme::FusedLanes),
        (ExecutionMode::OptM, Scheme::FusedLanes),
        (ExecutionMode::OptM, Scheme::ILanes),
    ] {
        let (_, report) = silicon_simulation(mode, scheme, 100);
        // Single precision drifts more than double but must stay small; the
        // paper's Fig. 3 bound for a *million* steps is 2e-5 on a much larger
        // system, so a short run must be far tighter than 1e-3.
        let bound = if mode == ExecutionMode::OptD {
            5e-5
        } else {
            1e-3
        };
        assert!(
            report.max_drift < bound,
            "{mode:?}/{scheme:?} drift {}",
            report.max_drift
        );
    }
}

#[test]
fn all_execution_modes_agree_on_the_trajectory_start() {
    // One force evaluation on identical coordinates: Opt-D matches Ref to
    // double precision, Opt-S/M to single precision.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.06, 23);
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));

    let mut out_ref = ComputeOutput::zeros(atoms.n_total());
    make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode: ExecutionMode::Ref,
            scheme: Scheme::Scalar,
            width: 0,
            threads: 1,
            backend: None,
        },
    )
    .compute(&atoms, &sim_box, &list, &mut out_ref);

    for mode in [
        ExecutionMode::OptD,
        ExecutionMode::OptS,
        ExecutionMode::OptM,
    ] {
        for scheme in [
            Scheme::Scalar,
            Scheme::JLanes,
            Scheme::FusedLanes,
            Scheme::ILanes,
        ] {
            let mut out = ComputeOutput::zeros(atoms.n_total());
            make_potential(
                TersoffParams::silicon(),
                TersoffOptions {
                    mode,
                    scheme,
                    width: 0,
                    threads: 1,
                    backend: None,
                },
            )
            .compute(&atoms, &sim_box, &list, &mut out);
            let tol = if mode == ExecutionMode::OptD {
                1e-9
            } else {
                3e-5
            };
            let rel = ((out.energy - out_ref.energy) / out_ref.energy).abs();
            assert!(rel < tol, "{mode:?}/{scheme:?} energy off by {rel}");
            let force_tol = if mode == ExecutionMode::OptD {
                1e-8
            } else {
                5e-3
            };
            assert!(
                out.max_force_difference(&out_ref) < force_tol,
                "{mode:?}/{scheme:?} force diff {}",
                out.max_force_difference(&out_ref)
            );
        }
    }
}

/// Silicon setup shared by the decomposed-run tests: hot enough to migrate
/// atoms and rebuild neighbor lists within a short run.
fn decomposed_setup<P: Potential>(potential: P) -> SimulationBuilder<P> {
    let (sim_box, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.04, 31);
    Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI])
        .temperature(1200.0, 5)
        .thermo_every(10)
        .skin(0.7)
}

fn force_bits(sim: &Simulation<impl Potential>) -> Vec<[u64; 3]> {
    sim.atoms.f[..sim.atoms.n_local]
        .iter()
        .map(|f| [f[0].to_bits(), f[1].to_bits(), f[2].to_bits()])
        .collect()
}

#[test]
fn decomposed_tersoff_run_is_bitwise_identical_to_single_domain() {
    let params = TersoffParams::silicon();
    let mut single = decomposed_setup(TersoffRef::new(params.clone()))
        .build()
        .expect("valid setup");
    let reference = single.run(40);

    let mut dom = DomainSimulation::new(decomposed_setup(TersoffRef::new(params)), [2, 2, 2])
        .expect("valid grid");
    let report = dom.run(40);

    assert_eq!(
        report.final_thermo.total.to_bits(),
        reference.final_thermo.total.to_bits(),
        "decomposed energy {} vs {}",
        report.final_thermo.total,
        reference.final_thermo.total
    );
    assert_eq!(report.total_rebuilds, reference.total_rebuilds);
    assert_eq!(
        force_bits(dom.sim()),
        force_bits(&single),
        "decomposed forces are not bitwise identical"
    );
}

#[test]
fn decomposed_vectorized_tersoff_matches_too() {
    // The vectorized kernel runs on the canonical arrays inside the
    // decomposed timestep, so the conflict-handled scatter of scheme 1b must
    // also reproduce the single-domain trajectory bit for bit.
    let params = TersoffParams::silicon();
    let mut single = decomposed_setup(TersoffSchemeB::<f64, f64, 8>::new(params.clone()))
        .build()
        .expect("valid setup");
    let reference = single.run(40);

    let mut dom = DomainSimulation::new(
        decomposed_setup(TersoffSchemeB::<f64, f64, 8>::new(params)),
        [2, 1, 2],
    )
    .expect("valid grid");
    let report = dom.run(40);

    assert_eq!(
        report.final_thermo.total.to_bits(),
        reference.final_thermo.total.to_bits()
    );
    assert_eq!(force_bits(dom.sim()), force_bits(&single));

    // The decomposition must be live machinery, not a pass-through.
    assert!(dom.ghost_fraction() > 0.0, "ranks must hold ghost atoms");
    let mut collected = Vec::new();
    dom.collect_forces_into(&mut collected);
    assert_eq!(collected.len(), dom.sim().atoms.n_local);
}

#[test]
fn sic_simulation_with_mixed_precision_runs_stably() {
    let (sim_box, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.02, 3);
    let potential = make_potential(TersoffParams::silicon_carbide(), TersoffOptions::default());
    let mut sim = Simulation::builder(atoms, sim_box, potential)
        .masses(vec![units::mass::SI, units::mass::C])
        .temperature(300.0, 9)
        .thermo_every(10)
        .build()
        .expect("valid SiC setup");
    let report = sim.run(60);
    assert!(report.max_drift < 1e-3);
    assert!(sim.current_thermo().potential < 0.0);
    assert!(sim.atoms.x.iter().all(|&p| sim.sim_box.contains(p)));
}

#[test]
fn cost_model_projections_are_consistent_with_measured_occupancy() {
    // The measured lane occupancy of the fused scheme on the real silicon
    // workload is what justifies the cost model's "pair lanes stay full"
    // assumption; check they agree qualitatively.
    let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build();
    let list = NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
    let mut pot = TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon()).with_stats();
    let mut out = ComputeOutput::zeros(atoms.n_total());
    pot.compute(&atoms, &sim_box, &list, &mut out);
    assert!(pot.stats.pair_occupancy() > 0.9);

    let model = CostModel::default();
    let hw = Machine::haswell();
    let knl = Machine::knl();
    let workload = WorkloadShape::silicon(512_000);
    // The projected Opt-M speedups sit in the band the paper reports.
    let hw_speedup = model.node_ns_per_day(&hw, arch_model::cost::Mode::OptM, &workload)
        / model.node_ns_per_day(&hw, arch_model::cost::Mode::Ref, &workload);
    let knl_speedup = model.node_ns_per_day(&knl, arch_model::cost::Mode::OptM, &workload)
        / model.node_ns_per_day(&knl, arch_model::cost::Mode::Ref, &workload);
    assert!((2.0..5.5).contains(&hw_speedup));
    assert!((3.5..6.5).contains(&knl_speedup));
}
