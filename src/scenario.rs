//! The declarative scenario layer: serializable run descriptions.
//!
//! The paper evaluates a fixed matrix of codes (Ref / Opt-D / Opt-S / Opt-M
//! × schemes 1a/1b/1c) over a fixed set of workloads. A [`Scenario`]
//! captures one such experiment as *data* — lattice, perturbation,
//! temperature and seeds; potential mode/scheme/width/threads/backend;
//! timestep, skin, step count and sampling — so the whole matrix can live in
//! version-controlled spec files (see `scenarios/`) instead of one-off
//! binaries. The `tersoff-run` binary (in the `bench` crate) loads a file or
//! a directory of them, optionally expands the declared mode×threads
//! matrix, runs every variant through [`md_core::SimulationBuilder`], and
//! writes the same JSON report shape the `bench_diff` regression gate
//! consumes.
//!
//! Serialization is plain JSON via [`crate::json`]: the vendored serde shim
//! generates no code (see `crates/shims/serde`), so the `Serialize` /
//! `Deserialize` derives on these types mark intent for the day the real
//! crate is restored while [`Scenario::from_json`] / [`Scenario::to_json`]
//! do the actual work. Parsing is strict: unknown keys are rejected so a
//! typo in a spec file fails loudly instead of silently running defaults.

use crate::json::{obj, parse, Json};
use md_core::dump::XyzDump;
use md_core::lattice::Lattice;
use md_core::observer::RunReport;
use md_core::potential::Potential;
use md_core::simulation::{BuildError, Simulation};
use md_core::thermo::ThermoState;
use md_core::timer::Stage;
use md_core::units;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tersoff::driver::{make_potential, BackendImpl, ExecutionMode, Scheme, TersoffOptions};
use tersoff::params::TersoffParams;

/// Errors from loading, validating or executing a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read (or the directory not listed).
    Io {
        /// The offending path.
        path: String,
        /// The OS error text.
        error: String,
    },
    /// The JSON was malformed or the spec invalid; the string names the
    /// scenario file context and the offending field.
    Parse(String),
    /// The described simulation failed validation in the builder.
    Build(BuildError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, error } => write!(f, "{path}: {error}"),
            ScenarioError::Parse(msg) => write!(f, "{msg}"),
            ScenarioError::Build(e) => write!(f, "invalid simulation: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Build(e)
    }
}

/// The crystal the scenario builds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatticeSpec {
    /// Diamond-cubic silicon (the paper's benchmark system).
    Silicon,
    /// Zincblende SiC (two species).
    SiliconCarbide,
}

impl LatticeSpec {
    /// Stable lower-case name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            LatticeSpec::Silicon => "silicon",
            LatticeSpec::SiliconCarbide => "silicon_carbide",
        }
    }

    /// The lattice builder for `cells` conventional cells.
    pub fn lattice(self, cells: [usize; 3]) -> Lattice {
        match self {
            LatticeSpec::Silicon => Lattice::silicon(cells),
            LatticeSpec::SiliconCarbide => Lattice::silicon_carbide(cells),
        }
    }
}

impl fmt::Display for LatticeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for LatticeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "silicon" | "si" | "diamond" => Ok(LatticeSpec::Silicon),
            "silicon_carbide" | "sic" | "zincblende" => Ok(LatticeSpec::SiliconCarbide),
            other => Err(format!(
                "unknown lattice {other:?} (expected silicon or silicon_carbide)"
            )),
        }
    }
}

/// Which published Tersoff parameter set to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamSet {
    /// Si(C) 1988 — the paper's silicon benchmark parameterization.
    Silicon,
    /// Si(B) 1988 (the alternative silicon set).
    SiliconB,
    /// Carbon.
    Carbon,
    /// Germanium.
    Germanium,
    /// The Tersoff-1989 Si/C mixed set.
    SiliconCarbide,
}

impl ParamSet {
    /// Stable lower-case name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            ParamSet::Silicon => "silicon",
            ParamSet::SiliconB => "silicon_b",
            ParamSet::Carbon => "carbon",
            ParamSet::Germanium => "germanium",
            ParamSet::SiliconCarbide => "silicon_carbide",
        }
    }

    /// The parameter table.
    pub fn params(self) -> TersoffParams {
        match self {
            ParamSet::Silicon => TersoffParams::silicon(),
            ParamSet::SiliconB => TersoffParams::silicon_b(),
            ParamSet::Carbon => TersoffParams::carbon(),
            ParamSet::Germanium => TersoffParams::germanium(),
            ParamSet::SiliconCarbide => TersoffParams::silicon_carbide(),
        }
    }

    /// Per-type masses (g/mol) matching the parameter table's species order.
    pub fn masses(self) -> Vec<f64> {
        match self {
            ParamSet::Silicon | ParamSet::SiliconB => vec![units::mass::SI],
            ParamSet::Carbon => vec![units::mass::C],
            ParamSet::Germanium => vec![units::mass::GE],
            ParamSet::SiliconCarbide => vec![units::mass::SI, units::mass::C],
        }
    }

    /// Element symbols matching the parameter table's species order (used by
    /// the trajectory dump when a spec does not override them).
    pub fn elements(self) -> Vec<String> {
        match self {
            ParamSet::Silicon | ParamSet::SiliconB => vec!["Si".to_string()],
            ParamSet::Carbon => vec!["C".to_string()],
            ParamSet::Germanium => vec!["Ge".to_string()],
            ParamSet::SiliconCarbide => vec!["Si".to_string(), "C".to_string()],
        }
    }
}

impl fmt::Display for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ParamSet {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "silicon" | "si" | "si_c" | "si(c)" => Ok(ParamSet::Silicon),
            "silicon_b" | "si_b" | "si(b)" => Ok(ParamSet::SiliconB),
            "carbon" | "c" => Ok(ParamSet::Carbon),
            "germanium" | "ge" => Ok(ParamSet::Germanium),
            "silicon_carbide" | "sic" => Ok(ParamSet::SiliconCarbide),
            other => Err(format!(
                "unknown parameter set {other:?} (expected silicon, silicon_b, \
                 carbon, germanium or silicon_carbide)"
            )),
        }
    }
}

/// The physical system: lattice + size + perturbation + initial temperature.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Crystal structure.
    pub lattice: LatticeSpec,
    /// Conventional cells in x, y, z.
    pub cells: [usize; 3],
    /// Uniform random displacement amplitude (Å).
    pub perturbation: f64,
    /// Seed of the lattice perturbation.
    pub lattice_seed: u64,
    /// Initial temperature (K).
    pub temperature: f64,
    /// Seed of the Maxwell–Boltzmann velocity draw.
    pub velocity_seed: u64,
}

/// The force field: parameter set + execution mode/scheme/width/threads and
/// the vektor backend request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PotentialSpec {
    /// Parameter set.
    pub params: ParamSet,
    /// Execution mode (Ref / Opt-D / Opt-S / Opt-M).
    pub mode: ExecutionMode,
    /// Vectorization scheme (ignored for Ref).
    pub scheme: Scheme,
    /// Vector width (0 = the paper's default for the scheme/precision).
    pub width: usize,
    /// Force-engine threads (1 = direct, 0 = all CPUs).
    pub threads: usize,
    /// Requested vektor implementation (`None` = auto-detect).
    pub backend: Option<BackendImpl>,
}

/// The integration run: timestep, skin, length and sampling cadence.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Timestep (ps).
    pub timestep: f64,
    /// Neighbor skin (Å).
    pub skin: f64,
    /// Number of timesteps.
    pub steps: u64,
    /// Thermo sampling interval (0 = initial/final only).
    pub thermo_every: u64,
}

/// Optional trajectory dump: an [`XyzDump`] observer writing one XYZ frame
/// every `every` steps of each variant's run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DumpSpec {
    /// Output file. When the scenario declares a matrix, each variant writes
    /// `<stem>_<mode>_t<threads>.<ext>` so runs do not clobber each other.
    pub path: String,
    /// Dump interval in steps (must be positive).
    pub every: u64,
    /// Per-type element symbols; defaults to the parameter set's species.
    pub elements: Option<Vec<String>>,
}

/// Optional mode × threads expansion: `tersoff-run` executes the cartesian
/// product instead of the single base variant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixSpec {
    /// Execution modes to run (empty = just the base mode).
    pub modes: Vec<ExecutionMode>,
    /// Thread counts to run (empty = just the base thread count).
    pub threads: Vec<usize>,
}

/// A complete, serializable experiment description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Short identifier (also names the output report).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The physical system.
    pub system: SystemSpec,
    /// The force field.
    pub potential: PotentialSpec,
    /// The integration run.
    pub run: RunSpec,
    /// Optional trajectory dump.
    pub dump: Option<DumpSpec>,
    /// Optional mode×threads matrix.
    pub matrix: Option<MatrixSpec>,
    /// Declared bound on |ΔE/E₀|; violations fail `tersoff-run`.
    pub max_drift: Option<f64>,
}

/// One (mode, threads) point of a scenario's matrix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Execution mode of this run.
    pub mode: ExecutionMode,
    /// Requested engine threads (0 = all CPUs).
    pub threads: usize,
}

/// The outcome of one executed variant.
#[derive(Clone, Debug)]
pub struct VariantReport {
    /// The variant that ran.
    pub variant: Variant,
    /// Threads actually used (0 resolved to the CPU count; the
    /// `TERSOFF_THREADS` environment override wins over both).
    pub resolved_threads: usize,
    /// The options label ("Opt-M/1b/w16/t2").
    pub label: String,
    /// The run report (steps, rebuilds, ns/day, drift, per-phase timers).
    pub report: RunReport,
    /// The recorded thermo trace.
    pub trace: Vec<ThermoState>,
    /// Trajectory dump written by this variant: `(path, frames)`.
    pub dump: Option<(PathBuf, u64)>,
}

/// The outcome of a whole scenario: every variant plus host facts.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Steps actually run (after any cap).
    pub steps: u64,
    /// Per-variant outcomes, in matrix order.
    pub variants: Vec<VariantReport>,
    /// The vektor implementation that executed the runs.
    pub executed_backend: String,
    /// Granularity at which that implementation was bound (`"kernel"`:
    /// one per-ISA monomorphized instance per potential).
    pub dispatch_granularity: &'static str,
    /// The widest vector ISA the binary itself was compiled with
    /// (`"baseline"`, `"avx2"`, `"avx512"`) — informational; the executed
    /// backend no longer depends on it.
    pub compiled_isa: &'static str,
    /// Host CPU count.
    pub available_parallelism: usize,
}

impl Scenario {
    // -- construction ------------------------------------------------------

    /// Parse a scenario from JSON text (strict: unknown keys are errors).
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let root = parse(text).map_err(ScenarioError::Parse)?;
        let top = expect_obj(&root, "scenario")?;
        check_keys(
            top,
            "scenario",
            &[
                "name",
                "description",
                "system",
                "potential",
                "run",
                "dump",
                "matrix",
                "max_drift",
            ],
        )?;
        let name = req_str(top, "name", "scenario")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ScenarioError::Parse(format!(
                "scenario name {name:?} must be non-empty [A-Za-z0-9_-] (it names the report file)"
            )));
        }
        let description = opt_str(top, "description", "")?;

        let sys = expect_obj(req(top, "system", "scenario")?, "system")?;
        check_keys(
            sys,
            "system",
            &[
                "lattice",
                "cells",
                "perturbation",
                "lattice_seed",
                "temperature",
                "velocity_seed",
            ],
        )?;
        let system = SystemSpec {
            lattice: parse_name(&req_str(sys, "lattice", "system")?, "system.lattice")?,
            cells: req_cells(sys)?,
            perturbation: opt_f64(sys, "perturbation", 0.05, "system")?,
            lattice_seed: opt_u64(sys, "lattice_seed", 2024, "system")?,
            temperature: opt_f64(sys, "temperature", 300.0, "system")?,
            velocity_seed: opt_u64(sys, "velocity_seed", 7, "system")?,
        };

        let pot = expect_obj(req(top, "potential", "scenario")?, "potential")?;
        check_keys(
            pot,
            "potential",
            &["params", "mode", "scheme", "width", "threads", "backend"],
        )?;
        let backend = match pot.get("backend") {
            None => None,
            Some(Json::Null) => None,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| {
                    ScenarioError::Parse("potential.backend must be a string".into())
                })?;
                match vektor::dispatch::parse_request(s) {
                    Some(req) => req,
                    None => {
                        return Err(ScenarioError::Parse(format!(
                            "potential.backend: unknown backend {s:?} \
                             (expected portable, avx2, avx512 or auto)"
                        )))
                    }
                }
            }
        };
        let potential = PotentialSpec {
            params: parse_name(&req_str(pot, "params", "potential")?, "potential.params")?,
            mode: parse_name(&req_str(pot, "mode", "potential")?, "potential.mode")?,
            scheme: parse_name(&req_str(pot, "scheme", "potential")?, "potential.scheme")?,
            width: opt_u64(pot, "width", 0, "potential")? as usize,
            threads: opt_u64(pot, "threads", 1, "potential")? as usize,
            backend,
        };

        let run_obj = expect_obj(req(top, "run", "scenario")?, "run")?;
        check_keys(
            run_obj,
            "run",
            &["timestep", "skin", "steps", "thermo_every"],
        )?;
        let run = RunSpec {
            timestep: opt_f64(run_obj, "timestep", units::DEFAULT_TIMESTEP, "run")?,
            skin: opt_f64(run_obj, "skin", 1.0, "run")?,
            steps: req_u64(run_obj, "steps", "run")?,
            thermo_every: opt_u64(run_obj, "thermo_every", 10, "run")?,
        };

        let dump = match top.get("dump") {
            None | Some(Json::Null) => None,
            Some(d) => {
                let d = expect_obj(d, "dump")?;
                check_keys(d, "dump", &["path", "every", "elements"])?;
                let path = req_str(d, "path", "dump")?;
                if path.is_empty() {
                    return Err(ScenarioError::Parse("dump.path must be non-empty".into()));
                }
                let every = req_u64(d, "every", "dump")?;
                if every == 0 {
                    return Err(ScenarioError::Parse(
                        "dump.every must be a positive number of steps".into(),
                    ));
                }
                let elements = match d.get("elements") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_arr()
                            .ok_or_else(|| {
                                ScenarioError::Parse("dump.elements must be an array".into())
                            })?
                            .iter()
                            .map(|j| {
                                j.as_str().map(|s| s.to_string()).ok_or_else(|| {
                                    ScenarioError::Parse(
                                        "dump.elements entries must be strings".into(),
                                    )
                                })
                            })
                            .collect::<Result<Vec<String>, _>>()?,
                    ),
                };
                Some(DumpSpec {
                    path,
                    every,
                    elements,
                })
            }
        };

        let matrix = match top.get("matrix") {
            None | Some(Json::Null) => None,
            Some(m) => {
                let m = expect_obj(m, "matrix")?;
                check_keys(m, "matrix", &["modes", "threads"])?;
                let modes = match m.get("modes") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| {
                            ScenarioError::Parse("matrix.modes must be an array".into())
                        })?
                        .iter()
                        .map(|j| {
                            j.as_str()
                                .ok_or_else(|| {
                                    ScenarioError::Parse(
                                        "matrix.modes entries must be strings".into(),
                                    )
                                })
                                .and_then(|s| parse_name(s, "matrix.modes"))
                        })
                        .collect::<Result<Vec<ExecutionMode>, _>>()?,
                };
                let threads = match m.get("threads") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| {
                            ScenarioError::Parse("matrix.threads must be an array".into())
                        })?
                        .iter()
                        .map(|j| {
                            j.as_usize().ok_or_else(|| {
                                ScenarioError::Parse(
                                    "matrix.threads entries must be non-negative integers".into(),
                                )
                            })
                        })
                        .collect::<Result<Vec<usize>, _>>()?,
                };
                Some(MatrixSpec { modes, threads })
            }
        };

        let max_drift = match top.get("max_drift") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| ScenarioError::Parse("max_drift must be a number".into()))?,
            ),
        };

        Ok(Scenario {
            name,
            description,
            system,
            potential,
            run,
            dump,
            matrix,
            max_drift,
        })
    }

    /// Serialize to pretty JSON (round-trips through
    /// [`Scenario::from_json`]).
    pub fn to_json(&self) -> String {
        let mut top = vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            (
                "system",
                obj([
                    ("lattice", Json::Str(self.system.lattice.to_string())),
                    (
                        "cells",
                        Json::Arr(
                            self.system
                                .cells
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("perturbation", Json::Num(self.system.perturbation)),
                    ("lattice_seed", Json::Num(self.system.lattice_seed as f64)),
                    ("temperature", Json::Num(self.system.temperature)),
                    ("velocity_seed", Json::Num(self.system.velocity_seed as f64)),
                ]),
            ),
            (
                "potential",
                obj([
                    ("params", Json::Str(self.potential.params.to_string())),
                    ("mode", Json::Str(self.potential.mode.to_string())),
                    ("scheme", Json::Str(self.potential.scheme.to_string())),
                    ("width", Json::Num(self.potential.width as f64)),
                    ("threads", Json::Num(self.potential.threads as f64)),
                    (
                        "backend",
                        match self.potential.backend {
                            None => Json::Str("auto".into()),
                            Some(b) => Json::Str(b.to_string()),
                        },
                    ),
                ]),
            ),
            (
                "run",
                obj([
                    ("timestep", Json::Num(self.run.timestep)),
                    ("skin", Json::Num(self.run.skin)),
                    ("steps", Json::Num(self.run.steps as f64)),
                    ("thermo_every", Json::Num(self.run.thermo_every as f64)),
                ]),
            ),
        ];
        if let Some(dump) = &self.dump {
            let mut entry = vec![
                ("path", Json::Str(dump.path.clone())),
                ("every", Json::Num(dump.every as f64)),
            ];
            if let Some(elements) = &dump.elements {
                entry.push((
                    "elements",
                    Json::Arr(elements.iter().map(|e| Json::Str(e.clone())).collect()),
                ));
            }
            top.push(("dump", obj(entry)));
        }
        if let Some(matrix) = &self.matrix {
            top.push((
                "matrix",
                obj([
                    (
                        "modes",
                        Json::Arr(
                            matrix
                                .modes
                                .iter()
                                .map(|m| Json::Str(m.to_string()))
                                .collect(),
                        ),
                    ),
                    (
                        "threads",
                        Json::Arr(
                            matrix
                                .threads
                                .iter()
                                .map(|&t| Json::Num(t as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(bound) = self.max_drift {
            top.push(("max_drift", Json::Num(bound)));
        }
        obj(top).pretty()
    }

    /// Load one scenario from a `.json` file.
    pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Scenario::from_json(&text)
            .map_err(|e| ScenarioError::Parse(format!("{}: {e}", path.display())))
    }

    /// Load every `*.json` scenario in a directory (sorted by file name).
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Scenario)>, ScenarioError> {
        let entries = std::fs::read_dir(dir).map_err(|e| ScenarioError::Io {
            path: dir.display().to_string(),
            error: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| Scenario::load(&p).map(|s| (p, s)))
            .collect()
    }

    /// Load a scenario file, or all scenarios of a directory.
    pub fn discover(path: &Path) -> Result<Vec<(PathBuf, Scenario)>, ScenarioError> {
        if path.is_dir() {
            Scenario::load_dir(path)
        } else {
            Scenario::load(path).map(|s| vec![(path.to_path_buf(), s)])
        }
    }

    // -- execution ---------------------------------------------------------

    /// The variants this scenario runs: the declared matrix expansion, or
    /// the single base (mode, threads) when no matrix is declared.
    pub fn variants(&self) -> Vec<Variant> {
        let (modes, threads) = match &self.matrix {
            None => (vec![self.potential.mode], vec![self.potential.threads]),
            Some(m) => (
                if m.modes.is_empty() {
                    vec![self.potential.mode]
                } else {
                    m.modes.clone()
                },
                if m.threads.is_empty() {
                    vec![self.potential.threads]
                } else {
                    m.threads.clone()
                },
            ),
        };
        let mut out = Vec::with_capacity(modes.len() * threads.len());
        for &mode in &modes {
            for &t in &threads {
                out.push(Variant { mode, threads: t });
            }
        }
        out
    }

    /// The [`TersoffOptions`] of one variant.
    pub fn options_for(&self, variant: Variant) -> TersoffOptions {
        TersoffOptions {
            mode: variant.mode,
            scheme: self.potential.scheme,
            width: self.potential.width,
            threads: variant.threads,
            backend: self.potential.backend,
        }
    }

    /// The trajectory file one variant writes: the declared `dump.path`,
    /// suffixed with the mode and thread count when a matrix makes the
    /// scenario multi-variant (so variants do not clobber each other).
    pub fn dump_path_for(&self, variant: Variant) -> Option<PathBuf> {
        let dump = self.dump.as_ref()?;
        let base = Path::new(&dump.path);
        if self.matrix.is_none() {
            return Some(base.to_path_buf());
        }
        let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("dump");
        let ext = base.extension().and_then(|e| e.to_str()).unwrap_or("xyz");
        let file = format!("{stem}_{}_t{}.{ext}", variant.mode.label(), variant.threads);
        Some(base.with_file_name(file))
    }

    /// Build the simulation of one variant through
    /// [`md_core::SimulationBuilder`] — exactly the construction a user
    /// would write by hand (the golden equivalence test in
    /// `tests/scenario.rs` holds this path to bitwise agreement with a
    /// hand-built run).
    pub fn build_simulation(
        &self,
        variant: Variant,
    ) -> Result<Simulation<Box<dyn Potential>>, ScenarioError> {
        let (sim_box, atoms) = self
            .system
            .lattice
            .lattice(self.system.cells)
            .build_perturbed(self.system.perturbation, self.system.lattice_seed);
        let potential = make_potential(self.potential.params.params(), self.options_for(variant));
        let mut builder = Simulation::builder(atoms, sim_box, potential)
            .timestep(self.run.timestep)
            .skin(self.run.skin)
            .masses(self.potential.params.masses())
            .temperature(self.system.temperature, self.system.velocity_seed)
            .thermo_every(self.run.thermo_every);
        if let Some(dump) = &self.dump {
            let path = self
                .dump_path_for(variant)
                .expect("dump path exists when dump is declared");
            let elements = dump
                .elements
                .clone()
                .unwrap_or_else(|| self.potential.params.elements());
            let observer =
                XyzDump::create(&path, dump.every, elements).map_err(|e| ScenarioError::Io {
                    path: path.display().to_string(),
                    error: e.to_string(),
                })?;
            builder = builder.observe(observer);
        }
        let sim = builder.build()?;
        Ok(sim)
    }

    /// Run one variant for `steps` (normally `self.run.steps`, possibly
    /// capped by the caller).
    pub fn run_variant(
        &self,
        variant: Variant,
        steps: u64,
    ) -> Result<VariantReport, ScenarioError> {
        let options = self.options_for(variant);
        let mut sim = self.build_simulation(variant)?;
        let report = sim.run(steps);
        let dump = match sim.observer::<XyzDump>() {
            None => None,
            Some(d) => {
                if let Some(error) = d.error() {
                    return Err(ScenarioError::Io {
                        path: d.path().display().to_string(),
                        error: error.to_string(),
                    });
                }
                Some((d.path().to_path_buf(), d.frames_written()))
            }
        };
        Ok(VariantReport {
            variant,
            resolved_threads: md_core::runtime::resolve_threads(variant.threads),
            label: options.label(),
            report,
            trace: sim.thermo_history().to_vec(),
            dump,
        })
    }

    /// Execute every variant. `steps_cap` (e.g. from `tersoff-run
    /// --steps-cap`) limits the run length for smoke testing.
    pub fn execute(&self, steps_cap: Option<u64>) -> Result<ScenarioReport, ScenarioError> {
        let steps = match steps_cap {
            Some(cap) => self.run.steps.min(cap),
            None => self.run.steps,
        };
        let variants = self
            .variants()
            .into_iter()
            .map(|v| self.run_variant(v, steps))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ScenarioReport {
            scenario: self.clone(),
            steps,
            executed_backend: self
                .options_for(Variant {
                    mode: self.potential.mode,
                    threads: self.potential.threads,
                })
                .resolved_backend()
                .to_string(),
            dispatch_granularity: vektor::dispatch::DISPATCH_GRANULARITY,
            compiled_isa: vektor::dispatch::compiled_isa(),
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            variants,
        })
    }

    /// Number of atoms the scenario's lattice generates.
    pub fn n_atoms(&self) -> usize {
        self.system.lattice.lattice(self.system.cells).n_atoms()
    }
}

impl ScenarioReport {
    /// Variants whose measured drift exceeds the scenario's declared
    /// `max_drift` bound (empty when no bound is declared).
    pub fn drift_violations(&self) -> Vec<String> {
        let Some(bound) = self.scenario.max_drift else {
            return Vec::new();
        };
        self.variants
            .iter()
            .filter(|v| v.report.max_drift > bound)
            .map(|v| {
                format!(
                    "{}: |ΔE/E₀| = {:.3e} exceeds declared bound {bound:.3e}",
                    v.label, v.report.max_drift
                )
            })
            .collect()
    }

    /// The report in the JSON shape `bench_diff` consumes: a top-level
    /// `series` array keyed by (mode, threads) with per-entry metrics.
    pub fn to_report_json(&self) -> String {
        let s = &self.scenario;
        // seconds-per-step of the Ref variant at each thread count, for the
        // speedup_vs_ref column (mirrors fig5's reporting).
        let ref_seconds: BTreeMap<usize, f64> = self
            .variants
            .iter()
            .filter(|v| v.variant.mode == ExecutionMode::Ref)
            .map(|v| (v.resolved_threads, v.report.seconds_per_step()))
            .collect();
        let series: Vec<Json> = self
            .variants
            .iter()
            .map(|v| {
                let seconds = v.report.seconds_per_step();
                let mut entry = vec![
                    ("mode", Json::Str(v.variant.mode.to_string())),
                    ("scheme", Json::Str(s.potential.scheme.to_string())),
                    ("threads", Json::Num(v.resolved_threads as f64)),
                    ("label", Json::Str(v.label.clone())),
                    ("seconds_per_step", Json::Num(seconds)),
                    ("ns_per_day", Json::Num(v.report.ns_per_day)),
                    ("max_drift", Json::Num(v.report.max_drift)),
                    ("rebuilds", Json::Num(v.report.total_rebuilds as f64)),
                    ("final_total_energy", Json::Num(v.report.final_thermo.total)),
                    (
                        // Per-phase breakdown (force / neighbor / comm /
                        // integrate / other) so the runtime-parallel phases
                        // are measurable from the report alone.
                        "timers",
                        obj(Stage::ALL
                            .iter()
                            .map(|&stage| (stage.name(), Json::Num(v.report.timers.seconds(stage))))
                            .collect::<Vec<_>>()),
                    ),
                ];
                if let Some(&r) = ref_seconds.get(&v.resolved_threads) {
                    if seconds > 0.0 {
                        entry.push(("speedup_vs_ref", Json::Num(r / seconds)));
                    }
                }
                obj(entry)
            })
            .collect();
        obj([
            ("figure", Json::Str(format!("scenario_{}", s.name))),
            ("scenario", Json::Str(s.name.clone())),
            ("description", Json::Str(s.description.clone())),
            (
                "workload",
                obj([
                    ("lattice", Json::Str(s.system.lattice.to_string())),
                    (
                        "cells",
                        Json::Arr(
                            s.system
                                .cells
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("atoms", Json::Num(s.n_atoms() as f64)),
                    ("perturbation", Json::Num(s.system.perturbation)),
                    ("temperature", Json::Num(s.system.temperature)),
                ]),
            ),
            ("steps", Json::Num(self.steps as f64)),
            (
                "available_parallelism",
                Json::Num(self.available_parallelism as f64),
            ),
            ("executed_backend", Json::Str(self.executed_backend.clone())),
            (
                "dispatch_granularity",
                Json::Str(self.dispatch_granularity.to_string()),
            ),
            ("compiled_isa", Json::Str(self.compiled_isa.to_string())),
            ("series", Json::Arr(series)),
        ])
        .pretty()
    }
}

// ---------------------------------------------------------------------------
// Strict-parsing helpers
// ---------------------------------------------------------------------------

fn expect_obj<'a>(v: &'a Json, ctx: &str) -> Result<&'a BTreeMap<String, Json>, ScenarioError> {
    v.as_obj()
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx} must be a JSON object")))
}

fn check_keys(
    map: &BTreeMap<String, Json>,
    ctx: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::Parse(format!(
                "{ctx}: unknown key {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req<'a>(
    map: &'a BTreeMap<String, Json>,
    key: &str,
    ctx: &str,
) -> Result<&'a Json, ScenarioError> {
    map.get(key)
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}: missing required key {key:?}")))
}

fn req_str(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<String, ScenarioError> {
    req(map, key, ctx)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a string")))
}

fn opt_str(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: &str,
) -> Result<String, ScenarioError> {
    match map.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| ScenarioError::Parse(format!("{key} must be a string"))),
    }
}

fn req_u64(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    req(map, key, ctx)?
        .as_u64()
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a non-negative integer")))
}

fn opt_u64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u64,
    ctx: &str,
) -> Result<u64, ScenarioError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ScenarioError::Parse(format!("{ctx}.{key} must be a non-negative integer"))
        }),
    }
}

fn opt_f64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: f64,
    ctx: &str,
) -> Result<f64, ScenarioError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a number"))),
    }
}

fn req_cells(map: &BTreeMap<String, Json>) -> Result<[usize; 3], ScenarioError> {
    let arr = req(map, "cells", "system")?.as_arr().ok_or_else(|| {
        ScenarioError::Parse("system.cells must be an array of 3 integers".into())
    })?;
    if arr.len() != 3 {
        return Err(ScenarioError::Parse(
            "system.cells must have exactly 3 entries".into(),
        ));
    }
    let mut cells = [0usize; 3];
    for (d, v) in arr.iter().enumerate() {
        cells[d] = v
            .as_usize()
            .filter(|&c| c > 0)
            .ok_or_else(|| ScenarioError::Parse("system.cells entries must be positive".into()))?;
    }
    Ok(cells)
}

fn parse_name<T>(s: &str, ctx: &str) -> Result<T, ScenarioError>
where
    T: std::str::FromStr,
    T::Err: fmt::Display,
{
    s.parse()
        .map_err(|e: T::Err| ScenarioError::Parse(format!("{ctx}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Scenario {
        Scenario {
            name: "unit_test".into(),
            description: "round-trip sample".into(),
            system: SystemSpec {
                lattice: LatticeSpec::Silicon,
                cells: [2, 2, 2],
                perturbation: 0.03,
                lattice_seed: 17,
                temperature: 600.0,
                velocity_seed: 5,
            },
            potential: PotentialSpec {
                params: ParamSet::Silicon,
                mode: ExecutionMode::OptM,
                scheme: Scheme::FusedLanes,
                width: 0,
                threads: 1,
                backend: None,
            },
            run: RunSpec {
                timestep: 0.001,
                skin: 1.0,
                steps: 20,
                thermo_every: 5,
            },
            dump: None,
            matrix: Some(MatrixSpec {
                modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
                threads: vec![1, 2],
            }),
            max_drift: Some(1e-3),
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let s = sample();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
        // And without the optional parts.
        let mut bare = s;
        bare.matrix = None;
        bare.max_drift = None;
        assert_eq!(Scenario::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = sample().to_json().replace("\"skin\"", "\"skinn\"");
        let err = Scenario::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("skinn"), "{err}");
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        let err = Scenario::from_json(r#"{"name": "x"}"#).unwrap_err();
        assert!(err.to_string().contains("system"), "{err}");
    }

    #[test]
    fn matrix_expansion_is_the_cartesian_product() {
        let s = sample();
        let variants = s.variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(
            variants[0],
            Variant {
                mode: ExecutionMode::Ref,
                threads: 1
            }
        );
        assert_eq!(
            variants[3],
            Variant {
                mode: ExecutionMode::OptM,
                threads: 2
            }
        );
        let mut bare = s;
        bare.matrix = None;
        assert_eq!(bare.variants().len(), 1);
    }

    #[test]
    fn executes_and_reports_in_bench_diff_shape() {
        let mut s = sample();
        s.matrix = Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
            threads: vec![1],
        });
        s.run.steps = 4;
        let report = s.execute(None).unwrap();
        assert_eq!(report.variants.len(), 2);
        assert!(report.drift_violations().is_empty());
        let json = report.to_report_json();
        let parsed = parse(&json).unwrap();
        let series = parsed.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].get("mode").unwrap().as_str(), Some("Ref"));
        assert!(series[0].get("seconds_per_step").unwrap().as_f64().unwrap() > 0.0);
        // Opt-M row carries the speedup against the Ref row.
        assert!(series[1].get("speedup_vs_ref").is_some());
    }

    #[test]
    fn dump_spec_round_trips_and_writes_frames() {
        let mut s = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("scenario_dump_{}.xyz", std::process::id()));
        s.dump = Some(DumpSpec {
            path: path.display().to_string(),
            every: 2,
            elements: None,
        });
        // Round-trips through JSON (with and without explicit elements).
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        s.dump.as_mut().unwrap().elements = Some(vec!["Si".into()]);
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);

        // Matrix variants write distinct suffixed files.
        let v = Variant {
            mode: ExecutionMode::OptM,
            threads: 2,
        };
        let suffixed = s.dump_path_for(v).unwrap();
        assert!(suffixed
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with("_Opt-M_t2.xyz"));

        // A single-variant run writes the declared path and counts frames.
        s.matrix = None;
        s.run.steps = 6;
        let report = s.execute(None).unwrap();
        let (written, frames) = report.variants[0].dump.clone().unwrap();
        assert_eq!(written, path);
        assert_eq!(frames, 3); // steps 2, 4, 6
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(&format!("{}\n", s.n_atoms())));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_dump_specs_are_rejected() {
        let mut s = sample();
        s.dump = Some(DumpSpec {
            path: "traj.xyz".into(),
            every: 2,
            elements: None,
        });
        let zero = s.to_json().replace("\"every\": 2", "\"every\": 0");
        assert!(Scenario::from_json(&zero)
            .unwrap_err()
            .to_string()
            .contains("dump.every"));
        let unknown = s.to_json().replace("\"every\"", "\"cadence\"");
        assert!(Scenario::from_json(&unknown)
            .unwrap_err()
            .to_string()
            .contains("cadence"));
    }

    #[test]
    fn report_json_carries_per_phase_timers() {
        let mut s = sample();
        s.matrix = None;
        s.run.steps = 4;
        let report = s.execute(None).unwrap();
        let json = parse(&report.to_report_json()).unwrap();
        let series = json.get("series").unwrap().as_arr().unwrap();
        let timers = series[0].get("timers").unwrap();
        for stage in Stage::ALL {
            let v = timers.get(stage.name()).and_then(|t| t.as_f64());
            assert!(v.is_some(), "missing timer for {}", stage.name());
        }
        assert!(
            timers.get("integrate").unwrap().as_f64().unwrap() > 0.0,
            "integration must be timed separately"
        );
    }

    #[test]
    fn drift_violations_are_detected() {
        let mut s = sample();
        s.matrix = None;
        s.run.steps = 10;
        s.max_drift = Some(1e-30); // unattainably tight
        let report = s.execute(None).unwrap();
        assert_eq!(report.drift_violations().len(), 1);
    }

    #[test]
    fn steps_cap_limits_the_run() {
        let mut s = sample();
        s.matrix = None;
        let report = s.execute(Some(3)).unwrap();
        assert_eq!(report.steps, 3);
        assert_eq!(report.variants[0].report.total_steps, 3);
    }

    #[test]
    fn invalid_physical_setup_surfaces_the_build_error() {
        let mut s = sample();
        s.matrix = None;
        s.run.timestep = -1.0;
        match s.execute(None) {
            Err(ScenarioError::Build(BuildError::NonPositiveTimestep(_))) => {}
            other => panic!("expected build error, got {other:?}"),
        }
    }

    #[test]
    fn lattice_and_param_names_round_trip() {
        for l in [LatticeSpec::Silicon, LatticeSpec::SiliconCarbide] {
            assert_eq!(l.name().parse::<LatticeSpec>().unwrap(), l);
        }
        for p in [
            ParamSet::Silicon,
            ParamSet::SiliconB,
            ParamSet::Carbon,
            ParamSet::Germanium,
            ParamSet::SiliconCarbide,
        ] {
            assert_eq!(p.name().parse::<ParamSet>().unwrap(), p);
        }
        assert!("unobtanium".parse::<ParamSet>().is_err());
    }
}
