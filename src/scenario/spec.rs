//! The declarative half of the scenario layer: the serializable spec types
//! and their strict JSON parsing.
//!
//! Everything in this module is *data*: what to simulate (lattice,
//! perturbation, temperature, seeds), how (parameter set, execution
//! mode/scheme/width/threads, backend request), for how long (timestep,
//! skin, steps, sampling), and the optional extras (trajectory dump,
//! mode×threads matrix, drift bound, health guard, checkpointing, fault
//! injection). Execution lives in [`super::exec`], which turns these specs
//! into jobs on the [`md_core::jobs::JobEngine`].
//!
//! Serialization is plain JSON via [`crate::json`]: the vendored serde shim
//! generates no code (see `crates/shims/serde`), so the `Serialize` /
//! `Deserialize` derives on these types mark intent for the day the real
//! crate is restored while [`Scenario::from_json`] / [`Scenario::to_json`]
//! do the actual work. Parsing is strict: unknown keys are rejected so a
//! typo in a spec file fails loudly instead of silently running defaults.

use crate::json::{obj, parse, Json};
use md_core::fault::{FaultKind, FaultPlan};
use md_core::health::HealthSettings;
use md_core::lattice::Lattice;
use md_core::simulation::BuildError;
use md_core::units;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tersoff::driver::{BackendImpl, ExecutionMode, Scheme, TersoffOptions};
use tersoff::params::TersoffParams;

/// Errors from loading, validating or executing a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read (or the directory not listed).
    Io {
        /// The offending path.
        path: String,
        /// The OS error text.
        error: String,
    },
    /// The JSON was malformed or the spec invalid; the string names the
    /// scenario file context and the offending field.
    Parse(String),
    /// The described simulation failed validation in the builder.
    Build(BuildError),
    /// The declared decomposition grid does not fit the scenario's box
    /// (a rank cell thinner than the interaction cutoff + skin).
    Decomposition(String),
    /// A variant's execution did not complete cleanly (diverged, panicked
    /// or timed out) — produced by the compatibility wrapper
    /// [`Scenario::execute`]; [`Scenario::execute_with`] reports the same
    /// condition per-variant instead of failing the batch.
    Run {
        /// The variant's options label.
        label: String,
        /// How the variant ended.
        status: VariantStatus,
        /// Human-readable detail.
        message: String,
    },
    /// The job engine refused a submission (queue closed, or a full queue
    /// under [`md_core::jobs::JobEngine::try_submit`]).
    Engine(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, error } => write!(f, "{path}: {error}"),
            ScenarioError::Parse(msg) => write!(f, "{msg}"),
            ScenarioError::Build(e) => write!(f, "invalid simulation: {e}"),
            ScenarioError::Decomposition(msg) => write!(f, "invalid decomposition: {msg}"),
            ScenarioError::Run {
                label,
                status,
                message,
            } => write!(f, "{label}: {status}: {message}"),
            ScenarioError::Engine(msg) => write!(f, "job engine: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Build(e)
    }
}

/// The crystal the scenario builds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatticeSpec {
    /// Diamond-cubic silicon (the paper's benchmark system).
    Silicon,
    /// Zincblende SiC (two species).
    SiliconCarbide,
    /// Diamond-cubic carbon (the diamond crystal).
    Carbon,
    /// Diamond-cubic germanium.
    Germanium,
    /// Si₀.₅Ge₀.₅ random alloy on the Vegard-average diamond lattice; the
    /// species draw is seeded by the scenario's `lattice_seed`.
    SiliconGermanium,
    /// AB-stacked graphite at the experimental bond length (1.42 Å).
    Graphite,
}

impl LatticeSpec {
    /// Stable lower-case name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            LatticeSpec::Silicon => "silicon",
            LatticeSpec::SiliconCarbide => "silicon_carbide",
            LatticeSpec::Carbon => "carbon",
            LatticeSpec::Germanium => "germanium",
            LatticeSpec::SiliconGermanium => "silicon_germanium",
            LatticeSpec::Graphite => "graphite",
        }
    }

    /// The lattice builder for `cells` conventional cells. `species_seed`
    /// seeds the alloy species draw (ignored by the ordered structures).
    pub fn lattice(self, cells: [usize; 3], species_seed: u64) -> Lattice {
        match self {
            LatticeSpec::Silicon => Lattice::silicon(cells),
            LatticeSpec::SiliconCarbide => Lattice::silicon_carbide(cells),
            LatticeSpec::Carbon => Lattice::carbon_diamond(cells),
            LatticeSpec::Germanium => Lattice::germanium(cells),
            LatticeSpec::SiliconGermanium => Lattice::silicon_germanium(cells, species_seed),
            LatticeSpec::Graphite => Lattice::graphite_ab(1.42, cells),
        }
    }
}

impl fmt::Display for LatticeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for LatticeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "silicon" | "si" | "diamond" => Ok(LatticeSpec::Silicon),
            "silicon_carbide" | "sic" | "zincblende" => Ok(LatticeSpec::SiliconCarbide),
            "carbon" | "c" => Ok(LatticeSpec::Carbon),
            "germanium" | "ge" => Ok(LatticeSpec::Germanium),
            "silicon_germanium" | "sige" => Ok(LatticeSpec::SiliconGermanium),
            "graphite" => Ok(LatticeSpec::Graphite),
            other => Err(format!(
                "unknown lattice {other:?} (expected silicon, silicon_carbide, \
                 carbon, germanium, silicon_germanium or graphite)"
            )),
        }
    }
}

/// Which published Tersoff parameter set to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamSet {
    /// Si(C) 1988 — the paper's silicon benchmark parameterization.
    Silicon,
    /// Si(B) 1988 (the alternative silicon set).
    SiliconB,
    /// Carbon.
    Carbon,
    /// Germanium.
    Germanium,
    /// The Tersoff-1989 Si/C mixed set.
    SiliconCarbide,
    /// The Tersoff-1989 Si/Ge mixed set.
    SiliconGermanium,
}

impl ParamSet {
    /// Stable lower-case name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            ParamSet::Silicon => "silicon",
            ParamSet::SiliconB => "silicon_b",
            ParamSet::Carbon => "carbon",
            ParamSet::Germanium => "germanium",
            ParamSet::SiliconCarbide => "silicon_carbide",
            ParamSet::SiliconGermanium => "silicon_germanium",
        }
    }

    /// The parameter table.
    pub fn params(self) -> TersoffParams {
        match self {
            ParamSet::Silicon => TersoffParams::silicon(),
            ParamSet::SiliconB => TersoffParams::silicon_b(),
            ParamSet::Carbon => TersoffParams::carbon(),
            ParamSet::Germanium => TersoffParams::germanium(),
            ParamSet::SiliconCarbide => TersoffParams::silicon_carbide(),
            ParamSet::SiliconGermanium => TersoffParams::silicon_germanium(),
        }
    }

    /// Per-type masses (g/mol) matching the parameter table's species order.
    pub fn masses(self) -> Vec<f64> {
        match self {
            ParamSet::Silicon | ParamSet::SiliconB => vec![units::mass::SI],
            ParamSet::Carbon => vec![units::mass::C],
            ParamSet::Germanium => vec![units::mass::GE],
            ParamSet::SiliconCarbide => vec![units::mass::SI, units::mass::C],
            ParamSet::SiliconGermanium => vec![units::mass::SI, units::mass::GE],
        }
    }

    /// Element symbols matching the parameter table's species order (used by
    /// the trajectory dump when a spec does not override them).
    pub fn elements(self) -> Vec<String> {
        match self {
            ParamSet::Silicon | ParamSet::SiliconB => vec!["Si".to_string()],
            ParamSet::Carbon => vec!["C".to_string()],
            ParamSet::Germanium => vec!["Ge".to_string()],
            ParamSet::SiliconCarbide => vec!["Si".to_string(), "C".to_string()],
            ParamSet::SiliconGermanium => vec!["Si".to_string(), "Ge".to_string()],
        }
    }
}

impl fmt::Display for ParamSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ParamSet {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "silicon" | "si" | "si_c" | "si(c)" => Ok(ParamSet::Silicon),
            "silicon_b" | "si_b" | "si(b)" => Ok(ParamSet::SiliconB),
            "carbon" | "c" => Ok(ParamSet::Carbon),
            "germanium" | "ge" => Ok(ParamSet::Germanium),
            "silicon_carbide" | "sic" => Ok(ParamSet::SiliconCarbide),
            "silicon_germanium" | "sige" => Ok(ParamSet::SiliconGermanium),
            other => Err(format!(
                "unknown parameter set {other:?} (expected silicon, silicon_b, \
                 carbon, germanium, silicon_carbide or silicon_germanium)"
            )),
        }
    }
}

/// The physical system: lattice + size + perturbation + initial temperature.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Crystal structure.
    pub lattice: LatticeSpec,
    /// Conventional cells in x, y, z.
    pub cells: [usize; 3],
    /// Uniform random displacement amplitude (Å).
    pub perturbation: f64,
    /// Seed of the lattice perturbation.
    pub lattice_seed: u64,
    /// Initial temperature (K).
    pub temperature: f64,
    /// Seed of the Maxwell–Boltzmann velocity draw.
    pub velocity_seed: u64,
}

/// The force field: parameter set + execution mode/scheme/width/threads and
/// the vektor backend request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PotentialSpec {
    /// Parameter set.
    pub params: ParamSet,
    /// Execution mode (Ref / Opt-D / Opt-S / Opt-M).
    pub mode: ExecutionMode,
    /// Vectorization scheme (ignored for Ref).
    pub scheme: Scheme,
    /// Vector width (0 = the paper's default for the scheme/precision).
    pub width: usize,
    /// Force-engine threads (1 = direct, 0 = all CPUs).
    pub threads: usize,
    /// Requested vektor implementation (`None` = auto-detect).
    pub backend: Option<BackendImpl>,
}

/// The integration run: timestep, skin, length and sampling cadence.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Timestep (ps).
    pub timestep: f64,
    /// Neighbor skin (Å).
    pub skin: f64,
    /// Number of timesteps.
    pub steps: u64,
    /// Thermo sampling interval (0 = initial/final only).
    pub thermo_every: u64,
}

/// Trajectory file format of a [`DumpSpec`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DumpFormat {
    /// Plain XYZ frames ([`md_core::XyzDump`]).
    #[default]
    Xyz,
    /// LAMMPS text dump with box bounds ([`md_core::LammpsDump`]), readable
    /// by OVITO/VMD and LAMMPS' `read_dump`.
    Lammps,
}

impl DumpFormat {
    /// Stable lower-case name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            DumpFormat::Xyz => "xyz",
            DumpFormat::Lammps => "lammps",
        }
    }
}

impl fmt::Display for DumpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DumpFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "xyz" => Ok(DumpFormat::Xyz),
            "lammps" | "lammpstrj" | "dump" => Ok(DumpFormat::Lammps),
            other => Err(format!(
                "unknown dump format {other:?} (expected xyz or lammps)"
            )),
        }
    }
}

/// Optional trajectory dump: an [`md_core::XyzDump`] or
/// [`md_core::LammpsDump`] observer writing one frame every `every` steps of
/// each variant's run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DumpSpec {
    /// Output file. When the scenario declares a matrix, each variant writes
    /// `<stem>_<mode>_t<threads>.<ext>` so runs do not clobber each other.
    pub path: String,
    /// Dump interval in steps (must be positive).
    pub every: u64,
    /// Per-type element symbols; defaults to the parameter set's species.
    pub elements: Option<Vec<String>>,
    /// File format (default `xyz`).
    pub format: DumpFormat,
}

/// Optional rank-parallel domain decomposition: the scenario runs through
/// [`md_core::DomainSimulation`] on a grid of ranks — the in-process analog
/// of LAMMPS' MPI decomposition behind the paper's Fig. 9 strong-scaling
/// study — instead of the single-domain driver. The trajectory is **bitwise
/// identical** either way; the decomposed run additionally reports
/// per-rank/communication statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecompositionSpec {
    /// Ranks along x, y, z. Every entry must be ≥ 1 and each rank cell must
    /// stay wider than the interaction cutoff + skin (validated against the
    /// actual box when the run is built; violations fail with a grid error).
    pub grid: [usize; 3],
}

impl DecompositionSpec {
    /// Total rank count (the grid product).
    pub fn n_ranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// `"XxYxZ"` — the label used in tables and report JSON.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.grid[0], self.grid[1], self.grid[2])
    }
}

/// Optional mode × threads expansion: `tersoff-run` executes the cartesian
/// product instead of the single base variant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixSpec {
    /// Execution modes to run (empty = just the base mode).
    pub modes: Vec<ExecutionMode>,
    /// Thread counts to run (empty = just the base thread count).
    pub threads: Vec<usize>,
}

/// Optional numerical health guard: a [`md_core::HealthGuard`] observer
/// aborting the run on non-finite state or violated temperature/displacement
/// bounds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthSpec {
    /// Check cadence in steps (default 1; 0 disables the per-step scans but
    /// keeps the thermo-sample checks).
    pub every: u64,
    /// Abort when the sampled temperature exceeds this bound (K).
    pub max_temperature: Option<f64>,
    /// Abort when any atom moves further than this between two checks (Å).
    pub max_displacement: Option<f64>,
}

impl HealthSpec {
    /// The md-core settings this spec describes.
    pub fn settings(&self) -> HealthSettings {
        HealthSettings {
            every: self.every,
            max_temperature: self.max_temperature,
            max_displacement: self.max_displacement,
        }
    }
}

/// Optional checkpointing: a [`md_core::CheckpointWriter`] observer saving a
/// bit-exact [`md_core::Checkpoint`] every `every` steps, and the file
/// [`super::RunPolicy::resume`] restarts from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSpec {
    /// Checkpoint file. Matrix variants write
    /// `<stem>_<mode>_t<threads>.<ext>` (like `dump.path`).
    pub path: String,
    /// Checkpoint interval in steps (must be positive).
    pub every: u64,
}

/// Test-only fault injection (see [`md_core::fault`]): makes a chosen step
/// of matching variants panic or go NaN so CI can prove batch isolation.
/// The `TERSOFF_FAULT` environment variable (`kind@step[@variant]`)
/// overrides this field from the `tersoff-run` CLI.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What to inject (`panic` or `nan`).
    pub kind: FaultKind,
    /// The step at whose start the fault fires.
    pub step: u64,
    /// Only inject into variants whose options label contains this
    /// substring (e.g. `"Ref"` or `"t4"`); `None` = every variant.
    pub variant: Option<String>,
}

impl FaultSpec {
    /// Parse the `TERSOFF_FAULT` environment override:
    /// `kind@step[@variant-substring]`, e.g. `panic@5` or `nan@3@Ref`.
    pub fn parse_env(text: &str) -> Result<FaultSpec, String> {
        let mut parts = text.splitn(3, '@');
        let kind: FaultKind = parts.next().unwrap_or("").parse()?;
        let step = parts
            .next()
            .ok_or_else(|| format!("missing step in fault spec {text:?} (kind@step[@variant])"))?
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("invalid step in fault spec {text:?}: {e}"))?;
        let variant = parts
            .next()
            .map(|s| s.to_string())
            .filter(|s| !s.is_empty());
        Ok(FaultSpec {
            kind,
            step,
            variant,
        })
    }

    /// Does this fault apply to the variant with the given options label?
    pub fn applies_to(&self, label: &str) -> bool {
        self.variant
            .as_deref()
            .is_none_or(|needle| label.contains(needle))
    }

    /// The md-core injection plan.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.kind, self.step)
    }
}

/// Stress-tensor sampling: attaches a [`md_core::StressTensor`] observer and
/// reports the time-averaged and final 6-component pressure tensor (bar).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StressSpec {
    /// Sampling cadence in steps (must be positive).
    pub every: u64,
}

/// Radial-distribution sampling: attaches a [`md_core::RadialDistribution`]
/// observer and reports the normalized g(r) histogram.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RdfSpec {
    /// Sampling cadence in steps (must be positive).
    pub every: u64,
    /// Histogram bin count (must be positive).
    pub bins: usize,
    /// Histogram range (Å). `0` = automatic: the interaction cutoff + skin
    /// (the reach of the neighbor list, which is also the hard upper bound —
    /// larger requests are clamped to it).
    pub r_max: f64,
}

/// Elastic-constants driver: after the run, [`md_core::elastic`] relaxes the
/// cell, refines the lattice constant, and measures C11/C12/C44 from
/// finite-strain energy differences (strained replicas run as parallel jobs
/// on a nested engine). Cubic (diamond-kind) lattices only; for the random
/// alloy the shear/uniaxial stage is skipped and only the lattice constant
/// and cohesive energy are reported.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElasticSpec {
    /// Finite-strain amplitude δ (default 5·10⁻³).
    pub strain: f64,
    /// FIRE relaxation step budget for the internally-relaxed (C44)
    /// evaluations (default 1000).
    pub minimize_steps: u64,
}

impl ElasticSpec {
    /// The md-core driver settings this spec describes.
    pub fn settings(&self) -> md_core::ElasticSettings {
        md_core::ElasticSettings {
            strain: self.strain,
            minimize_steps: self.minimize_steps,
        }
    }
}

/// Published reference values the measured properties are checked against.
/// Each declared value produces one pass/fail entry in the report's
/// `properties.checks` array; `tersoff-run` fails when any check fails.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpectedProperties {
    /// Cohesive energy per atom (eV, negative).
    pub cohesive_ev: Option<f64>,
    /// Equilibrium lattice constant (Å).
    pub lattice_a: Option<f64>,
    /// Elastic constant C11 (GPa).
    pub c11_gpa: Option<f64>,
    /// Elastic constant C12 (GPa).
    pub c12_gpa: Option<f64>,
    /// Elastic constant C44 (GPa).
    pub c44_gpa: Option<f64>,
    /// Allowed relative deviation in percent (default 2).
    pub tolerance_pct: f64,
}

/// Optional materials-property block: observers sampled during the run
/// (stress tensor, g(r)), the post-run elastic-constants driver, and the
/// published values to check the measurements against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PropertiesSpec {
    /// Stress-tensor sampling.
    pub stress: Option<StressSpec>,
    /// Radial-distribution sampling.
    pub rdf: Option<RdfSpec>,
    /// Elastic-constants driver.
    pub elastic: Option<ElasticSpec>,
    /// Published reference values to check against.
    pub expected: Option<ExpectedProperties>,
}

/// A complete, serializable experiment description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Short identifier (also names the output report).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// The physical system.
    pub system: SystemSpec,
    /// The force field.
    pub potential: PotentialSpec,
    /// The integration run.
    pub run: RunSpec,
    /// Optional trajectory dump.
    pub dump: Option<DumpSpec>,
    /// Optional rank-parallel domain decomposition.
    pub decomposition: Option<DecompositionSpec>,
    /// Optional mode×threads matrix.
    pub matrix: Option<MatrixSpec>,
    /// Declared bound on |ΔE/E₀|; violations fail `tersoff-run`.
    pub max_drift: Option<f64>,
    /// Optional numerical health guard.
    pub health: Option<HealthSpec>,
    /// Optional periodic checkpointing.
    pub checkpoint: Option<CheckpointSpec>,
    /// Test-only fault injection.
    pub fault: Option<FaultSpec>,
    /// Optional materials-property observers, elastic driver and checks.
    pub properties: Option<PropertiesSpec>,
}

/// One (mode, threads) point of a scenario's matrix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Execution mode of this run.
    pub mode: ExecutionMode,
    /// Requested engine threads (0 = all CPUs).
    pub threads: usize,
}

/// How one variant of a batch ended.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VariantStatus {
    /// Ran to completion within bounds.
    Ok,
    /// A health guard aborted the run (deterministic step and reason).
    Diverged,
    /// A panic unwound out of the run; the shared runtime self-healed and
    /// was reused by later variants.
    Panicked,
    /// The wall-clock timeout expired (the worker thread is abandoned and
    /// its runtime handle discarded).
    Timeout,
    /// The variant could not be set up (build or IO error).
    Failed,
}

impl VariantStatus {
    /// Stable lower-case name used in report JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            VariantStatus::Ok => "ok",
            VariantStatus::Diverged => "diverged",
            VariantStatus::Panicked => "panicked",
            VariantStatus::Timeout => "timeout",
            VariantStatus::Failed => "failed",
        }
    }
}

impl fmt::Display for VariantStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Scenario {
    // -- construction ------------------------------------------------------

    /// Parse a scenario from JSON text (strict: unknown keys are errors).
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let root = parse(text).map_err(ScenarioError::Parse)?;
        let top = expect_obj(&root, "scenario")?;
        check_keys(
            top,
            "scenario",
            &[
                "name",
                "description",
                "system",
                "potential",
                "run",
                "dump",
                "decomposition",
                "matrix",
                "max_drift",
                "health",
                "checkpoint",
                "fault",
                "properties",
            ],
        )?;
        let name = req_str(top, "name", "scenario")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ScenarioError::Parse(format!(
                "scenario name {name:?} must be non-empty [A-Za-z0-9_-] (it names the report file)"
            )));
        }
        let description = opt_str(top, "description", "")?;

        let sys = expect_obj(req(top, "system", "scenario")?, "system")?;
        check_keys(
            sys,
            "system",
            &[
                "lattice",
                "cells",
                "perturbation",
                "lattice_seed",
                "temperature",
                "velocity_seed",
            ],
        )?;
        let system = SystemSpec {
            lattice: parse_name(&req_str(sys, "lattice", "system")?, "system.lattice")?,
            cells: req_cells(sys)?,
            perturbation: opt_f64(sys, "perturbation", 0.05, "system")?,
            lattice_seed: opt_u64(sys, "lattice_seed", 2024, "system")?,
            temperature: opt_f64(sys, "temperature", 300.0, "system")?,
            velocity_seed: opt_u64(sys, "velocity_seed", 7, "system")?,
        };

        let pot = expect_obj(req(top, "potential", "scenario")?, "potential")?;
        check_keys(
            pot,
            "potential",
            &["params", "mode", "scheme", "width", "threads", "backend"],
        )?;
        let backend = match pot.get("backend") {
            None => None,
            Some(Json::Null) => None,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| {
                    ScenarioError::Parse("potential.backend must be a string".into())
                })?;
                match vektor::dispatch::parse_request(s) {
                    Some(req) => req,
                    None => {
                        return Err(ScenarioError::Parse(format!(
                            "potential.backend: unknown backend {s:?} \
                             (expected portable, avx2, avx512 or auto)"
                        )))
                    }
                }
            }
        };
        let potential = PotentialSpec {
            params: parse_name(&req_str(pot, "params", "potential")?, "potential.params")?,
            mode: parse_name(&req_str(pot, "mode", "potential")?, "potential.mode")?,
            scheme: parse_name(&req_str(pot, "scheme", "potential")?, "potential.scheme")?,
            width: opt_u64(pot, "width", 0, "potential")? as usize,
            threads: opt_u64(pot, "threads", 1, "potential")? as usize,
            backend,
        };

        let run_obj = expect_obj(req(top, "run", "scenario")?, "run")?;
        check_keys(
            run_obj,
            "run",
            &["timestep", "skin", "steps", "thermo_every"],
        )?;
        let run = RunSpec {
            timestep: opt_f64(run_obj, "timestep", units::DEFAULT_TIMESTEP, "run")?,
            skin: opt_f64(run_obj, "skin", 1.0, "run")?,
            steps: req_u64(run_obj, "steps", "run")?,
            thermo_every: opt_u64(run_obj, "thermo_every", 10, "run")?,
        };

        let dump = match top.get("dump") {
            None | Some(Json::Null) => None,
            Some(d) => {
                let d = expect_obj(d, "dump")?;
                check_keys(d, "dump", &["path", "every", "elements", "format"])?;
                let path = req_str(d, "path", "dump")?;
                if path.is_empty() {
                    return Err(ScenarioError::Parse("dump.path must be non-empty".into()));
                }
                let every = req_u64(d, "every", "dump")?;
                if every == 0 {
                    return Err(ScenarioError::Parse(
                        "dump.every must be a positive number of steps".into(),
                    ));
                }
                let elements = match d.get("elements") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_arr()
                            .ok_or_else(|| {
                                ScenarioError::Parse("dump.elements must be an array".into())
                            })?
                            .iter()
                            .map(|j| {
                                j.as_str().map(|s| s.to_string()).ok_or_else(|| {
                                    ScenarioError::Parse(
                                        "dump.elements entries must be strings".into(),
                                    )
                                })
                            })
                            .collect::<Result<Vec<String>, _>>()?,
                    ),
                };
                let format = match d.get("format") {
                    None | Some(Json::Null) => DumpFormat::Xyz,
                    Some(v) => {
                        let s = v.as_str().ok_or_else(|| {
                            ScenarioError::Parse("dump.format must be a string".into())
                        })?;
                        parse_name(s, "dump.format")?
                    }
                };
                Some(DumpSpec {
                    path,
                    every,
                    elements,
                    format,
                })
            }
        };

        let decomposition = match top.get("decomposition") {
            None | Some(Json::Null) => None,
            Some(d) => {
                let d = expect_obj(d, "decomposition")?;
                check_keys(d, "decomposition", &["grid"])?;
                let arr = req(d, "grid", "decomposition")?.as_arr().ok_or_else(|| {
                    ScenarioError::Parse("decomposition.grid must be an array of 3 integers".into())
                })?;
                if arr.len() != 3 {
                    return Err(ScenarioError::Parse(
                        "decomposition.grid must have exactly 3 entries".into(),
                    ));
                }
                let mut grid = [0usize; 3];
                for (dim, v) in arr.iter().enumerate() {
                    grid[dim] = v.as_usize().filter(|&g| g > 0).ok_or_else(|| {
                        ScenarioError::Parse(
                            "decomposition.grid entries must be positive integers".into(),
                        )
                    })?;
                }
                Some(DecompositionSpec { grid })
            }
        };

        let matrix = match top.get("matrix") {
            None | Some(Json::Null) => None,
            Some(m) => {
                let m = expect_obj(m, "matrix")?;
                check_keys(m, "matrix", &["modes", "threads"])?;
                let modes = match m.get("modes") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| {
                            ScenarioError::Parse("matrix.modes must be an array".into())
                        })?
                        .iter()
                        .map(|j| {
                            j.as_str()
                                .ok_or_else(|| {
                                    ScenarioError::Parse(
                                        "matrix.modes entries must be strings".into(),
                                    )
                                })
                                .and_then(|s| parse_name(s, "matrix.modes"))
                        })
                        .collect::<Result<Vec<ExecutionMode>, _>>()?,
                };
                let threads = match m.get("threads") {
                    None => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| {
                            ScenarioError::Parse("matrix.threads must be an array".into())
                        })?
                        .iter()
                        .map(|j| {
                            j.as_usize().ok_or_else(|| {
                                ScenarioError::Parse(
                                    "matrix.threads entries must be non-negative integers".into(),
                                )
                            })
                        })
                        .collect::<Result<Vec<usize>, _>>()?,
                };
                Some(MatrixSpec { modes, threads })
            }
        };

        let max_drift = match top.get("max_drift") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| ScenarioError::Parse("max_drift must be a number".into()))?,
            ),
        };

        let health = match top.get("health") {
            None | Some(Json::Null) => None,
            Some(h) => {
                let h = expect_obj(h, "health")?;
                check_keys(
                    h,
                    "health",
                    &["every", "max_temperature", "max_displacement"],
                )?;
                let opt_bound = |key: &str| -> Result<Option<f64>, ScenarioError> {
                    match h.get(key) {
                        None | Some(Json::Null) => Ok(None),
                        Some(v) => {
                            let x = v.as_f64().ok_or_else(|| {
                                ScenarioError::Parse(format!("health.{key} must be a number"))
                            })?;
                            if !x.is_finite() || x <= 0.0 {
                                return Err(ScenarioError::Parse(format!(
                                    "health.{key} must be a positive finite bound, got {x}"
                                )));
                            }
                            Ok(Some(x))
                        }
                    }
                };
                let every = opt_u64(h, "every", 1, "health")?;
                if every == 0 {
                    return Err(ScenarioError::Parse(
                        "health.every must be a positive number of steps".into(),
                    ));
                }
                Some(HealthSpec {
                    every,
                    max_temperature: opt_bound("max_temperature")?,
                    max_displacement: opt_bound("max_displacement")?,
                })
            }
        };

        let checkpoint = match top.get("checkpoint") {
            None | Some(Json::Null) => None,
            Some(c) => {
                let c = expect_obj(c, "checkpoint")?;
                check_keys(c, "checkpoint", &["path", "every"])?;
                let path = req_str(c, "path", "checkpoint")?;
                if path.is_empty() {
                    return Err(ScenarioError::Parse(
                        "checkpoint.path must be non-empty".into(),
                    ));
                }
                let every = req_u64(c, "every", "checkpoint")?;
                if every == 0 {
                    return Err(ScenarioError::Parse(
                        "checkpoint.every must be a positive number of steps".into(),
                    ));
                }
                Some(CheckpointSpec { path, every })
            }
        };

        let fault = match top.get("fault") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let v = expect_obj(v, "fault")?;
                check_keys(v, "fault", &["kind", "step", "variant"])?;
                let kind = parse_name(&req_str(v, "kind", "fault")?, "fault.kind")?;
                let step = req_u64(v, "step", "fault")?;
                let variant = match v.get("variant") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(s.as_str().map(|s| s.to_string()).ok_or_else(|| {
                        ScenarioError::Parse("fault.variant must be a string".into())
                    })?),
                };
                Some(FaultSpec {
                    kind,
                    step,
                    variant,
                })
            }
        };

        let properties = match top.get("properties") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let p = expect_obj(p, "properties")?;
                check_keys(p, "properties", &["stress", "rdf", "elastic", "expected"])?;
                let stress = match p.get("stress") {
                    None | Some(Json::Null) => None,
                    Some(s) => {
                        let s = expect_obj(s, "properties.stress")?;
                        check_keys(s, "properties.stress", &["every"])?;
                        let every = opt_u64(s, "every", 10, "properties.stress")?;
                        if every == 0 {
                            return Err(ScenarioError::Parse(
                                "properties.stress.every must be a positive number of steps".into(),
                            ));
                        }
                        Some(StressSpec { every })
                    }
                };
                let rdf = match p.get("rdf") {
                    None | Some(Json::Null) => None,
                    Some(r) => {
                        let r = expect_obj(r, "properties.rdf")?;
                        check_keys(r, "properties.rdf", &["every", "bins", "r_max"])?;
                        let every = opt_u64(r, "every", 10, "properties.rdf")?;
                        if every == 0 {
                            return Err(ScenarioError::Parse(
                                "properties.rdf.every must be a positive number of steps".into(),
                            ));
                        }
                        let bins = opt_u64(r, "bins", 200, "properties.rdf")? as usize;
                        if bins == 0 {
                            return Err(ScenarioError::Parse(
                                "properties.rdf.bins must be positive".into(),
                            ));
                        }
                        let r_max = opt_f64(r, "r_max", 0.0, "properties.rdf")?;
                        if !r_max.is_finite() || r_max < 0.0 {
                            return Err(ScenarioError::Parse(format!(
                                "properties.rdf.r_max must be a non-negative length \
                                 (0 = cutoff + skin), got {r_max}"
                            )));
                        }
                        Some(RdfSpec { every, bins, r_max })
                    }
                };
                let elastic = match p.get("elastic") {
                    None | Some(Json::Null) => None,
                    Some(e) => {
                        let e = expect_obj(e, "properties.elastic")?;
                        check_keys(e, "properties.elastic", &["strain", "minimize_steps"])?;
                        let strain = opt_f64(e, "strain", 5.0e-3, "properties.elastic")?;
                        if !strain.is_finite() || strain <= 0.0 || strain >= 0.1 {
                            return Err(ScenarioError::Parse(format!(
                                "properties.elastic.strain must be in (0, 0.1), got {strain}"
                            )));
                        }
                        let minimize_steps =
                            opt_u64(e, "minimize_steps", 1000, "properties.elastic")?;
                        Some(ElasticSpec {
                            strain,
                            minimize_steps,
                        })
                    }
                };
                let expected = match p.get("expected") {
                    None | Some(Json::Null) => None,
                    Some(x) => {
                        let x = expect_obj(x, "properties.expected")?;
                        check_keys(
                            x,
                            "properties.expected",
                            &[
                                "cohesive_ev",
                                "lattice_a",
                                "c11_gpa",
                                "c12_gpa",
                                "c44_gpa",
                                "tolerance_pct",
                            ],
                        )?;
                        let opt_val = |key: &str| -> Result<Option<f64>, ScenarioError> {
                            match x.get(key) {
                                None | Some(Json::Null) => Ok(None),
                                Some(v) => {
                                    let val = v.as_f64().ok_or_else(|| {
                                        ScenarioError::Parse(format!(
                                            "properties.expected.{key} must be a number"
                                        ))
                                    })?;
                                    if !val.is_finite() {
                                        return Err(ScenarioError::Parse(format!(
                                            "properties.expected.{key} must be finite"
                                        )));
                                    }
                                    Ok(Some(val))
                                }
                            }
                        };
                        let tolerance_pct =
                            opt_f64(x, "tolerance_pct", 2.0, "properties.expected")?;
                        if !tolerance_pct.is_finite() || tolerance_pct <= 0.0 {
                            return Err(ScenarioError::Parse(format!(
                                "properties.expected.tolerance_pct must be positive, \
                                 got {tolerance_pct}"
                            )));
                        }
                        Some(ExpectedProperties {
                            cohesive_ev: opt_val("cohesive_ev")?,
                            lattice_a: opt_val("lattice_a")?,
                            c11_gpa: opt_val("c11_gpa")?,
                            c12_gpa: opt_val("c12_gpa")?,
                            c44_gpa: opt_val("c44_gpa")?,
                            tolerance_pct,
                        })
                    }
                };
                Some(PropertiesSpec {
                    stress,
                    rdf,
                    elastic,
                    expected,
                })
            }
        };

        Ok(Scenario {
            name,
            description,
            system,
            potential,
            run,
            dump,
            decomposition,
            matrix,
            max_drift,
            health,
            checkpoint,
            fault,
            properties,
        })
    }

    /// Serialize to pretty JSON (round-trips through
    /// [`Scenario::from_json`]).
    pub fn to_json(&self) -> String {
        let mut top = vec![
            ("name", Json::Str(self.name.clone())),
            ("description", Json::Str(self.description.clone())),
            (
                "system",
                obj([
                    ("lattice", Json::Str(self.system.lattice.to_string())),
                    (
                        "cells",
                        Json::Arr(
                            self.system
                                .cells
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("perturbation", Json::Num(self.system.perturbation)),
                    ("lattice_seed", Json::Num(self.system.lattice_seed as f64)),
                    ("temperature", Json::Num(self.system.temperature)),
                    ("velocity_seed", Json::Num(self.system.velocity_seed as f64)),
                ]),
            ),
            (
                "potential",
                obj([
                    ("params", Json::Str(self.potential.params.to_string())),
                    ("mode", Json::Str(self.potential.mode.to_string())),
                    ("scheme", Json::Str(self.potential.scheme.to_string())),
                    ("width", Json::Num(self.potential.width as f64)),
                    ("threads", Json::Num(self.potential.threads as f64)),
                    (
                        "backend",
                        match self.potential.backend {
                            None => Json::Str("auto".into()),
                            Some(b) => Json::Str(b.to_string()),
                        },
                    ),
                ]),
            ),
            (
                "run",
                obj([
                    ("timestep", Json::Num(self.run.timestep)),
                    ("skin", Json::Num(self.run.skin)),
                    ("steps", Json::Num(self.run.steps as f64)),
                    ("thermo_every", Json::Num(self.run.thermo_every as f64)),
                ]),
            ),
        ];
        if let Some(dump) = &self.dump {
            let mut entry = vec![
                ("path", Json::Str(dump.path.clone())),
                ("every", Json::Num(dump.every as f64)),
            ];
            if let Some(elements) = &dump.elements {
                entry.push((
                    "elements",
                    Json::Arr(elements.iter().map(|e| Json::Str(e.clone())).collect()),
                ));
            }
            if dump.format != DumpFormat::Xyz {
                entry.push(("format", Json::Str(dump.format.to_string())));
            }
            top.push(("dump", obj(entry)));
        }
        if let Some(dec) = &self.decomposition {
            top.push((
                "decomposition",
                obj([(
                    "grid",
                    Json::Arr(dec.grid.iter().map(|&g| Json::Num(g as f64)).collect()),
                )]),
            ));
        }
        if let Some(matrix) = &self.matrix {
            top.push((
                "matrix",
                obj([
                    (
                        "modes",
                        Json::Arr(
                            matrix
                                .modes
                                .iter()
                                .map(|m| Json::Str(m.to_string()))
                                .collect(),
                        ),
                    ),
                    (
                        "threads",
                        Json::Arr(
                            matrix
                                .threads
                                .iter()
                                .map(|&t| Json::Num(t as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(bound) = self.max_drift {
            top.push(("max_drift", Json::Num(bound)));
        }
        if let Some(health) = &self.health {
            let mut entry = vec![("every", Json::Num(health.every as f64))];
            if let Some(t) = health.max_temperature {
                entry.push(("max_temperature", Json::Num(t)));
            }
            if let Some(d) = health.max_displacement {
                entry.push(("max_displacement", Json::Num(d)));
            }
            top.push(("health", obj(entry)));
        }
        if let Some(checkpoint) = &self.checkpoint {
            top.push((
                "checkpoint",
                obj([
                    ("path", Json::Str(checkpoint.path.clone())),
                    ("every", Json::Num(checkpoint.every as f64)),
                ]),
            ));
        }
        if let Some(fault) = &self.fault {
            let mut entry = vec![
                ("kind", Json::Str(fault.kind.to_string())),
                ("step", Json::Num(fault.step as f64)),
            ];
            if let Some(variant) = &fault.variant {
                entry.push(("variant", Json::Str(variant.clone())));
            }
            top.push(("fault", obj(entry)));
        }
        if let Some(props) = &self.properties {
            let mut entry = Vec::new();
            if let Some(stress) = &props.stress {
                entry.push(("stress", obj([("every", Json::Num(stress.every as f64))])));
            }
            if let Some(rdf) = &props.rdf {
                entry.push((
                    "rdf",
                    obj([
                        ("every", Json::Num(rdf.every as f64)),
                        ("bins", Json::Num(rdf.bins as f64)),
                        ("r_max", Json::Num(rdf.r_max)),
                    ]),
                ));
            }
            if let Some(elastic) = &props.elastic {
                entry.push((
                    "elastic",
                    obj([
                        ("strain", Json::Num(elastic.strain)),
                        ("minimize_steps", Json::Num(elastic.minimize_steps as f64)),
                    ]),
                ));
            }
            if let Some(expected) = &props.expected {
                let mut x = Vec::new();
                for (key, val) in [
                    ("cohesive_ev", expected.cohesive_ev),
                    ("lattice_a", expected.lattice_a),
                    ("c11_gpa", expected.c11_gpa),
                    ("c12_gpa", expected.c12_gpa),
                    ("c44_gpa", expected.c44_gpa),
                ] {
                    if let Some(v) = val {
                        x.push((key, Json::Num(v)));
                    }
                }
                x.push(("tolerance_pct", Json::Num(expected.tolerance_pct)));
                entry.push(("expected", obj(x)));
            }
            top.push(("properties", obj(entry)));
        }
        obj(top).pretty()
    }

    /// Load one scenario from a `.json` file.
    pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Scenario::from_json(&text)
            .map_err(|e| ScenarioError::Parse(format!("{}: {e}", path.display())))
    }

    /// Load every `*.json` scenario in a directory (sorted by file name).
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Scenario)>, ScenarioError> {
        let entries = std::fs::read_dir(dir).map_err(|e| ScenarioError::Io {
            path: dir.display().to_string(),
            error: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|p| Scenario::load(&p).map(|s| (p, s)))
            .collect()
    }

    /// Load a scenario file, or all scenarios of a directory.
    pub fn discover(path: &Path) -> Result<Vec<(PathBuf, Scenario)>, ScenarioError> {
        if path.is_dir() {
            Scenario::load_dir(path)
        } else {
            Scenario::load(path).map(|s| vec![(path.to_path_buf(), s)])
        }
    }

    // -- matrix expansion and derived paths --------------------------------

    /// The variants this scenario runs: the declared matrix expansion, or
    /// the single base (mode, threads) when no matrix is declared.
    pub fn variants(&self) -> Vec<Variant> {
        let (modes, threads) = match &self.matrix {
            None => (vec![self.potential.mode], vec![self.potential.threads]),
            Some(m) => (
                if m.modes.is_empty() {
                    vec![self.potential.mode]
                } else {
                    m.modes.clone()
                },
                if m.threads.is_empty() {
                    vec![self.potential.threads]
                } else {
                    m.threads.clone()
                },
            ),
        };
        let mut out = Vec::with_capacity(modes.len() * threads.len());
        for &mode in &modes {
            for &t in &threads {
                out.push(Variant { mode, threads: t });
            }
        }
        out
    }

    /// The [`TersoffOptions`] of one variant.
    pub fn options_for(&self, variant: Variant) -> TersoffOptions {
        TersoffOptions {
            mode: variant.mode,
            scheme: self.potential.scheme,
            width: self.potential.width,
            threads: variant.threads,
            backend: self.potential.backend,
        }
    }

    /// The trajectory file one variant writes: the declared `dump.path`,
    /// suffixed with the mode and thread count when a matrix makes the
    /// scenario multi-variant (so variants do not clobber each other).
    pub fn dump_path_for(&self, variant: Variant) -> Option<PathBuf> {
        let dump = self.dump.as_ref()?;
        Some(self.variant_path(&dump.path, variant, "dump", "xyz"))
    }

    /// The checkpoint file one variant writes (and resumes from), suffixed
    /// per-variant exactly like [`Scenario::dump_path_for`].
    pub fn checkpoint_path_for(&self, variant: Variant) -> Option<PathBuf> {
        let checkpoint = self.checkpoint.as_ref()?;
        Some(self.variant_path(&checkpoint.path, variant, "checkpoint", "json"))
    }

    fn variant_path(
        &self,
        base: &str,
        variant: Variant,
        default_stem: &str,
        default_ext: &str,
    ) -> PathBuf {
        let base = Path::new(base);
        if self.matrix.is_none() {
            return base.to_path_buf();
        }
        let stem = base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(default_stem);
        let ext = base
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or(default_ext);
        let file = format!("{stem}_{}_t{}.{ext}", variant.mode.label(), variant.threads);
        base.with_file_name(file)
    }

    /// Number of atoms the scenario's lattice generates.
    pub fn n_atoms(&self) -> usize {
        self.system
            .lattice
            .lattice(self.system.cells, self.system.lattice_seed)
            .n_atoms()
    }
}

// ---------------------------------------------------------------------------
// Strict-parsing helpers
// ---------------------------------------------------------------------------

fn expect_obj<'a>(v: &'a Json, ctx: &str) -> Result<&'a BTreeMap<String, Json>, ScenarioError> {
    v.as_obj()
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx} must be a JSON object")))
}

fn check_keys(
    map: &BTreeMap<String, Json>,
    ctx: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::Parse(format!(
                "{ctx}: unknown key {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req<'a>(
    map: &'a BTreeMap<String, Json>,
    key: &str,
    ctx: &str,
) -> Result<&'a Json, ScenarioError> {
    map.get(key)
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}: missing required key {key:?}")))
}

fn req_str(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<String, ScenarioError> {
    req(map, key, ctx)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a string")))
}

fn opt_str(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: &str,
) -> Result<String, ScenarioError> {
    match map.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| ScenarioError::Parse(format!("{key} must be a string"))),
    }
}

fn req_u64(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    req(map, key, ctx)?
        .as_u64()
        .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a non-negative integer")))
}

fn opt_u64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: u64,
    ctx: &str,
) -> Result<u64, ScenarioError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            ScenarioError::Parse(format!("{ctx}.{key} must be a non-negative integer"))
        }),
    }
}

fn opt_f64(
    map: &BTreeMap<String, Json>,
    key: &str,
    default: f64,
    ctx: &str,
) -> Result<f64, ScenarioError> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ScenarioError::Parse(format!("{ctx}.{key} must be a number"))),
    }
}

fn req_cells(map: &BTreeMap<String, Json>) -> Result<[usize; 3], ScenarioError> {
    let arr = req(map, "cells", "system")?.as_arr().ok_or_else(|| {
        ScenarioError::Parse("system.cells must be an array of 3 integers".into())
    })?;
    if arr.len() != 3 {
        return Err(ScenarioError::Parse(
            "system.cells must have exactly 3 entries".into(),
        ));
    }
    let mut cells = [0usize; 3];
    for (d, v) in arr.iter().enumerate() {
        cells[d] = v
            .as_usize()
            .filter(|&c| c > 0)
            .ok_or_else(|| ScenarioError::Parse("system.cells entries must be positive".into()))?;
    }
    Ok(cells)
}

fn parse_name<T>(s: &str, ctx: &str) -> Result<T, ScenarioError>
where
    T: std::str::FromStr,
    T::Err: fmt::Display,
{
    s.parse()
        .map_err(|e: T::Err| ScenarioError::Parse(format!("{ctx}: {e}")))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn sample() -> Scenario {
        Scenario {
            name: "unit_test".into(),
            description: "round-trip sample".into(),
            system: SystemSpec {
                lattice: LatticeSpec::Silicon,
                cells: [2, 2, 2],
                perturbation: 0.03,
                lattice_seed: 17,
                temperature: 600.0,
                velocity_seed: 5,
            },
            potential: PotentialSpec {
                params: ParamSet::Silicon,
                mode: ExecutionMode::OptM,
                scheme: Scheme::FusedLanes,
                width: 0,
                threads: 1,
                backend: None,
            },
            run: RunSpec {
                timestep: 0.001,
                skin: 1.0,
                steps: 20,
                thermo_every: 5,
            },
            dump: None,
            decomposition: None,
            matrix: Some(MatrixSpec {
                modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
                threads: vec![1, 2],
            }),
            max_drift: Some(1e-3),
            health: None,
            checkpoint: None,
            fault: None,
            properties: None,
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let s = sample();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
        // And without the optional parts.
        let mut bare = s;
        bare.matrix = None;
        bare.max_drift = None;
        assert_eq!(Scenario::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn fault_tolerance_fields_round_trip() {
        let mut s = sample();
        s.health = Some(HealthSpec {
            every: 10,
            max_temperature: Some(1e5),
            max_displacement: Some(0.5),
        });
        s.checkpoint = Some(CheckpointSpec {
            path: "state.ckpt".into(),
            every: 50,
        });
        s.fault = Some(FaultSpec {
            kind: FaultKind::Panic,
            step: 5,
            variant: Some("Ref".into()),
        });
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        // Bounds left out round-trip as absent, not as defaults.
        s.health = Some(HealthSpec {
            every: 1,
            max_temperature: None,
            max_displacement: None,
        });
        s.fault = Some(FaultSpec {
            kind: FaultKind::Nan,
            step: 0,
            variant: None,
        });
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn invalid_fault_tolerance_fields_are_rejected() {
        let with = |patch: &str| {
            let text = sample().to_json();
            let insert = format!("{patch},\n  \"max_drift\"");
            Scenario::from_json(&text.replace("\"max_drift\"", &insert))
        };
        // Non-positive / non-finite health bounds fail loudly.
        let err = with("\"health\": {\"max_temperature\": -5.0}").unwrap_err();
        assert!(err.to_string().contains("max_temperature"), "{err}");
        let err = with("\"health\": {\"every\": 0}").unwrap_err();
        assert!(err.to_string().contains("every"), "{err}");
        let err = with("\"checkpoint\": {\"path\": \"x\", \"every\": 0}").unwrap_err();
        assert!(err.to_string().contains("every"), "{err}");
        let err = with("\"fault\": {\"kind\": \"segfault\", \"step\": 1}").unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        // Unknown keys inside the nested specs are typos, not extensions.
        let err = with("\"health\": {\"max_temp\": 10.0}").unwrap_err();
        assert!(err.to_string().contains("max_temp"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = sample().to_json().replace("\"skin\"", "\"skinn\"");
        let err = Scenario::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("skinn"), "{err}");
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        let err = Scenario::from_json(r#"{"name": "x"}"#).unwrap_err();
        assert!(err.to_string().contains("system"), "{err}");
    }

    #[test]
    fn matrix_expansion_is_the_cartesian_product() {
        let s = sample();
        let variants = s.variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(
            variants[0],
            Variant {
                mode: ExecutionMode::Ref,
                threads: 1
            }
        );
        assert_eq!(
            variants[3],
            Variant {
                mode: ExecutionMode::OptM,
                threads: 2
            }
        );
        let mut bare = s;
        bare.matrix = None;
        assert_eq!(bare.variants().len(), 1);
    }

    #[test]
    fn dump_spec_round_trips_and_suffixes_variants() {
        let mut s = sample();
        s.dump = Some(DumpSpec {
            path: "traj.xyz".into(),
            every: 2,
            elements: None,
            format: DumpFormat::Xyz,
        });
        // Round-trips through JSON (with and without explicit elements).
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        s.dump.as_mut().unwrap().elements = Some(vec!["Si".into()]);
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        // The non-default format round-trips too.
        s.dump.as_mut().unwrap().format = DumpFormat::Lammps;
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        s.dump.as_mut().unwrap().format = DumpFormat::Xyz;

        // Matrix variants write distinct suffixed files.
        let v = Variant {
            mode: ExecutionMode::OptM,
            threads: 2,
        };
        let suffixed = s.dump_path_for(v).unwrap();
        assert!(suffixed
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with("_Opt-M_t2.xyz"));

        // Without a matrix the declared path is used untouched.
        s.matrix = None;
        assert_eq!(s.dump_path_for(v).unwrap(), PathBuf::from("traj.xyz"));
    }

    #[test]
    fn invalid_dump_specs_are_rejected() {
        let mut s = sample();
        s.dump = Some(DumpSpec {
            path: "traj.xyz".into(),
            every: 2,
            elements: None,
            format: DumpFormat::Lammps,
        });
        let zero = s.to_json().replace("\"every\": 2", "\"every\": 0");
        assert!(Scenario::from_json(&zero)
            .unwrap_err()
            .to_string()
            .contains("dump.every"));
        let unknown = s.to_json().replace("\"every\"", "\"cadence\"");
        assert!(Scenario::from_json(&unknown)
            .unwrap_err()
            .to_string()
            .contains("cadence"));
        let bad_format = s.to_json().replace("\"lammps\"", "\"pdb\"");
        assert!(Scenario::from_json(&bad_format)
            .unwrap_err()
            .to_string()
            .contains("dump.format"));
    }

    #[test]
    fn properties_spec_round_trips_and_validates() {
        let mut s = sample();
        s.properties = Some(PropertiesSpec {
            stress: Some(StressSpec { every: 5 }),
            rdf: Some(RdfSpec {
                every: 10,
                bins: 150,
                r_max: 0.0,
            }),
            elastic: Some(ElasticSpec {
                strain: 5.0e-3,
                minimize_steps: 500,
            }),
            expected: Some(ExpectedProperties {
                cohesive_ev: Some(-4.63),
                lattice_a: Some(5.432),
                c11_gpa: Some(142.0),
                c12_gpa: Some(75.0),
                c44_gpa: Some(69.0),
                tolerance_pct: 2.0,
            }),
        });
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);

        // Partial blocks round-trip too (only some observers / some expected
        // values declared).
        s.properties = Some(PropertiesSpec {
            stress: None,
            rdf: None,
            elastic: Some(ElasticSpec {
                strain: 1.0e-3,
                minimize_steps: 1000,
            }),
            expected: Some(ExpectedProperties {
                cohesive_ev: Some(-7.37),
                lattice_a: None,
                c11_gpa: None,
                c12_gpa: None,
                c44_gpa: None,
                tolerance_pct: 5.0,
            }),
        });
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);

        // Defaults fill unspecified observer fields.
        let text = r#"{
            "name": "p", "system": {"lattice": "silicon", "cells": [2,2,2]},
            "potential": {"params": "silicon", "mode": "ref", "scheme": "scalar"},
            "run": {"steps": 10},
            "properties": {"stress": {}, "rdf": {}, "elastic": {}}
        }"#;
        let parsed = Scenario::from_json(text).unwrap();
        let props = parsed.properties.unwrap();
        assert_eq!(props.stress.unwrap().every, 10);
        let rdf = props.rdf.unwrap();
        assert_eq!((rdf.every, rdf.bins), (10, 200));
        assert_eq!(rdf.r_max, 0.0);
        let elastic = props.elastic.unwrap();
        assert_eq!(elastic.strain, 5.0e-3);
        assert_eq!(elastic.minimize_steps, 1000);
        assert!(props.expected.is_none());

        // Invalid values and unknown keys fail loudly.
        for (body, needle) in [
            (r#"{"stress": {"every": 0}}"#, "properties.stress.every"),
            (r#"{"rdf": {"bins": 0}}"#, "properties.rdf.bins"),
            (r#"{"rdf": {"r_max": -1.0}}"#, "properties.rdf.r_max"),
            (
                r#"{"elastic": {"strain": 0.5}}"#,
                "properties.elastic.strain",
            ),
            (r#"{"expected": {"tolerance_pct": -2}}"#, "tolerance_pct"),
            (r#"{"expected": {"c99_gpa": 1.0}}"#, "c99_gpa"),
            (r#"{"viscosity": {}}"#, "viscosity"),
        ] {
            let text = format!(
                r#"{{
                    "name": "p", "system": {{"lattice": "silicon", "cells": [2,2,2]}},
                    "potential": {{"params": "silicon", "mode": "ref", "scheme": "scalar"}},
                    "run": {{"steps": 10}},
                    "properties": {body}
                }}"#
            );
            let err = Scenario::from_json(&text).unwrap_err().to_string();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn decomposition_spec_round_trips_and_validates() {
        let mut s = sample();
        s.decomposition = Some(DecompositionSpec { grid: [2, 2, 1] });
        assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        assert_eq!(s.decomposition.unwrap().n_ranks(), 4);
        assert_eq!(s.decomposition.unwrap().label(), "2x2x1");

        // Zero entries, wrong arity and unknown keys fail loudly.
        let zero = s.to_json().replace("[2, 2, 1]", "[2, 0, 1]");
        assert!(Scenario::from_json(&zero)
            .unwrap_err()
            .to_string()
            .contains("positive"));
        let arity = s.to_json().replace("[2, 2, 1]", "[2, 2]");
        assert!(Scenario::from_json(&arity)
            .unwrap_err()
            .to_string()
            .contains("3 entries"));
        let unknown = s.to_json().replace("\"grid\"", "\"ranks\"");
        assert!(Scenario::from_json(&unknown)
            .unwrap_err()
            .to_string()
            .contains("ranks"));
    }

    #[test]
    fn lattice_and_param_names_round_trip() {
        for l in [
            LatticeSpec::Silicon,
            LatticeSpec::SiliconCarbide,
            LatticeSpec::Carbon,
            LatticeSpec::Germanium,
            LatticeSpec::SiliconGermanium,
            LatticeSpec::Graphite,
        ] {
            assert_eq!(l.name().parse::<LatticeSpec>().unwrap(), l);
        }
        for p in [
            ParamSet::Silicon,
            ParamSet::SiliconB,
            ParamSet::Carbon,
            ParamSet::Germanium,
            ParamSet::SiliconCarbide,
            ParamSet::SiliconGermanium,
        ] {
            assert_eq!(p.name().parse::<ParamSet>().unwrap(), p);
        }
        assert!("unobtanium".parse::<ParamSet>().is_err());
    }
}
