//! The execution half of the scenario layer: submission-first, through the
//! job engine.
//!
//! A scenario's variants become [`md_core::jobs::JobSpec`]s submitted to a
//! [`JobEngine`]: 1-thread variants pack many-per-runtime on shared leases,
//! multi-thread variants claim a whole runtime exclusively, and every
//! lifecycle transition is published on the engine's event bus (a
//! [`JobEventTap`](self) observer forwards in-run thermo samples and
//! checkpoint writes into the stream). Deterministic setup work — the
//! perturbed lattice, the packed parameter table, the neighbor-list
//! capacity the system settles at — is memoized in the engine's
//! [`ArtifactCache`] keyed by spec hash, so repeat variants skip it; every
//! cached value is the output of a deterministic builder, which keeps a
//! cache hit bit-identical to a rebuild.
//!
//! [`Scenario::execute`] / [`Scenario::execute_with`] are thin synchronous
//! wrappers: they spin up an engine sized by [`RunPolicy::jobs`], submit,
//! and drain. [`Scenario::submit`] + [`Scenario::execute_on`] are the
//! underlying submission API for callers that share one engine across
//! scenarios (`tersoff-run`, the throughput benchmark). Results are bitwise
//! identical at every `--jobs` count: a job's bits depend only on its own
//! inputs and its leased runtime, and runtimes are bitwise identical across
//! thread counts (see `crates/md-core/src/jobs/README.md`).

use super::spec::{DumpFormat, FaultSpec, Scenario, ScenarioError, Variant, VariantStatus};
use crate::json::{obj, Json};
use md_core::atom::AtomData;
use md_core::checkpoint::{Checkpoint, CheckpointWriter};
use md_core::domain::{DomainBuildError, DomainSimulation};
use md_core::dump::{LammpsDump, XyzDump};
use md_core::elastic::{self, ElasticReport};
use md_core::fault::FaultPlan;
use md_core::health::HealthGuard;
use md_core::jobs::{
    ArtifactCache, ArtifactKey, EngineConfig, EngineStats, EventBus, JobContext, JobEngine,
    JobEvent, JobHandle, JobId, JobOutcome, JobSpec, SubmitError,
};
use md_core::observer::{Observer, RunReport, StepContext};
use md_core::potential::Potential;
use md_core::properties::{RadialDistribution, StressTensor};
use md_core::runtime::{panic_payload_string, resolve_threads, ParallelRuntime};
use md_core::simbox::SimBox;
use md_core::simulation::{RunError, Simulation, SimulationBuilder};
use md_core::thermo::ThermoState;
use md_core::timer::Stage;
use std::any::Any;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tersoff::driver::{make_potential, ExecutionMode};
use tersoff::params::TersoffParams;

/// How [`Scenario::execute_with`] runs a batch: engine width, per-variant
/// isolation, retries, timeout and resume.
#[derive(Clone, Debug, Default)]
pub struct RunPolicy {
    /// Worker lanes of the engine `execute_with` spins up (`tersoff-run
    /// --jobs`): how many variants run concurrently. 0 or 1 = one lane (the
    /// serial drain). Results are bitwise independent of this knob.
    pub jobs: usize,
    /// Cap on the number of steps (e.g. `tersoff-run --steps-cap`).
    pub steps_cap: Option<u64>,
    /// Re-run a panicked / timed-out / failed variant up to this many extra
    /// times from fresh seed-deterministic state (divergence is
    /// deterministic, so diverged variants are not retried).
    pub retries: u32,
    /// Continue with the remaining variants after a failure instead of
    /// stopping the batch. Also what allows the batch to be submitted
    /// eagerly: without it, variants are submitted one at a time so the
    /// stop-after-first-failure contract stays exact.
    pub keep_going: bool,
    /// Wall-clock budget per attempt; on expiry the attempt's thread is
    /// abandoned and the variant reports [`VariantStatus::Timeout`].
    pub timeout: Option<Duration>,
    /// Fault injection override (the `TERSOFF_FAULT` environment variable
    /// parsed by the CLI); wins over the scenario's `fault` field.
    pub fault_override: Option<FaultSpec>,
    /// Resume each variant from its checkpoint file if one exists.
    pub resume: bool,
}

/// The outcome of one executed variant.
#[derive(Clone, Debug)]
pub struct VariantReport {
    /// The variant that ran.
    pub variant: Variant,
    /// Threads actually used (0 resolved to the CPU count; the
    /// `TERSOFF_THREADS` environment override wins over both).
    pub resolved_threads: usize,
    /// The options label ("Opt-M/1b/w16/t2").
    pub label: String,
    /// How the variant ended.
    pub status: VariantStatus,
    /// Attempts used (1 = first try; > 1 means retries happened).
    pub attempts: u32,
    /// The typed failure for non-`ok` statuses.
    pub error: Option<ScenarioError>,
    /// The run report (steps, rebuilds, ns/day, drift, per-phase timers).
    /// Present for `ok` and `diverged` (partial) outcomes.
    pub report: Option<RunReport>,
    /// The recorded thermo trace.
    pub trace: Vec<ThermoState>,
    /// Trajectory dump written by this variant: `(path, frames)`.
    pub dump: Option<(PathBuf, u64)>,
    /// Observer warnings (e.g. a disarmed trajectory dump).
    pub warnings: Vec<String>,
    /// The checkpoint step this run resumed from, if any.
    pub resumed_from: Option<u64>,
    /// Rank-parallel statistics, when the scenario declares a
    /// `decomposition` grid.
    pub decomposition: Option<DomainStats>,
    /// Measured materials properties, when the scenario declares a
    /// `properties` block (only produced for `ok` runs).
    pub properties: Option<PropertiesReport>,
}

/// Measured materials properties of one variant: the in-run observers'
/// read-back, the post-run elastic driver, and the expected-value checks.
#[derive(Clone, Debug)]
pub struct PropertiesReport {
    /// Time-averaged and final pressure tensor (bar).
    pub stress: Option<StressReport>,
    /// Binned radial distribution function.
    pub rdf: Option<RdfReport>,
    /// Equilibrium lattice constant, cohesive energy and elastic constants.
    pub elastic: Option<ElasticReport>,
    /// One entry per declared expected value that could be measured.
    pub checks: Vec<PropertyCheck>,
}

/// Read-back of the [`StressTensor`] observer. Voigt order: xx yy zz xy xz
/// yz; units are bar.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// Sampling cadence (steps).
    pub every: u64,
    /// Samples folded into the average.
    pub samples: u64,
    /// Time-averaged pressure tensor (bar).
    pub time_averaged: [f64; 6],
    /// Final sampled pressure tensor (bar).
    pub last: [f64; 6],
}

/// Read-back of the [`RadialDistribution`] observer.
#[derive(Clone, Debug)]
pub struct RdfReport {
    /// Sampling cadence (steps).
    pub every: u64,
    /// Histogram bins.
    pub bins: usize,
    /// Histogram range actually used (Å) — the declared `r_max` clamped to
    /// the neighbor-list reach.
    pub r_max: f64,
    /// Samples folded into the histogram.
    pub samples: u64,
    /// Normalized g(r) per bin (bin centers at `(i + ½)·r_max/bins`).
    pub g: Vec<f64>,
}

/// One measured-vs-published comparison from the scenario's
/// `properties.expected` block.
#[derive(Clone, Debug)]
pub struct PropertyCheck {
    /// Which quantity (`lattice_a`, `cohesive_ev`, `c11_gpa`, ...).
    pub name: &'static str,
    /// The declared published value.
    pub expected: f64,
    /// What this run measured.
    pub measured: f64,
    /// |measured − expected| / |expected| in percent.
    pub rel_err_pct: f64,
    /// Within the declared `tolerance_pct`?
    pub ok: bool,
}

/// Per-variant statistics of a decomposed run: how the box was split, how
/// much state crossed rank boundaries, and what share of the step the
/// communication phases took — the quantity the paper's Fig. 9
/// strong-scaling study tracks.
#[derive(Clone, Debug)]
pub struct DomainStats {
    /// Ranks along x, y, z.
    pub grid: [usize; 3],
    /// Total rank count (the grid product).
    pub ranks: usize,
    /// Atoms handed between ranks over the whole run.
    pub migrations: u64,
    /// Owned atoms per rank at the end of the run.
    pub atoms_per_rank: Vec<usize>,
    /// Ghost (halo) atoms as a fraction of owned atoms at the end of the
    /// run — the surface-to-volume communication cost of the grid.
    pub ghost_fraction: f64,
    /// Seconds spent in halo/ghost exchange (the `comm` timer).
    pub comm_seconds: f64,
    /// Seconds spent migrating atoms between ranks (the `migrate` timer).
    pub migrate_seconds: f64,
    /// (comm + migrate) seconds over the total timed step — the
    /// communication share of the run.
    pub comm_fraction: f64,
}

/// The driver one attempt steps: the single-domain [`Simulation`] or the
/// rank-parallel [`DomainSimulation`], behind one dispatch surface. Both
/// produce bitwise identical trajectories; the decomposed runner
/// additionally reports [`DomainStats`].
enum Runner {
    Single(Box<Simulation<Box<dyn Potential>>>),
    Domain(Box<DomainSimulation<Box<dyn Potential>>>),
}

impl Runner {
    fn sim(&self) -> &Simulation<Box<dyn Potential>> {
        match self {
            Runner::Single(sim) => sim,
            Runner::Domain(dom) => dom.sim(),
        }
    }

    fn try_run(&mut self, steps: u64) -> Result<RunReport, RunError> {
        match self {
            Runner::Single(sim) => sim.try_run(steps),
            Runner::Domain(dom) => dom.try_run(steps),
        }
    }

    fn domain_stats(&self) -> Option<DomainStats> {
        let Runner::Domain(dom) = self else {
            return None;
        };
        let timers = &dom.sim().timers;
        let total: f64 = Stage::ALL.iter().map(|&stage| timers.seconds(stage)).sum();
        let comm = timers.seconds(Stage::Comm);
        let migrate = timers.seconds(Stage::Migrate);
        Some(DomainStats {
            grid: dom.grid().dims,
            ranks: dom.n_ranks(),
            migrations: dom.migrations(),
            atoms_per_rank: dom.atoms_per_rank(),
            ghost_fraction: dom.ghost_fraction(),
            comm_seconds: comm,
            migrate_seconds: migrate,
            comm_fraction: (comm + migrate) / total.max(1e-12),
        })
    }
}

impl VariantReport {
    /// The run report, for callers that require a completed variant.
    pub fn report(&self) -> &RunReport {
        self.report
            .as_ref()
            .expect("variant did not produce a report")
    }
}

/// The outcome of a whole scenario: every variant plus host facts and the
/// engine configuration that executed the batch.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Steps actually run (after any cap).
    pub steps: u64,
    /// Per-variant outcomes, in matrix order.
    pub variants: Vec<VariantReport>,
    /// The vektor implementation that executed the runs.
    pub executed_backend: String,
    /// Granularity at which that implementation was bound (`"kernel"`:
    /// one per-ISA monomorphized instance per potential).
    pub dispatch_granularity: &'static str,
    /// The widest vector ISA the binary itself was compiled with
    /// (`"baseline"`, `"avx2"`, `"avx512"`) — informational; the executed
    /// backend no longer depends on it.
    pub compiled_isa: &'static str,
    /// Host CPU count.
    pub available_parallelism: usize,
    /// Snapshot of the executing engine at report time: runtime-pool size,
    /// queue depth, cache hits/misses. With a shared engine (`tersoff-run`)
    /// the counters are cumulative across the invocation's scenarios.
    pub engine: EngineStats,
}

/// Worst-wins failure accumulator behind `tersoff-run`'s exit codes.
///
/// Exit codes distinguish the failure classes (the worst one wins, in the
/// order panic > timeout > health/drift > load):
///
/// * `0` every variant ok and within its drift bound
/// * `3` a scenario failed to load or a variant failed to build
/// * `4` a health guard aborted a variant or a drift bound was exceeded
/// * `5` a variant panicked (crash)
/// * `6` a variant exceeded its wall-clock budget
///
/// (`2` — usage error — is the CLI's own, raised before any batch exists.)
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchSeverity {
    load: bool,
    health: bool,
    panic: bool,
    timeout: bool,
}

impl BatchSeverity {
    /// A clean accumulator (exit code 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one variant outcome.
    pub fn record(&mut self, status: VariantStatus) {
        match status {
            VariantStatus::Ok => {}
            VariantStatus::Diverged => self.health = true,
            VariantStatus::Panicked => self.panic = true,
            VariantStatus::Timeout => self.timeout = true,
            VariantStatus::Failed => self.load = true,
        }
    }

    /// Fold in a failure outside variant execution (a scenario that did not
    /// load, a report that could not be written).
    pub fn record_load_failure(&mut self) {
        self.load = true;
    }

    /// Fold in a violated `max_drift` bound (same class as a health abort).
    pub fn record_drift_violation(&mut self) {
        self.health = true;
    }

    /// Did anything fail?
    pub fn any(&self) -> bool {
        self.load || self.health || self.panic || self.timeout
    }

    /// The process exit code for the worst recorded class.
    pub fn exit_code(&self) -> u8 {
        if self.panic {
            5
        } else if self.timeout {
            6
        } else if self.health {
            4
        } else if self.load {
            3
        } else {
            0
        }
    }
}

/// What one attempt runs with when executed as an engine job: the leased
/// runtime, the engine's artifact cache, and the event stream to feed.
/// `Default` (all `None`) is the standalone path [`Scenario::build_simulation`]
/// uses — construction then matches the hand-built golden test exactly.
#[derive(Clone, Default)]
struct AttemptEnv {
    runtime: Option<ParallelRuntime>,
    cache: Option<Arc<ArtifactCache>>,
    events: Option<(Arc<EventBus>, JobId)>,
}

/// The prepared, perturbed system cached under the scenario's system key.
/// Both fields clone bit-exactly, so a hit is indistinguishable from a
/// rebuild.
struct PreparedSystem {
    sim_box: SimBox,
    atoms: AtomData,
}

/// An [`Observer`] that forwards in-run callbacks into the engine's event
/// stream: every thermo sample becomes [`JobEvent::Thermo`], every
/// checkpoint-cadence step becomes [`JobEvent::Checkpoint`].
struct JobEventTap {
    events: Arc<EventBus>,
    job: JobId,
    checkpoint_every: u64,
}

impl Observer for JobEventTap {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        if self.checkpoint_every > 0
            && ctx.step > 0
            && ctx.step.is_multiple_of(self.checkpoint_every)
        {
            self.events.emit(JobEvent::Checkpoint {
                job: self.job,
                step: ctx.step,
            });
        }
    }

    fn on_thermo(&mut self, state: &ThermoState) {
        self.events.emit(JobEvent::Thermo {
            job: self.job,
            step: state.step,
            total_energy: state.total,
            temperature: state.temperature,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Scenario {
    // -- artifact-cache keys -----------------------------------------------

    /// Key of the prepared (perturbed) system: lattice name, cells, the
    /// perturbation amplitude's exact bits, and the lattice seed.
    fn system_key(&self) -> ArtifactKey {
        ArtifactKey::of(&["lattice", self.system.lattice.name()])
            .and(&format!(
                "{}x{}x{}",
                self.system.cells[0], self.system.cells[1], self.system.cells[2]
            ))
            .and(&format!("{:016x}", self.system.perturbation.to_bits()))
            .and(&self.system.lattice_seed.to_string())
    }

    /// Key of the packed parameter table.
    fn params_key(&self) -> ArtifactKey {
        ArtifactKey::of(&["params", self.potential.params.name()])
    }

    /// Key of the neighbor-list capacity hint: the system plus everything
    /// that shapes the list (skin, parameter set's cutoffs). The hint only
    /// pre-reserves allocations, so a stale or missing hint cannot change
    /// results.
    fn neighbor_hint_key(&self) -> ArtifactKey {
        self.system_key()
            .and("neighbor-hint")
            .and(&format!("{:016x}", self.run.skin.to_bits()))
            .and(self.potential.params.name())
    }

    // -- building one simulation -------------------------------------------

    /// The fault (if any) that applies to `variant` under `policy`: the
    /// policy's override (the `TERSOFF_FAULT` environment variable) wins
    /// over the scenario's declared `fault` field.
    fn fault_for(&self, label: &str, policy: &RunPolicy) -> Option<FaultPlan> {
        let spec = policy.fault_override.as_ref().or(self.fault.as_ref())?;
        spec.applies_to(label).then(|| spec.plan())
    }

    /// Build the simulation of one variant through
    /// [`md_core::SimulationBuilder`] — exactly the construction a user
    /// would write by hand (the golden equivalence test in
    /// `tests/scenario.rs` holds this path to bitwise agreement with a
    /// hand-built run). Always single-domain; batch execution wraps the
    /// same builder in a [`DomainSimulation`] when the scenario declares a
    /// `decomposition` grid (bitwise identical either way).
    pub fn build_simulation(
        &self,
        variant: Variant,
    ) -> Result<Simulation<Box<dyn Potential>>, ScenarioError> {
        let builder = self.variant_builder(variant, &AttemptEnv::default(), None, None)?;
        Ok(builder.build()?)
    }

    /// The configured [`md_core::SimulationBuilder`] of one variant, not yet
    /// built — the entry point for callers that wrap the scenario's system
    /// in their own driver (the fig9 bench sweeps
    /// [`DomainSimulation`] grids over this builder).
    pub fn simulation_builder(
        &self,
        variant: Variant,
    ) -> Result<SimulationBuilder<Box<dyn Potential>>, ScenarioError> {
        self.variant_builder(variant, &AttemptEnv::default(), None, None)
    }

    /// The driver one attempt steps: the plain [`Simulation`], or a
    /// [`DomainSimulation`] over the declared rank grid. Grid violations
    /// (a rank cell thinner than cutoff + skin) surface as the typed
    /// [`ScenarioError::Decomposition`].
    fn build_runner_with(
        &self,
        variant: Variant,
        env: &AttemptEnv,
        fault: Option<FaultPlan>,
        resume: Option<Checkpoint>,
    ) -> Result<Runner, ScenarioError> {
        let builder = self.variant_builder(variant, env, fault, resume)?;
        match &self.decomposition {
            None => Ok(Runner::Single(Box::new(builder.build()?))),
            Some(dec) => DomainSimulation::new(builder, dec.grid)
                .map(|dom| Runner::Domain(Box::new(dom)))
                .map_err(|e| match e {
                    DomainBuildError::Simulation(b) => ScenarioError::Build(b),
                    DomainBuildError::Grid(g) => ScenarioError::Decomposition(g.to_string()),
                }),
        }
    }

    /// The configured builder of one variant, with batch-execution extras:
    /// run on the leased runtime, reuse cached artifacts, feed the event
    /// stream, inject `fault`, or restore a `resume` checkpoint.
    fn variant_builder(
        &self,
        variant: Variant,
        env: &AttemptEnv,
        fault: Option<FaultPlan>,
        resume: Option<Checkpoint>,
    ) -> Result<SimulationBuilder<Box<dyn Potential>>, ScenarioError> {
        let build_system = || {
            let (sim_box, atoms) = self
                .system
                .lattice
                .lattice(self.system.cells, self.system.lattice_seed)
                .build_perturbed(self.system.perturbation, self.system.lattice_seed);
            PreparedSystem { sim_box, atoms }
        };
        let (sim_box, atoms) = match &env.cache {
            Some(cache) => {
                // Measured insertion: the atom arrays dominate a prepared
                // system's footprint, so the cache's byte budget (and the
                // resident_bytes counter in /metrics) sees their real size.
                let prepared = cache.get_or_insert_measured(self.system_key(), build_system, |p| {
                    std::mem::size_of::<PreparedSystem>()
                        + p.atoms.x.len() * (3 * std::mem::size_of::<[f64; 3]>())
                        + p.atoms.type_.len() * std::mem::size_of::<usize>()
                        + p.atoms.id.len() * std::mem::size_of::<u64>()
                });
                (prepared.sim_box, prepared.atoms.clone())
            }
            None => {
                let prepared = build_system();
                (prepared.sim_box, prepared.atoms)
            }
        };
        let params: TersoffParams = match &env.cache {
            Some(cache) => (*cache
                .get_or_insert_with(self.params_key(), || self.potential.params.params()))
            .clone(),
            None => self.potential.params.params(),
        };
        let potential = make_potential(params, self.options_for(variant));
        let reach = potential.cutoff() + self.run.skin;
        let mut builder = Simulation::builder(atoms, sim_box, potential)
            .timestep(self.run.timestep)
            .skin(self.run.skin)
            .masses(self.potential.params.masses())
            .temperature(self.system.temperature, self.system.velocity_seed)
            .thermo_every(self.run.thermo_every);
        if let Some(rt) = &env.runtime {
            builder = builder.runtime(rt);
        }
        if let Some(cache) = &env.cache {
            if let Some(hint) = cache.get::<usize>(self.neighbor_hint_key()) {
                builder = builder.neighbor_capacity(*hint);
            }
        }
        if let Some(plan) = fault {
            builder = builder.inject_fault(plan);
        }
        if let Some(checkpoint) = resume {
            builder = builder.resume_from(checkpoint);
        }
        if let Some(health) = &self.health {
            builder = builder.observe(HealthGuard::new(health.settings()));
        }
        if let Some(checkpoint) = &self.checkpoint {
            let path = self
                .checkpoint_path_for(variant)
                .expect("checkpoint path exists when checkpointing is declared");
            builder = builder.observe(CheckpointWriter::new(path, checkpoint.every));
        }
        if let Some(dump) = &self.dump {
            let path = self
                .dump_path_for(variant)
                .expect("dump path exists when dump is declared");
            let elements = dump
                .elements
                .clone()
                .unwrap_or_else(|| self.potential.params.elements());
            let io_err = |e: std::io::Error| ScenarioError::Io {
                path: path.display().to_string(),
                error: e.to_string(),
            };
            builder = match dump.format {
                DumpFormat::Xyz => {
                    builder.observe(XyzDump::create(&path, dump.every, elements).map_err(io_err)?)
                }
                DumpFormat::Lammps => builder
                    .observe(LammpsDump::create(&path, dump.every, elements).map_err(io_err)?),
            };
        }
        if let Some(props) = &self.properties {
            if let Some(stress) = &props.stress {
                builder = builder.observe(StressTensor::new(stress.every));
            }
            if let Some(rdf) = &props.rdf {
                // The neighbor list is the distance oracle, so its reach is
                // the hard upper bound of the histogram (0 = use the reach).
                let r_max = if rdf.r_max > 0.0 {
                    rdf.r_max.min(reach)
                } else {
                    reach
                };
                builder = builder.observe(RadialDistribution::new(rdf.every, rdf.bins, r_max));
            }
        }
        if let Some((events, job)) = &env.events {
            builder = builder.observe(JobEventTap {
                events: events.clone(),
                job: *job,
                checkpoint_every: self.checkpoint.as_ref().map(|c| c.every).unwrap_or(0),
            });
        }
        Ok(builder)
    }

    // -- one attempt, one variant ------------------------------------------

    /// An unexecuted [`VariantReport`] skeleton (status `failed` until an
    /// attempt overwrites it).
    fn blank_report(&self, variant: Variant) -> VariantReport {
        VariantReport {
            variant,
            resolved_threads: resolve_threads(variant.threads),
            label: self.options_for(variant).label(),
            status: VariantStatus::Failed,
            attempts: 1,
            error: None,
            report: None,
            trace: Vec::new(),
            dump: None,
            warnings: Vec::new(),
            resumed_from: None,
            decomposition: None,
            properties: None,
        }
    }

    /// The measured `properties` block of one finished variant: observer
    /// read-back plus the post-run elastic driver, whose strained replicas
    /// run as parallel jobs on a nested engine.
    fn measure_properties(
        &self,
        sim: &Simulation<Box<dyn Potential>>,
        variant: Variant,
    ) -> Result<Option<PropertiesReport>, ScenarioError> {
        let Some(props) = &self.properties else {
            return Ok(None);
        };
        let stress = props.stress.as_ref().and_then(|spec| {
            sim.observer::<StressTensor>().map(|s| StressReport {
                every: spec.every,
                samples: s.samples(),
                time_averaged: s.time_averaged(),
                last: s.last(),
            })
        });
        let rdf = props.rdf.as_ref().and_then(|spec| {
            sim.observer::<RadialDistribution>().map(|r| RdfReport {
                every: spec.every,
                bins: r.bins(),
                r_max: r.r_max(),
                samples: r.samples(),
                g: r.g(),
            })
        });
        let elastic = match &props.elastic {
            None => None,
            Some(spec) => {
                let lattice = self
                    .system
                    .lattice
                    .lattice(self.system.cells, self.system.lattice_seed);
                let params = self.potential.params.params();
                let mut options = self.options_for(variant);
                // The strained replicas are small static cells — parallelism
                // comes from running them as concurrent jobs, each
                // single-threaded.
                options.threads = 1;
                let factory: elastic::PotentialFactory =
                    Arc::new(move || make_potential(params.clone(), options));
                let engine = JobEngine::new(EngineConfig {
                    workers: resolve_threads(0).min(8),
                    ..EngineConfig::default()
                });
                let report = elastic::measure_cubic(&engine, factory, &lattice, spec.settings())
                    .map_err(|message| ScenarioError::Run {
                        label: self.options_for(variant).label(),
                        status: VariantStatus::Failed,
                        message,
                    })?;
                Some(report)
            }
        };
        let mut checks = Vec::new();
        if let Some(exp) = &props.expected {
            let tol = exp.tolerance_pct;
            let mut check = |name: &'static str, expected: Option<f64>, measured: Option<f64>| {
                if let (Some(e), Some(m)) = (expected, measured) {
                    let rel_err_pct = ((m - e) / e).abs() * 100.0;
                    checks.push(PropertyCheck {
                        name,
                        expected: e,
                        measured: m,
                        rel_err_pct,
                        ok: rel_err_pct <= tol,
                    });
                }
            };
            match &elastic {
                Some(r) => {
                    check("lattice_a", exp.lattice_a, Some(r.lattice_a));
                    check("cohesive_ev", exp.cohesive_ev, Some(r.cohesive_ev));
                    check("c11_gpa", exp.c11_gpa, r.c11_gpa);
                    check("c12_gpa", exp.c12_gpa, r.c12_gpa);
                    check("c44_gpa", exp.c44_gpa, r.c44_gpa);
                }
                None => {
                    // No elastic driver: the cohesive energy falls back to
                    // the initial (step-0) potential energy per atom of the
                    // as-built cell.
                    let measured = sim
                        .thermo_history()
                        .first()
                        .map(|t| t.potential / sim.atoms.n_local as f64);
                    check("cohesive_ev", exp.cohesive_ev, measured);
                }
            }
        }
        Ok(Some(PropertiesReport {
            stress,
            rdf,
            elastic,
            checks,
        }))
    }

    /// One attempt at one variant, run to a [`VariantReport`] whatever
    /// happens: build errors, panics and health aborts all land in
    /// `status`/`error` instead of unwinding into the batch.
    fn attempt_variant(
        &self,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
        env: &AttemptEnv,
    ) -> VariantReport {
        let mut out = self.blank_report(variant);
        let label = out.label.clone();

        let resume = if policy.resume {
            match self.checkpoint_path_for(variant) {
                Some(path) if path.exists() => match Checkpoint::load(&path) {
                    Ok(cp) => {
                        out.resumed_from = Some(cp.step);
                        Some(cp)
                    }
                    Err(e) => {
                        out.error = Some(ScenarioError::Io {
                            path: path.display().to_string(),
                            error: e.to_string(),
                        });
                        return out;
                    }
                },
                _ => None,
            }
        } else {
            None
        };
        let fault = self.fault_for(&label, policy);

        // The whole attempt runs under catch_unwind: try_run already
        // contains per-step panics, this contains everything else (e.g. a
        // build-time panic) so one variant can never abort the batch.
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut runner = self.build_runner_with(variant, env, fault, resume)?;
            let remaining = steps.saturating_sub(runner.sim().step);
            let run_result = runner.try_run(remaining);
            if let Some(cache) = &env.cache {
                // The capacity this system settled at; the next build of the
                // same system pre-reserves it and skips the growth
                // reallocations.
                cache.put(
                    self.neighbor_hint_key(),
                    runner.sim().neighbors.neighbors.len(),
                );
            }
            let sim = runner.sim();
            let dump = match self.dump.as_ref().map(|d| d.format) {
                Some(DumpFormat::Lammps) => sim
                    .observer::<LammpsDump>()
                    .map(|d| (d.path().to_path_buf(), d.frames_written())),
                _ => sim
                    .observer::<XyzDump>()
                    .map(|d| (d.path().to_path_buf(), d.frames_written())),
            };
            let trace = sim.thermo_history().to_vec();
            let stats = runner.domain_stats();
            // Properties are only meaningful for a run that finished: a
            // diverged/panicked trajectory has no steady state to report,
            // and the elastic driver would just burn time. A step-capped
            // run (`--steps-cap` smoke) skips them too — the capped trace
            // is not the declared experiment, and the smoke jobs must not
            // pay for FIRE relaxations.
            let properties = if run_result.is_ok() && steps >= self.run.steps {
                self.measure_properties(sim, variant)?
            } else {
                None
            };
            Ok::<_, ScenarioError>((run_result, trace, dump, stats, properties))
        }));
        match attempt {
            Err(payload) => {
                out.status = VariantStatus::Panicked;
                out.error = Some(ScenarioError::Run {
                    label,
                    status: VariantStatus::Panicked,
                    message: panic_payload_string(payload.as_ref()),
                });
            }
            Ok(Err(e)) => {
                out.status = VariantStatus::Failed;
                out.error = Some(e);
            }
            Ok(Ok((run_result, trace, dump, stats, properties))) => {
                out.trace = trace;
                out.dump = dump;
                out.decomposition = stats;
                out.properties = properties;
                match run_result {
                    Ok(report) => {
                        out.status = VariantStatus::Ok;
                        out.warnings = report.warnings.clone();
                        out.report = Some(report);
                    }
                    Err(RunError::Diverged {
                        step,
                        reason,
                        report,
                    }) => {
                        out.status = VariantStatus::Diverged;
                        out.warnings = report.warnings.clone();
                        out.report = Some(*report);
                        out.error = Some(ScenarioError::Run {
                            label,
                            status: VariantStatus::Diverged,
                            message: format!("step {step}: {reason}"),
                        });
                    }
                    Err(RunError::Panicked { step, message }) => {
                        out.status = VariantStatus::Panicked;
                        out.error = Some(ScenarioError::Run {
                            label,
                            status: VariantStatus::Panicked,
                            message: format!("step {step}: {message}"),
                        });
                    }
                    Err(RunError::AlreadyFaulted) => {
                        out.status = VariantStatus::Failed;
                        out.error = Some(ScenarioError::Run {
                            label,
                            status: VariantStatus::Failed,
                            message: RunError::AlreadyFaulted.to_string(),
                        });
                    }
                }
            }
        }
        out
    }

    /// [`Scenario::attempt_variant`] under the policy's wall-clock budget:
    /// the attempt runs on a worker thread and an expired budget abandons
    /// that thread (documented leak — the detached worker may finish later,
    /// its results discarded) and reports [`VariantStatus::Timeout`].
    fn attempt_with_timeout(
        &self,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
        env: AttemptEnv,
    ) -> VariantReport {
        let Some(limit) = policy.timeout else {
            return self.attempt_variant(variant, steps, policy, &env);
        };
        let (tx, rx) = mpsc::channel();
        let scenario = self.clone();
        let policy = policy.clone();
        std::thread::spawn(move || {
            let report = scenario.attempt_variant(variant, steps, &policy, &env);
            let _ = tx.send(report);
        });
        match rx.recv_timeout(limit) {
            Ok(report) => report,
            Err(_) => {
                let mut out = self.blank_report(variant);
                out.status = VariantStatus::Timeout;
                out.error = Some(ScenarioError::Run {
                    label: out.label.clone(),
                    status: VariantStatus::Timeout,
                    message: format!(
                        "exceeded the wall-clock budget of {:.1} s",
                        limit.as_secs_f64()
                    ),
                });
                out
            }
        }
    }

    /// The retry loop of one variant, running as an engine job: attempts
    /// execute on the job's leased runtime; a timeout poisons that lease
    /// (the abandoned worker thread may still hold its pool) and retries on
    /// a fresh one.
    fn run_variant_on(
        &self,
        ctx: &mut JobContext<'_>,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
    ) -> VariantReport {
        let mut last = None;
        for attempt in 0..=policy.retries {
            let env = AttemptEnv {
                runtime: Some(ctx.runtime().clone()),
                cache: Some(ctx.cache_handle()),
                events: Some((ctx.events(), ctx.id())),
            };
            let mut report = self.attempt_with_timeout(variant, steps, policy, env);
            report.attempts = attempt + 1;
            match report.status {
                // Divergence is deterministic — a retry would reproduce it
                // bit for bit, so don't waste the attempts.
                VariantStatus::Ok | VariantStatus::Diverged => return report,
                VariantStatus::Timeout => ctx.refresh_runtime(),
                VariantStatus::Panicked | VariantStatus::Failed => {}
            }
            last = Some(report);
        }
        last.expect("at least one attempt ran")
    }

    // -- submission --------------------------------------------------------

    /// The [`JobSpec`] of one variant: named `<scenario>/<label>`, packing
    /// 1-thread variants onto shared runtimes and claiming a whole runtime
    /// for multi-thread ones.
    fn variant_job(
        &self,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
    ) -> JobSpec<VariantReport> {
        let scenario = self.clone();
        let policy = policy.clone();
        JobSpec::new(
            format!("{}/{}", self.name, self.options_for(variant).label()),
            move |ctx: &mut JobContext<'_>| scenario.run_variant_on(ctx, variant, steps, &policy),
        )
        .threads(variant.threads)
        .exclusive(resolve_threads(variant.threads) > 1)
    }

    /// Submit one variant to `engine` and get its typed handle — the
    /// primitive everything else (execute, throughput, the cancellation
    /// tests) is built from. Blocks while the engine's queue is full.
    pub fn submit(
        &self,
        engine: &JobEngine,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
    ) -> Result<JobHandle<VariantReport>, ScenarioError> {
        engine
            .submit(self.variant_job(variant, steps, policy))
            .map_err(|e| ScenarioError::Engine(e.to_string()))
    }

    /// [`Scenario::submit`] without the backpressure block: a full queue
    /// returns [`SubmitError::Full`] instead of waiting for a slot. The
    /// load-shedding primitive `tersoff-serve` maps to HTTP 429.
    pub fn try_submit(
        &self,
        engine: &JobEngine,
        variant: Variant,
        steps: u64,
        policy: &RunPolicy,
    ) -> Result<JobHandle<VariantReport>, SubmitError> {
        engine.try_submit(self.variant_job(variant, steps, policy))
    }

    /// A drained handle's outcome as a [`VariantReport`]. `Faulted` can only
    /// mean a panic that escaped the attempt's own isolation (it is caught
    /// by the engine's `catch_unwind` instead); `Cancelled` means the job
    /// never ran.
    pub(crate) fn resolve(
        &self,
        variant: Variant,
        outcome: JobOutcome<VariantReport>,
    ) -> VariantReport {
        match outcome {
            JobOutcome::Finished(report) => report,
            JobOutcome::Faulted(message) => {
                let mut out = self.blank_report(variant);
                out.status = VariantStatus::Panicked;
                out.error = Some(ScenarioError::Run {
                    label: out.label.clone(),
                    status: VariantStatus::Panicked,
                    message,
                });
                out
            }
            JobOutcome::Cancelled => {
                let mut out = self.blank_report(variant);
                out.error = Some(ScenarioError::Run {
                    label: out.label.clone(),
                    status: VariantStatus::Failed,
                    message: "cancelled before it ran".into(),
                });
                out
            }
        }
    }

    /// A [`ScenarioReport`] over drained variant outcomes plus host facts
    /// and the executing engine's counters.
    fn assemble_report(
        &self,
        steps: u64,
        variants: Vec<VariantReport>,
        engine: EngineStats,
    ) -> ScenarioReport {
        ScenarioReport {
            scenario: self.clone(),
            steps,
            executed_backend: self
                .options_for(Variant {
                    mode: self.potential.mode,
                    threads: self.potential.threads,
                })
                .resolved_backend()
                .to_string(),
            dispatch_granularity: vektor::dispatch::DISPATCH_GRANULARITY,
            compiled_isa: vektor::dispatch::compiled_isa(),
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            variants,
            engine,
        }
    }

    /// Steps to run under `policy` (the declared length after any cap).
    pub(crate) fn capped_steps(&self, policy: &RunPolicy) -> u64 {
        match policy.steps_cap {
            Some(cap) => self.run.steps.min(cap),
            None => self.run.steps,
        }
    }

    // -- execution ---------------------------------------------------------

    /// Run one variant for `steps` (normally `self.run.steps`, possibly
    /// capped by the caller). Compatibility wrapper over the submission
    /// path: any non-`ok` outcome is returned as the typed error.
    pub fn run_variant(
        &self,
        variant: Variant,
        steps: u64,
    ) -> Result<VariantReport, ScenarioError> {
        let engine = JobEngine::with_workers(1);
        let handle = self.submit(&engine, variant, steps, &RunPolicy::default())?;
        let report = self.resolve(variant, handle.wait());
        match report.status {
            VariantStatus::Ok => Ok(report),
            status => Err(report.error.clone().unwrap_or(ScenarioError::Run {
                label: report.label.clone(),
                status,
                message: "variant did not complete".into(),
            })),
        }
    }

    /// Execute every variant. `steps_cap` (e.g. from `tersoff-run
    /// --steps-cap`) limits the run length for smoke testing.
    /// Compatibility wrapper over [`Scenario::execute_with`]: the first
    /// non-`ok` variant fails the whole scenario with its typed error.
    pub fn execute(&self, steps_cap: Option<u64>) -> Result<ScenarioReport, ScenarioError> {
        let report = self.execute_with(&RunPolicy {
            steps_cap,
            ..RunPolicy::default()
        })?;
        if let Some(v) = report
            .variants
            .iter()
            .find(|v| v.status != VariantStatus::Ok)
        {
            return Err(v.error.clone().unwrap_or(ScenarioError::Run {
                label: v.label.clone(),
                status: v.status,
                message: "variant did not complete".into(),
            }));
        }
        Ok(report)
    }

    /// Execute every variant under a [`RunPolicy`]: per-variant panic
    /// isolation, retries, optional wall-clock timeout, checkpoint resume,
    /// `keep_going` and `jobs`-wide parallelism. A thin synchronous wrapper
    /// over submit-and-drain: spins up a [`JobEngine`] with
    /// [`RunPolicy::jobs`] lanes and calls [`Scenario::execute_on`]. Never
    /// fails the batch — each variant's outcome is its `status` in the
    /// returned report. Without `keep_going`, the batch stops after the
    /// first non-`ok` variant (already-run variants are reported either
    /// way).
    pub fn execute_with(&self, policy: &RunPolicy) -> Result<ScenarioReport, ScenarioError> {
        let engine = JobEngine::new(EngineConfig {
            workers: policy.jobs.max(1),
            ..EngineConfig::default()
        });
        self.execute_on(&engine, policy)
    }

    /// Execute every variant on a caller-owned engine (what `tersoff-run`
    /// does, sharing one engine — one runtime pool, one artifact cache —
    /// across every scenario of the invocation). With `keep_going` the
    /// whole matrix is submitted eagerly and drained in matrix order;
    /// without it, variants are submitted one at a time so the batch stops
    /// exactly at the first non-`ok` variant.
    pub fn execute_on(
        &self,
        engine: &JobEngine,
        policy: &RunPolicy,
    ) -> Result<ScenarioReport, ScenarioError> {
        let steps = self.capped_steps(policy);
        let mut variants = Vec::new();
        if policy.keep_going {
            let mut handles = Vec::new();
            for v in self.variants() {
                handles.push((v, self.submit(engine, v, steps, policy)?));
            }
            for (v, handle) in handles {
                variants.push(self.resolve(v, handle.wait()));
            }
        } else {
            for v in self.variants() {
                let handle = self.submit(engine, v, steps, policy)?;
                let report = self.resolve(v, handle.wait());
                let stop = report.status != VariantStatus::Ok;
                variants.push(report);
                if stop {
                    break;
                }
            }
        }
        Ok(self.assemble_report(steps, variants, engine.stats()))
    }
}

impl ScenarioReport {
    /// Variants whose measured drift exceeds the scenario's declared
    /// `max_drift` bound (empty when no bound is declared).
    pub fn drift_violations(&self) -> Vec<String> {
        let Some(bound) = self.scenario.max_drift else {
            return Vec::new();
        };
        self.variants
            .iter()
            .filter_map(|v| v.report.as_ref().map(|r| (v, r)))
            .filter(|(_, r)| r.max_drift > bound)
            .map(|(v, r)| {
                format!(
                    "{}: |ΔE/E₀| = {:.3e} exceeds declared bound {bound:.3e}",
                    v.label, r.max_drift
                )
            })
            .collect()
    }

    /// Failed property checks across all variants (empty when the scenario
    /// declares no `properties.expected` values).
    pub fn property_violations(&self) -> Vec<String> {
        self.variants
            .iter()
            .filter_map(|v| v.properties.as_ref().map(|p| (v, p)))
            .flat_map(|(v, p)| {
                p.checks.iter().filter(|c| !c.ok).map(move |c| {
                    format!(
                        "{}: {} = {:.4} deviates {:.2}% from published {:.4}",
                        v.label, c.name, c.measured, c.rel_err_pct, c.expected
                    )
                })
            })
            .collect()
    }

    /// The report in the JSON shape `bench_diff` consumes: a top-level
    /// `series` array keyed by (mode, threads) with per-entry metrics.
    pub fn to_report_json(&self) -> String {
        let s = &self.scenario;
        // seconds-per-step of the Ref variant at each thread count, for the
        // speedup_vs_ref column (mirrors fig5's reporting).
        let ref_seconds: BTreeMap<usize, f64> = self
            .variants
            .iter()
            .filter(|v| v.variant.mode == ExecutionMode::Ref && v.status == VariantStatus::Ok)
            .filter_map(|v| {
                v.report
                    .as_ref()
                    .map(|r| (v.resolved_threads, r.seconds_per_step()))
            })
            .collect();
        let series: Vec<Json> = self
            .variants
            .iter()
            .map(|v| {
                let mut entry = vec![
                    ("mode", Json::Str(v.variant.mode.to_string())),
                    ("scheme", Json::Str(s.potential.scheme.to_string())),
                    ("threads", Json::Num(v.resolved_threads as f64)),
                    ("label", Json::Str(v.label.clone())),
                    ("status", Json::Str(v.status.to_string())),
                    ("attempts", Json::Num(v.attempts as f64)),
                ];
                if let Some(step) = v.resumed_from {
                    entry.push(("resumed_from", Json::Num(step as f64)));
                }
                if let Some(error) = &v.error {
                    entry.push(("error", Json::Str(error.to_string())));
                }
                if !v.warnings.is_empty() {
                    entry.push((
                        "warnings",
                        Json::Arr(v.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
                    ));
                }
                // Metrics only for variants that produced a report (ok, or
                // the partial report of a diverged run) — bench_diff skips
                // non-ok entries entirely.
                if let Some(report) = &v.report {
                    let seconds = report.seconds_per_step();
                    entry.extend([
                        ("seconds_per_step", Json::Num(seconds)),
                        ("ns_per_day", Json::Num(report.ns_per_day)),
                        ("max_drift", Json::Num(report.max_drift)),
                        ("rebuilds", Json::Num(report.total_rebuilds as f64)),
                        ("final_total_energy", Json::Num(report.final_thermo.total)),
                        (
                            // Per-phase breakdown (force / neighbor / comm /
                            // integrate / other) so the runtime-parallel
                            // phases are measurable from the report alone.
                            "timers",
                            obj(Stage::ALL
                                .iter()
                                .map(|&stage| {
                                    (stage.name(), Json::Num(report.timers.seconds(stage)))
                                })
                                .collect::<Vec<_>>()),
                        ),
                    ]);
                    if let Some(&r) = ref_seconds.get(&v.resolved_threads) {
                        if seconds > 0.0 && v.status == VariantStatus::Ok {
                            entry.push(("speedup_vs_ref", Json::Num(r / seconds)));
                        }
                    }
                }
                if let Some(d) = &v.decomposition {
                    entry.push((
                        "decomposition",
                        obj([
                            (
                                "grid",
                                Json::Arr(d.grid.iter().map(|&g| Json::Num(g as f64)).collect()),
                            ),
                            ("ranks", Json::Num(d.ranks as f64)),
                            ("migrations", Json::Num(d.migrations as f64)),
                            (
                                "atoms_per_rank",
                                Json::Arr(
                                    d.atoms_per_rank
                                        .iter()
                                        .map(|&n| Json::Num(n as f64))
                                        .collect(),
                                ),
                            ),
                            ("ghost_fraction", Json::Num(d.ghost_fraction)),
                            ("comm_seconds", Json::Num(d.comm_seconds)),
                            ("migrate_seconds", Json::Num(d.migrate_seconds)),
                            ("comm_fraction", Json::Num(d.comm_fraction)),
                        ]),
                    ));
                }
                if let Some(p) = &v.properties {
                    entry.push(("properties", properties_json(p)));
                }
                obj(entry)
            })
            .collect();
        let mut top = vec![
            ("figure", Json::Str(format!("scenario_{}", s.name))),
            ("scenario", Json::Str(s.name.clone())),
            ("description", Json::Str(s.description.clone())),
            (
                "workload",
                obj([
                    ("lattice", Json::Str(s.system.lattice.to_string())),
                    (
                        "cells",
                        Json::Arr(
                            s.system
                                .cells
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("atoms", Json::Num(s.n_atoms() as f64)),
                    ("perturbation", Json::Num(s.system.perturbation)),
                    ("temperature", Json::Num(s.system.temperature)),
                ]),
            ),
            ("steps", Json::Num(self.steps as f64)),
            (
                "available_parallelism",
                Json::Num(self.available_parallelism as f64),
            ),
            ("executed_backend", Json::Str(self.executed_backend.clone())),
            (
                "dispatch_granularity",
                Json::Str(self.dispatch_granularity.to_string()),
            ),
            ("compiled_isa", Json::Str(self.compiled_isa.to_string())),
            (
                // The engine configuration that executed this batch, next
                // to the backend facts: how wide, how deep, how warm.
                "engine",
                obj([
                    ("workers", Json::Num(self.engine.workers as f64)),
                    ("queue_depth", Json::Num(self.engine.queue_depth as f64)),
                    ("submitted", Json::Num(self.engine.submitted as f64)),
                    (
                        "runtimes_created",
                        Json::Num(self.engine.runtimes_created as f64),
                    ),
                    ("cache_hits", Json::Num(self.engine.cache.hits as f64)),
                    ("cache_misses", Json::Num(self.engine.cache.misses as f64)),
                    (
                        "cache_evictions",
                        Json::Num(self.engine.cache.evictions as f64),
                    ),
                    (
                        "cache_resident_bytes",
                        Json::Num(self.engine.cache.resident_bytes as f64),
                    ),
                ]),
            ),
            ("series", Json::Arr(series)),
        ];
        if let Some(dec) = &s.decomposition {
            top.push((
                "decomposition",
                obj([
                    (
                        "grid",
                        Json::Arr(dec.grid.iter().map(|&g| Json::Num(g as f64)).collect()),
                    ),
                    ("ranks", Json::Num(dec.n_ranks() as f64)),
                ]),
            ));
        }
        obj(top).pretty()
    }
}

// ---------------------------------------------------------------------------
// Throughput measurement
// ---------------------------------------------------------------------------

/// One saturation measurement (`tersoff-run --throughput`): every variant
/// of every scenario submitted up front, the engine drained at `--jobs`
/// lanes, the whole batch wall-clocked.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Scenarios in the batch.
    pub scenarios: usize,
    /// Variants executed across all scenarios.
    pub variants: usize,
    /// Variants that did not finish `ok`.
    pub failures: usize,
    /// Wall-clock seconds from first submission to last drained result.
    pub wall_seconds: f64,
    /// Scenarios per hour at saturation — the headline metric the
    /// `bench_diff` gate watches (larger is better).
    pub scenarios_per_hour: f64,
    /// Variants per hour at saturation.
    pub variants_per_hour: f64,
    /// Engine lanes the batch ran on (`--jobs`).
    pub jobs: usize,
    /// Engine counters after the drain (runtime pooling, cache hits).
    pub engine: EngineStats,
    /// The vektor implementation that executed the runs.
    pub executed_backend: String,
    /// See [`ScenarioReport::dispatch_granularity`].
    pub dispatch_granularity: &'static str,
    /// See [`ScenarioReport::compiled_isa`].
    pub compiled_isa: &'static str,
    /// Host CPU count.
    pub available_parallelism: usize,
}

impl ThroughputReport {
    /// The report in the JSON shape `bench_diff` consumes, written to
    /// `BENCH_throughput.json`: one `series` entry keyed ("batch", jobs)
    /// carrying the rate metrics and the cache counters.
    pub fn to_report_json(&self) -> String {
        let status = if self.failures == 0 { "ok" } else { "failed" };
        obj([
            ("figure", Json::Str("throughput".into())),
            (
                "description",
                Json::Str(
                    "scenarios/hour with every variant submitted at engine saturation".into(),
                ),
            ),
            ("scenarios", Json::Num(self.scenarios as f64)),
            ("variants", Json::Num(self.variants as f64)),
            ("failures", Json::Num(self.failures as f64)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            (
                "available_parallelism",
                Json::Num(self.available_parallelism as f64),
            ),
            ("executed_backend", Json::Str(self.executed_backend.clone())),
            (
                "dispatch_granularity",
                Json::Str(self.dispatch_granularity.to_string()),
            ),
            ("compiled_isa", Json::Str(self.compiled_isa.to_string())),
            (
                "engine",
                obj([
                    ("workers", Json::Num(self.engine.workers as f64)),
                    ("queue_depth", Json::Num(self.engine.queue_depth as f64)),
                    ("submitted", Json::Num(self.engine.submitted as f64)),
                    (
                        "runtimes_created",
                        Json::Num(self.engine.runtimes_created as f64),
                    ),
                    ("cache_hits", Json::Num(self.engine.cache.hits as f64)),
                    ("cache_misses", Json::Num(self.engine.cache.misses as f64)),
                    (
                        "cache_evictions",
                        Json::Num(self.engine.cache.evictions as f64),
                    ),
                    (
                        "cache_resident_bytes",
                        Json::Num(self.engine.cache.resident_bytes as f64),
                    ),
                ]),
            ),
            (
                "series",
                Json::Arr(vec![obj([
                    ("mode", Json::Str("batch".into())),
                    ("threads", Json::Num(self.jobs as f64)),
                    ("status", Json::Str(status.into())),
                    ("scenarios_per_hour", Json::Num(self.scenarios_per_hour)),
                    ("variants_per_hour", Json::Num(self.variants_per_hour)),
                    (
                        "seconds_per_scenario",
                        Json::Num(self.wall_seconds / self.scenarios.max(1) as f64),
                    ),
                    ("cache_hits", Json::Num(self.engine.cache.hits as f64)),
                    ("cache_misses", Json::Num(self.engine.cache.misses as f64)),
                ])]),
            ),
        ])
        .pretty()
    }
}

/// A symmetric 3×3 tensor in Voigt order as a named JSON object.
fn voigt_json(t: &[f64; 6]) -> Json {
    obj([
        ("xx", Json::Num(t[0])),
        ("yy", Json::Num(t[1])),
        ("zz", Json::Num(t[2])),
        ("xy", Json::Num(t[3])),
        ("xz", Json::Num(t[4])),
        ("yz", Json::Num(t[5])),
    ])
}

/// The `properties` section of one variant's report entry (also what
/// `/v1/jobs/{id}` serves in its `result`).
pub(crate) fn properties_json(p: &PropertiesReport) -> Json {
    let mut entry = Vec::new();
    if let Some(s) = &p.stress {
        entry.push((
            "stress_bar",
            obj([
                ("every", Json::Num(s.every as f64)),
                ("samples", Json::Num(s.samples as f64)),
                ("time_averaged", voigt_json(&s.time_averaged)),
                ("last", voigt_json(&s.last)),
            ]),
        ));
    }
    if let Some(r) = &p.rdf {
        entry.push((
            "rdf",
            obj([
                ("every", Json::Num(r.every as f64)),
                ("bins", Json::Num(r.bins as f64)),
                ("r_max", Json::Num(r.r_max)),
                ("samples", Json::Num(r.samples as f64)),
                ("g", Json::Arr(r.g.iter().map(|&g| Json::Num(g)).collect())),
            ]),
        ));
    }
    if let Some(e) = &p.elastic {
        let mut x = vec![
            ("lattice_a", Json::Num(e.lattice_a)),
            ("cohesive_ev", Json::Num(e.cohesive_ev)),
        ];
        for (key, val) in [
            ("c11_gpa", e.c11_gpa),
            ("c12_gpa", e.c12_gpa),
            ("c44_gpa", e.c44_gpa),
        ] {
            if let Some(v) = val {
                x.push((key, Json::Num(v)));
            }
        }
        x.push(("energy_evals", Json::Num(e.energy_evals as f64)));
        entry.push(("elastic", obj(x)));
    }
    entry.push((
        "checks",
        Json::Arr(
            p.checks
                .iter()
                .map(|c| {
                    obj([
                        ("name", Json::Str(c.name.to_string())),
                        ("expected", Json::Num(c.expected)),
                        ("measured", Json::Num(c.measured)),
                        ("rel_err_pct", Json::Num(c.rel_err_pct)),
                        ("ok", Json::Bool(c.ok)),
                    ])
                })
                .collect(),
        ),
    ));
    obj(entry)
}

/// Measure batch throughput at saturation: submit every variant of every
/// scenario before draining anything (the bounded queue's backpressure is
/// part of the measurement), then drain in order and assemble the usual
/// per-scenario reports alongside the rate summary. Failures never stop
/// the batch — they are counted and surfaced per-variant in the scenario
/// reports.
pub fn measure_throughput(
    scenarios: &[(PathBuf, Scenario)],
    engine: &JobEngine,
    policy: &RunPolicy,
) -> Result<(ThroughputReport, Vec<(PathBuf, ScenarioReport)>), ScenarioError> {
    let start = Instant::now();
    let mut pending = Vec::new();
    for (path, scenario) in scenarios {
        let steps = scenario.capped_steps(policy);
        let mut handles = Vec::new();
        for v in scenario.variants() {
            handles.push((v, scenario.submit(engine, v, steps, policy)?));
        }
        pending.push((path.clone(), scenario, steps, handles));
    }
    let mut reports = Vec::new();
    let mut n_variants = 0usize;
    let mut failures = 0usize;
    for (path, scenario, steps, handles) in pending {
        let mut variants = Vec::new();
        for (v, handle) in handles {
            let report = scenario.resolve(v, handle.wait());
            n_variants += 1;
            if report.status != VariantStatus::Ok {
                failures += 1;
            }
            variants.push(report);
        }
        reports.push((
            path,
            scenario.assemble_report(steps, variants, engine.stats()),
        ));
    }
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let per_hour = |n: usize| n as f64 * 3600.0 / wall_seconds;
    let summary = ThroughputReport {
        scenarios: scenarios.len(),
        variants: n_variants,
        failures,
        wall_seconds,
        scenarios_per_hour: per_hour(scenarios.len()),
        variants_per_hour: per_hour(n_variants),
        jobs: engine.config().workers,
        engine: engine.stats(),
        executed_backend: scenarios
            .first()
            .map(|(_, s)| {
                s.options_for(Variant {
                    mode: s.potential.mode,
                    threads: s.potential.threads,
                })
                .resolved_backend()
                .to_string()
            })
            .unwrap_or_else(|| "unknown".into()),
        dispatch_granularity: vektor::dispatch::DISPATCH_GRANULARITY,
        compiled_isa: vektor::dispatch::compiled_isa(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    Ok((summary, reports))
}

#[cfg(test)]
mod tests {
    use super::super::spec::tests::sample;
    use super::super::spec::MatrixSpec;
    use super::*;
    use crate::json::parse;
    use md_core::simulation::BuildError;

    #[test]
    fn executes_and_reports_in_bench_diff_shape() {
        let mut s = sample();
        s.matrix = Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
            threads: vec![1],
        });
        s.run.steps = 4;
        let report = s.execute(None).unwrap();
        assert_eq!(report.variants.len(), 2);
        assert!(report.drift_violations().is_empty());
        let json = report.to_report_json();
        let parsed = parse(&json).unwrap();
        let series = parsed.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].get("mode").unwrap().as_str(), Some("Ref"));
        assert!(series[0].get("seconds_per_step").unwrap().as_f64().unwrap() > 0.0);
        // Opt-M row carries the speedup against the Ref row.
        assert!(series[1].get("speedup_vs_ref").is_some());
    }

    #[test]
    fn report_json_records_engine_configuration() {
        let mut s = sample();
        s.matrix = Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
            threads: vec![1],
        });
        s.run.steps = 4;
        let report = s
            .execute_with(&RunPolicy {
                jobs: 2,
                keep_going: true,
                ..RunPolicy::default()
            })
            .unwrap();
        assert_eq!(report.engine.workers, 2);
        assert_eq!(report.engine.submitted, 2);
        // The second variant reuses the first's cached lattice (the
        // build-once lock guarantees this even with both lanes racing).
        assert!(report.engine.cache.hits >= 1, "{:?}", report.engine.cache);
        let json = parse(&report.to_report_json()).unwrap();
        let engine = json.get("engine").unwrap();
        assert_eq!(engine.get("workers").unwrap().as_f64(), Some(2.0));
        assert!(engine.get("queue_depth").unwrap().as_f64().unwrap() >= 1.0);
        assert!(engine.get("cache_hits").unwrap().as_f64().unwrap() >= 1.0);
        assert!(engine.get("cache_misses").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn dump_writes_frames_through_the_engine() {
        let mut s = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("scenario_exec_dump_{}.xyz", std::process::id()));
        s.dump = Some(super::super::spec::DumpSpec {
            path: path.display().to_string(),
            every: 2,
            elements: None,
            format: DumpFormat::Xyz,
        });
        s.matrix = None;
        s.run.steps = 6;
        let report = s.execute(None).unwrap();
        let (written, frames) = report.variants[0].dump.clone().unwrap();
        assert_eq!(written, path);
        assert_eq!(frames, 3); // steps 2, 4, 6
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(&format!("{}\n", s.n_atoms())));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_json_carries_per_phase_timers() {
        let mut s = sample();
        s.matrix = None;
        s.run.steps = 4;
        let report = s.execute(None).unwrap();
        let json = parse(&report.to_report_json()).unwrap();
        let series = json.get("series").unwrap().as_arr().unwrap();
        let timers = series[0].get("timers").unwrap();
        for stage in Stage::ALL {
            let v = timers.get(stage.name()).and_then(|t| t.as_f64());
            assert!(v.is_some(), "missing timer for {}", stage.name());
        }
        assert!(
            timers.get("integrate").unwrap().as_f64().unwrap() > 0.0,
            "integration must be timed separately"
        );
    }

    #[test]
    fn decomposed_execution_is_bitwise_identical_and_reports_stats() {
        let mut s = sample();
        s.matrix = None;
        s.run.steps = 6;
        let single = s.execute(None).unwrap();
        s.decomposition = Some(super::super::spec::DecompositionSpec { grid: [2, 1, 1] });
        let dec = s.execute(None).unwrap();

        let e = |r: &ScenarioReport| r.variants[0].report().final_thermo.total.to_bits();
        assert_eq!(
            e(&single),
            e(&dec),
            "decomposed run must match the single-domain energy bit for bit"
        );

        let stats = dec.variants[0].decomposition.as_ref().unwrap();
        assert_eq!(stats.grid, [2, 1, 1]);
        assert_eq!(stats.ranks, 2);
        assert!(stats.ghost_fraction > 0.0);
        assert_eq!(
            stats.atoms_per_rank.iter().sum::<usize>(),
            s.n_atoms(),
            "ranks must partition the system: {:?}",
            stats.atoms_per_rank
        );
        assert!(stats.comm_fraction > 0.0 && stats.comm_fraction < 1.0);

        let json = parse(&dec.to_report_json()).unwrap();
        let top = json.get("decomposition").unwrap();
        assert_eq!(top.get("ranks").unwrap().as_f64(), Some(2.0));
        let series = json.get("series").unwrap().as_arr().unwrap();
        let entry = series[0].get("decomposition").unwrap();
        assert!(entry.get("comm_fraction").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            entry.get("grid").unwrap().as_arr().unwrap().len(),
            3,
            "per-variant entry must carry the grid"
        );

        // An infeasible grid surfaces as the typed decomposition error.
        s.decomposition = Some(super::super::spec::DecompositionSpec { grid: [64, 1, 1] });
        match s.execute(None) {
            Err(ScenarioError::Decomposition(msg)) => {
                assert!(msg.contains("cutoff"), "{msg}");
            }
            other => panic!("expected a decomposition error, got {other:?}"),
        }
    }

    #[test]
    fn drift_violations_are_detected() {
        let mut s = sample();
        s.matrix = None;
        s.run.steps = 10;
        s.max_drift = Some(1e-30); // unattainably tight
        let report = s.execute(None).unwrap();
        assert_eq!(report.drift_violations().len(), 1);
    }

    #[test]
    fn steps_cap_limits_the_run() {
        let mut s = sample();
        s.matrix = None;
        let report = s.execute(Some(3)).unwrap();
        assert_eq!(report.steps, 3);
        assert_eq!(report.variants[0].report().total_steps, 3);
    }

    #[test]
    fn invalid_physical_setup_surfaces_the_build_error() {
        let mut s = sample();
        s.matrix = None;
        s.run.timestep = -1.0;
        match s.execute(None) {
            Err(ScenarioError::Build(BuildError::NonPositiveTimestep(_))) => {}
            other => panic!("expected build error, got {other:?}"),
        }
    }

    #[test]
    fn batch_severity_maps_each_status_to_its_exit_code() {
        let code = |status| {
            let mut sev = BatchSeverity::new();
            sev.record(status);
            sev.exit_code()
        };
        assert_eq!(code(VariantStatus::Ok), 0);
        assert_eq!(code(VariantStatus::Failed), 3);
        assert_eq!(code(VariantStatus::Diverged), 4);
        assert_eq!(code(VariantStatus::Panicked), 5);
        assert_eq!(code(VariantStatus::Timeout), 6);
        assert!(!BatchSeverity::new().any());
    }

    #[test]
    fn batch_severity_is_worst_wins() {
        // panic > timeout > health > load, regardless of recording order.
        let mut sev = BatchSeverity::new();
        sev.record_load_failure();
        assert_eq!(sev.exit_code(), 3);
        sev.record_drift_violation();
        assert_eq!(sev.exit_code(), 4);
        sev.record(VariantStatus::Timeout);
        assert_eq!(sev.exit_code(), 6);
        sev.record(VariantStatus::Panicked);
        assert_eq!(sev.exit_code(), 5);
        // Recording a milder class never lowers the code.
        sev.record(VariantStatus::Diverged);
        assert_eq!(sev.exit_code(), 5);
        assert!(sev.any());
    }

    #[test]
    fn throughput_reports_rates_and_cache_counters() {
        let mut s = sample();
        s.matrix = Some(MatrixSpec {
            modes: vec![ExecutionMode::Ref, ExecutionMode::OptM],
            threads: vec![1],
        });
        s.run.steps = 3;
        let engine = JobEngine::with_workers(2);
        let policy = RunPolicy {
            keep_going: true,
            ..RunPolicy::default()
        };
        let batch = vec![
            (PathBuf::from("a.json"), s.clone()),
            (PathBuf::from("b.json"), s),
        ];
        let (summary, reports) = measure_throughput(&batch, &engine, &policy).unwrap();
        assert_eq!(summary.scenarios, 2);
        assert_eq!(summary.variants, 4);
        assert_eq!(summary.failures, 0);
        assert!(summary.scenarios_per_hour > 0.0);
        // Scenario 2 is byte-identical to scenario 1 — its lattice must hit.
        assert!(summary.engine.cache.hits >= 1);
        assert_eq!(reports.len(), 2);
        let json = parse(&summary.to_report_json()).unwrap();
        let series = json.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].get("mode").unwrap().as_str(), Some("batch"));
        assert_eq!(series[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(
            series[0]
                .get("scenarios_per_hour")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        assert!(series[0].get("cache_hits").unwrap().as_f64().is_some());
    }
}
