//! Declarative benchmark scenarios: JSON specs for the workloads behind the
//! paper's figures, executed through the job engine.
//!
//! Split in two halves behind this facade:
//!
//! * [`spec`] — the declarative surface: the [`Scenario`] struct and its
//!   sub-specs, strict JSON parsing/serialization, discovery, and the
//!   variant matrix.
//! * [`exec`] — the execution surface: submission onto a
//!   [`md_core::jobs::JobEngine`] ([`Scenario::submit`] /
//!   [`Scenario::execute_on`]), the synchronous
//!   [`Scenario::execute`]/[`Scenario::execute_with`] wrappers, reporting
//!   ([`ScenarioReport`], [`ThroughputReport`]) and the
//!   [`BatchSeverity`] exit-code mapping.
//!
//! Everything is re-exported flat, so `scenario::Scenario` and friends keep
//! working exactly as before the split.

pub mod exec;
pub mod spec;

pub use exec::{
    measure_throughput, BatchSeverity, DomainStats, PropertiesReport, PropertyCheck, RdfReport,
    RunPolicy, ScenarioReport, StressReport, ThroughputReport, VariantReport,
};
pub use spec::{
    CheckpointSpec, DecompositionSpec, DumpFormat, DumpSpec, ElasticSpec, ExpectedProperties,
    FaultSpec, HealthSpec, LatticeSpec, MatrixSpec, ParamSet, PotentialSpec, PropertiesSpec,
    RdfSpec, RunSpec, Scenario, ScenarioError, StressSpec, SystemSpec, Variant, VariantStatus,
};
