//! Declarative benchmark scenarios: JSON specs for the workloads behind the
//! paper's figures, executed through the job engine.
//!
//! Split in two halves behind this facade:
//!
//! * [`spec`] — the declarative surface: the [`Scenario`] struct and its
//!   sub-specs, strict JSON parsing/serialization, discovery, and the
//!   variant matrix.
//! * [`exec`] — the execution surface: submission onto a
//!   [`md_core::jobs::JobEngine`] ([`Scenario::submit`] /
//!   [`Scenario::execute_on`]), the synchronous
//!   [`Scenario::execute`]/[`Scenario::execute_with`] wrappers, reporting
//!   ([`ScenarioReport`], [`ThroughputReport`]) and the
//!   [`BatchSeverity`] exit-code mapping.
//!
//! Everything is re-exported flat, so `scenario::Scenario` and friends keep
//! working exactly as before the split.

pub mod exec;
pub mod spec;

pub use exec::{
    measure_throughput, BatchSeverity, DomainStats, RunPolicy, ScenarioReport, ThroughputReport,
    VariantReport,
};
pub use spec::{
    CheckpointSpec, DecompositionSpec, DumpFormat, DumpSpec, FaultSpec, HealthSpec, LatticeSpec,
    MatrixSpec, ParamSet, PotentialSpec, RunSpec, Scenario, ScenarioError, SystemSpec, Variant,
    VariantStatus,
};
