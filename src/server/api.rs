//! Request routing and response emission: the `tersoff-serve` wire API.
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/jobs` | POST | submit a strict [`Scenario`] JSON spec (matrix expanded) |
//! | `/v1/jobs/{id}` | GET | typed status, resolved report once terminal |
//! | `/v1/jobs/{id}` | DELETE | queue-level cancel |
//! | `/v1/jobs/{id}/events` | GET | chunked NDJSON [`JobEvent`] stream |
//! | `/v1/shutdown` | POST | begin graceful drain |
//! | `/metrics` | GET | [`EngineStats`](md_core::jobs::EngineStats) in Prometheus text format |
//! | `/healthz` | GET | liveness |
//!
//! Error mapping is part of the contract: a malformed or unknown-key body
//! is `400` carrying the strict parser's own error text, an unknown job id
//! is `404`, a wrong method on a known route is `405`, a full engine queue
//! is `429` (the whole batch is rolled back — submission is all-or-nothing
//! per scenario), and a draining server refuses intake with `503`.

use super::http::{ChunkedStream, ReadError, Request, Response};
use super::state::{JobRecord, JobView, ServerState};
use crate::json::{obj, Json};
use crate::scenario::{RunPolicy, Scenario, VariantReport};
use md_core::jobs::{JobId, SubmitError};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// How long the event stream waits for news before re-checking the log.
const STREAM_POLL: Duration = Duration::from_millis(250);

/// Serve one connection: read a single request, route it, respond, close.
pub(crate) fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    // A peer that connects and never finishes a request must not pin the
    // drain: bound the header read.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match super::http::read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(ReadError::Io(_)) => return,
        Err(ReadError::BadRequest(msg)) => {
            let _ = error_response(400, &msg).write_to(&mut stream);
            return;
        }
        Err(ReadError::TooLarge(msg)) => {
            let _ = error_response(413, &msg).write_to(&mut stream);
            return;
        }
    };
    state.http_requests.fetch_add(1, Ordering::Relaxed);
    // The event stream writes its own (chunked) response; everything else
    // produces a fixed Response.
    if request.method == "GET" {
        if let Some(id) = request
            .path
            .strip_prefix("/v1/jobs/")
            .and_then(|rest| rest.strip_suffix("/events"))
        {
            stream_events(state, id, &mut stream);
            return;
        }
    }
    let response = route(state, &request);
    let _ = response.write_to(&mut stream);
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, &obj([("error", Json::Str(message.to_string()))]))
}

fn method_not_allowed(allow: &str) -> Response {
    error_response(405, &format!("method not allowed; allowed: {allow}")).header("Allow", allow)
}

fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            &obj([
                ("status", Json::Str("ok".into())),
                (
                    "uptime_seconds",
                    Json::Num(state.started.elapsed().as_secs_f64()),
                ),
                ("draining", Json::Bool(state.draining())),
            ]),
        ),
        (_, "/healthz") => method_not_allowed("GET"),
        ("GET", "/metrics") => metrics(state),
        (_, "/metrics") => method_not_allowed("GET"),
        ("POST", "/v1/jobs") => submit(state, request),
        (_, "/v1/jobs") => method_not_allowed("POST"),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Response::json(
                200,
                &obj([
                    ("status", Json::Str("draining".into())),
                    ("jobs_accepted", Json::Num(state.registry.len() as f64)),
                ]),
            )
        }
        (_, "/v1/shutdown") => method_not_allowed("POST"),
        (method, path) => match path.strip_prefix("/v1/jobs/") {
            Some(rest) if !rest.is_empty() && !rest.contains('/') => {
                let Some(id) = parse_job_id(rest) else {
                    return error_response(404, &format!("no such job {rest:?}"));
                };
                match method {
                    "GET" => job_status(state, id),
                    "DELETE" => job_cancel(state, id),
                    _ => method_not_allowed("GET, DELETE"),
                }
            }
            Some(rest) if rest.ends_with("/events") => {
                // GET was intercepted in handle_connection; any other
                // method lands here.
                method_not_allowed("GET")
            }
            _ => error_response(404, &format!("no route for {path:?}")),
        },
    }
}

fn parse_job_id(text: &str) -> Option<JobId> {
    text.parse::<JobId>().ok()
}

// ---------------------------------------------------------------------------
// POST /v1/jobs
// ---------------------------------------------------------------------------

fn submit(state: &Arc<ServerState>, request: &Request) -> Response {
    if state.draining() {
        return error_response(503, "server is draining; intake is closed");
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error_response(400, "request body is not UTF-8"),
    };
    // Strict parse: unknown keys, duplicate keys and type mismatches all
    // surface the parser's own message on the 400.
    let scenario = match Scenario::from_json(body) {
        Ok(scenario) => Arc::new(scenario),
        Err(e) => return error_response(400, &e.to_string()),
    };
    let policy = RunPolicy {
        keep_going: true,
        ..RunPolicy::default()
    };
    let steps = scenario.capped_steps(&policy);
    // All-or-nothing intake: either every variant of the matrix is
    // accepted, or the batch is rolled back and the client retries whole.
    let mut accepted = Vec::new();
    for variant in scenario.variants() {
        match scenario.try_submit(&state.engine, variant, steps, &policy) {
            Ok(handle) => accepted.push((variant, handle)),
            Err(SubmitError::Full) => {
                for (_, handle) in &accepted {
                    handle.cancel();
                }
                return error_response(
                    429,
                    &format!(
                        "engine queue is full ({} slots); {} variant(s) rolled back — retry later",
                        state.engine.config().queue_depth,
                        accepted.len(),
                    ),
                )
                .header("Retry-After", "1");
            }
            Err(SubmitError::Closed) => {
                return error_response(503, "engine is shut down");
            }
        }
    }
    let jobs: Vec<Json> = accepted
        .iter()
        .map(|(variant, handle)| {
            obj([
                ("id", Json::Num(handle.id() as f64)),
                ("label", Json::Str(scenario.options_for(*variant).label())),
                ("threads", Json::Num(variant.threads as f64)),
                ("mode", Json::Str(variant.mode.to_string())),
            ])
        })
        .collect();
    for (variant, handle) in accepted {
        let label = scenario.options_for(variant).label();
        state.registry.insert(JobRecord::new(
            scenario.clone(),
            variant,
            label,
            steps,
            handle,
        ));
    }
    Response::json(
        202,
        &obj([
            ("scenario", Json::Str(scenario.name.clone())),
            ("steps", Json::Num(steps as f64)),
            ("jobs", Json::Arr(jobs)),
        ]),
    )
}

// ---------------------------------------------------------------------------
// GET / DELETE /v1/jobs/{id}
// ---------------------------------------------------------------------------

fn job_status(state: &Arc<ServerState>, id: JobId) -> Response {
    let Some(record) = state.registry.get(id) else {
        return error_response(404, &format!("no such job {id}"));
    };
    let view = record.view();
    let mut fields = vec![
        ("id", Json::Num(id as f64)),
        ("scenario", Json::Str(record.scenario.name.clone())),
        ("label", Json::Str(record.label.clone())),
        ("steps", Json::Num(record.steps as f64)),
        ("status", Json::Str(view.status_name().to_string())),
        ("done", Json::Bool(view.is_terminal())),
    ];
    if let JobView::Done { report, .. } = &view {
        fields.push(("result", result_json(report)));
    }
    Response::json(200, &obj(fields))
}

fn job_cancel(state: &Arc<ServerState>, id: JobId) -> Response {
    let Some(record) = state.registry.get(id) else {
        return error_response(404, &format!("no such job {id}"));
    };
    let cancelled = record.cancel();
    Response::json(
        200,
        &obj([
            ("id", Json::Num(id as f64)),
            ("cancelled", Json::Bool(cancelled)),
            ("status", Json::Str(record.view().status_name().to_string())),
        ]),
    )
}

/// A resolved [`VariantReport`] on the wire. Thermo samples carry the
/// exact bits of their energies next to the decimal rendering: the
/// bitwise-identity contract (HTTP submission ≡ `tersoff-run`) is checked
/// against these fields by `tests/server.rs`.
fn result_json(report: &VariantReport) -> Json {
    let mut fields = vec![
        ("label", Json::Str(report.label.clone())),
        ("status", Json::Str(report.status.name().to_string())),
        ("attempts", Json::Num(report.attempts as f64)),
        (
            "resolved_threads",
            Json::Num(report.resolved_threads as f64),
        ),
    ];
    if let Some(error) = &report.error {
        fields.push(("error", Json::Str(error.to_string())));
    }
    if !report.warnings.is_empty() {
        fields.push((
            "warnings",
            Json::Arr(
                report
                    .warnings
                    .iter()
                    .map(|w| Json::Str(w.clone()))
                    .collect(),
            ),
        ));
    }
    if let Some(step) = report.resumed_from {
        fields.push(("resumed_from", Json::Num(step as f64)));
    }
    if let Some(props) = &report.properties {
        fields.push(("properties", crate::scenario::exec::properties_json(props)));
    }
    if let Some(run) = &report.report {
        fields.push(("seconds_per_step", Json::Num(run.seconds_per_step())));
        fields.push(("ns_per_day", Json::Num(run.ns_per_day)));
        fields.push(("max_drift", Json::Num(run.max_drift)));
        fields.push(("final_total_energy", Json::Num(run.final_thermo.total)));
        fields.push((
            "final_total_energy_bits",
            Json::Str(format!("{:016x}", run.final_thermo.total.to_bits())),
        ));
    }
    fields.push((
        "trace",
        Json::Arr(
            report
                .trace
                .iter()
                .map(|t| {
                    obj([
                        ("step", Json::Num(t.step as f64)),
                        ("potential", Json::Num(t.potential)),
                        (
                            "potential_bits",
                            Json::Str(format!("{:016x}", t.potential.to_bits())),
                        ),
                        ("total", Json::Num(t.total)),
                        (
                            "total_bits",
                            Json::Str(format!("{:016x}", t.total.to_bits())),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    obj(fields)
}

// ---------------------------------------------------------------------------
// GET /v1/jobs/{id}/events — chunked NDJSON
// ---------------------------------------------------------------------------

fn stream_events(state: &Arc<ServerState>, id_text: &str, stream: &mut TcpStream) {
    let Some(id) = parse_job_id(id_text) else {
        let _ = error_response(404, &format!("no such job {id_text:?}")).write_to(stream);
        return;
    };
    if state.registry.get(id).is_none() {
        let _ = error_response(404, &format!("no such job {id}")).write_to(stream);
        return;
    }
    let log = state.registry.event_log(id);
    let Ok(mut chunked) = ChunkedStream::start(stream, 200, "application/x-ndjson") else {
        return;
    };
    let mut from = 0usize;
    loop {
        let (lines, terminal) = log.wait_lines(from, STREAM_POLL);
        from += lines.len();
        if !lines.is_empty() {
            let mut buf = String::new();
            for line in &lines {
                buf.push_str(line);
                buf.push('\n');
            }
            if chunked.write_chunk(buf.as_bytes()).is_err() {
                return; // client went away mid-stream
            }
        }
        if terminal {
            break;
        }
    }
    let _ = chunked.finish();
}

// ---------------------------------------------------------------------------
// GET /metrics — Prometheus text exposition
// ---------------------------------------------------------------------------

fn metrics(state: &Arc<ServerState>) -> Response {
    let stats = state.engine.stats_snapshot();
    let mut out = String::new();
    let mut metric = |name: &str, kind: &str, help: &str, value: f64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("{name} {}\n", value as i64));
        } else {
            out.push_str(&format!("{name} {value}\n"));
        }
    };
    metric(
        "tersoff_engine_workers",
        "gauge",
        "Lane threads draining the job queue.",
        stats.workers as f64,
    );
    metric(
        "tersoff_engine_queue_depth",
        "gauge",
        "Bounded queue capacity.",
        stats.queue_depth as f64,
    );
    metric(
        "tersoff_engine_queue_len",
        "gauge",
        "Jobs waiting in the queue right now.",
        stats.queue_len as f64,
    );
    metric(
        "tersoff_jobs_submitted_total",
        "counter",
        "Jobs accepted by the engine.",
        stats.submitted as f64,
    );
    metric(
        "tersoff_jobs_finished_total",
        "counter",
        "Jobs whose closure returned normally.",
        stats.finished as f64,
    );
    metric(
        "tersoff_jobs_faulted_total",
        "counter",
        "Jobs whose closure panicked.",
        stats.faulted as f64,
    );
    metric(
        "tersoff_jobs_cancelled_total",
        "counter",
        "Jobs cancelled while queued.",
        stats.cancelled as f64,
    );
    metric(
        "tersoff_runtimes_created_total",
        "counter",
        "ParallelRuntimes ever constructed by the pool.",
        stats.runtimes_created as f64,
    );
    metric(
        "tersoff_runtimes_live",
        "gauge",
        "ParallelRuntimes currently pooled.",
        stats.live_runtimes as f64,
    );
    metric(
        "tersoff_cache_entries",
        "gauge",
        "Live artifact-cache entries.",
        stats.cache.entries as f64,
    );
    metric(
        "tersoff_cache_hits_total",
        "counter",
        "Artifact-cache lookups that found a prepared artifact.",
        stats.cache.hits as f64,
    );
    metric(
        "tersoff_cache_misses_total",
        "counter",
        "Artifact-cache lookups that had to build.",
        stats.cache.misses as f64,
    );
    metric(
        "tersoff_cache_evictions_total",
        "counter",
        "Artifact-cache entries shed by the LRU budget.",
        stats.cache.evictions as f64,
    );
    metric(
        "tersoff_cache_resident_bytes",
        "gauge",
        "Approximate bytes held by live artifact-cache entries.",
        stats.cache.resident_bytes as f64,
    );
    metric(
        "tersoff_uptime_seconds",
        "gauge",
        "Seconds since the engine started.",
        stats.uptime.as_secs_f64(),
    );
    metric(
        "tersoff_http_requests_total",
        "counter",
        "HTTP requests parsed off the wire.",
        state.http_requests.load(Ordering::Relaxed) as f64,
    );
    // Per-status job counts over everything this server accepted.
    out.push_str(
        "# HELP tersoff_jobs Jobs accepted over HTTP, by current status.\n# TYPE tersoff_jobs gauge\n",
    );
    for (status, count) in state.registry.status_counts() {
        out.push_str(&format!("tersoff_jobs{{status=\"{status}\"}} {count}\n"));
    }
    Response::new(200)
        .header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        .body(out.into_bytes())
}
