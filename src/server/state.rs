//! Shared server state: the [`JobEngine`], the job registry, and the
//! per-job event logs the NDJSON streaming endpoint replays.
//!
//! The registry is the bridge between the engine's consume-on-wait
//! [`JobHandle`]s and HTTP's poll-any-number-of-times model: a
//! [`JobRecord`] keeps the typed handle until the job turns terminal, then
//! resolves it exactly once into a [`VariantReport`] that every later
//! `GET` re-reads. Event logs are append-only (fed by a single recorder
//! thread subscribed to the engine's [`EventBus`](md_core::jobs::EventBus)
//! before any submission), so a streaming client can join late and still
//! replay a job's full history before following it live.

use crate::json::{obj, Json};
use crate::scenario::{Scenario, Variant, VariantReport};
use md_core::jobs::{
    EventSub, JobEngine, JobEvent, JobHandle, JobId, JobOutcome, JobStatus, RecvError,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// One submitted job
// ---------------------------------------------------------------------------

enum Slot {
    /// Not yet terminal (or terminal but not yet resolved).
    Pending(JobHandle<VariantReport>),
    /// Transient while one reader resolves the handle (never observed —
    /// the slot lock is held across resolution).
    Resolving,
    /// Resolved once; shared by every later read.
    Done {
        report: Arc<VariantReport>,
        cancelled: bool,
    },
}

/// Where a job is on the queued → running → done arc, plus its resolved
/// report once done.
pub(crate) enum JobView {
    Queued,
    Running,
    Done {
        report: Arc<VariantReport>,
        cancelled: bool,
    },
}

impl JobView {
    /// The wire name of the job's state: `queued`, `running`, or — once
    /// done — the variant's terminal status (`ok`, `diverged`, `panicked`,
    /// `timeout`, `failed`) or `cancelled`.
    pub(crate) fn status_name(&self) -> &'static str {
        match self {
            JobView::Queued => "queued",
            JobView::Running => "running",
            JobView::Done {
                cancelled: true, ..
            } => "cancelled",
            JobView::Done { report, .. } => report.status.name(),
        }
    }

    /// Whether the job can make no further progress.
    pub(crate) fn is_terminal(&self) -> bool {
        matches!(self, JobView::Done { .. })
    }
}

/// One job accepted over the wire: which scenario variant it is, and the
/// handle-or-report lifecycle described on [`Slot`].
pub(crate) struct JobRecord {
    pub(crate) id: JobId,
    pub(crate) scenario: Arc<Scenario>,
    pub(crate) variant: Variant,
    pub(crate) label: String,
    pub(crate) steps: u64,
    slot: Mutex<Slot>,
}

impl JobRecord {
    pub(crate) fn new(
        scenario: Arc<Scenario>,
        variant: Variant,
        label: String,
        steps: u64,
        handle: JobHandle<VariantReport>,
    ) -> Arc<Self> {
        Arc::new(JobRecord {
            id: handle.id(),
            scenario,
            variant,
            label,
            steps,
            slot: Mutex::new(Slot::Pending(handle)),
        })
    }

    /// The job's current state. The first read after the job turns
    /// terminal consumes the handle (an immediate `wait`) and pins the
    /// resolved report; every later read shares it.
    pub(crate) fn view(&self) -> JobView {
        let mut slot = lock(&self.slot);
        let terminal = match &*slot {
            Slot::Pending(handle) => match handle.poll() {
                JobStatus::Queued => return JobView::Queued,
                JobStatus::Running => return JobView::Running,
                JobStatus::Finished | JobStatus::Faulted | JobStatus::Cancelled => true,
            },
            Slot::Resolving => unreachable!("resolution happens under the slot lock"),
            Slot::Done { report, cancelled } => {
                return JobView::Done {
                    report: report.clone(),
                    cancelled: *cancelled,
                }
            }
        };
        debug_assert!(terminal);
        let Slot::Pending(handle) = std::mem::replace(&mut *slot, Slot::Resolving) else {
            unreachable!("checked Pending above");
        };
        let outcome = handle.wait(); // immediate: the job is terminal
        let cancelled = matches!(outcome, JobOutcome::Cancelled);
        let report = Arc::new(self.scenario.resolve(self.variant, outcome));
        *slot = Slot::Done {
            report: report.clone(),
            cancelled,
        };
        JobView::Done { report, cancelled }
    }

    /// Cancel if still queued (exact queue-level semantics of
    /// [`JobHandle::cancel`]). `false` once running or terminal.
    pub(crate) fn cancel(&self) -> bool {
        match &*lock(&self.slot) {
            Slot::Pending(handle) => handle.cancel(),
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-job event logs
// ---------------------------------------------------------------------------

struct EventLogState {
    /// NDJSON lines (each one serialized [`JobEvent`]), in arrival order.
    lines: Vec<Arc<str>>,
    /// A terminal event landed; no further lines will ever be appended.
    terminal: bool,
}

/// The append-only event history of one job.
pub(crate) struct EventLog {
    state: Mutex<EventLogState>,
    grown: Condvar,
}

impl EventLog {
    fn new() -> Arc<Self> {
        Arc::new(EventLog {
            state: Mutex::new(EventLogState {
                lines: Vec::new(),
                terminal: false,
            }),
            grown: Condvar::new(),
        })
    }

    fn append(&self, line: Arc<str>, terminal: bool) {
        let mut state = lock(&self.state);
        state.lines.push(line);
        state.terminal |= terminal;
        drop(state);
        self.grown.notify_all();
    }

    fn mark_terminal(&self) {
        lock(&self.state).terminal = true;
        self.grown.notify_all();
    }

    /// Lines `from..` plus whether the log is complete. Blocks up to
    /// `timeout` when nothing new is available yet.
    pub(crate) fn wait_lines(&self, from: usize, timeout: Duration) -> (Vec<Arc<str>>, bool) {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.state);
        loop {
            if state.lines.len() > from || state.terminal {
                return (
                    state.lines[from.min(state.lines.len())..].to_vec(),
                    state.terminal,
                );
            }
            let now = Instant::now();
            if now >= deadline {
                return (Vec::new(), false);
            }
            let (guard, _) = self
                .grown
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// All jobs this server ever accepted, plus their event logs. Shared
/// between connection threads and the single recorder thread.
#[derive(Default)]
pub(crate) struct Registry {
    jobs: Mutex<HashMap<JobId, Arc<JobRecord>>>,
    events: Mutex<HashMap<JobId, Arc<EventLog>>>,
}

impl Registry {
    /// Register an accepted job.
    pub(crate) fn insert(&self, record: Arc<JobRecord>) {
        lock(&self.jobs).insert(record.id, record);
    }

    /// The record of job `id`, if this server accepted it.
    pub(crate) fn get(&self, id: JobId) -> Option<Arc<JobRecord>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// The event log of job `id`, created on first touch so a streamer can
    /// subscribe before the first event lands.
    pub(crate) fn event_log(&self, id: JobId) -> Arc<EventLog> {
        lock(&self.events)
            .entry(id)
            .or_insert_with(EventLog::new)
            .clone()
    }

    /// Job counts keyed by wire status name (for `/metrics`).
    pub(crate) fn status_counts(&self) -> Vec<(&'static str, usize)> {
        let records: Vec<Arc<JobRecord>> = lock(&self.jobs).values().cloned().collect();
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for record in records {
            *counts.entry(record.view().status_name()).or_default() += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }

    /// Total accepted jobs.
    pub(crate) fn len(&self) -> usize {
        lock(&self.jobs).len()
    }

    /// Whether every registered job has reached a terminal state — the
    /// drain condition of [`Server::join`](super::Server::join). (Engine
    /// counters cannot express this: a rejected submit's balancing
    /// `Cancelled` bumps `cancelled` without bumping `submitted`.)
    pub(crate) fn all_terminal(&self) -> bool {
        let records: Vec<Arc<JobRecord>> = lock(&self.jobs).values().cloned().collect();
        records.iter().all(|record| record.view().is_terminal())
    }

    /// Append `event` to its job's log (recorder thread only).
    fn record(&self, event: &JobEvent) {
        let log = self.event_log(event.job());
        let terminal = matches!(event.kind(), "finished" | "faulted" | "cancelled");
        log.append(event_json(event).compact().into(), terminal);
    }

    /// Mark every log terminal — the bus closed, nothing more can arrive.
    fn close_all(&self) {
        for log in lock(&self.events).values() {
            log.mark_terminal();
        }
    }
}

/// One [`JobEvent`] as the NDJSON object the `/v1/jobs/{id}/events` stream
/// emits: always `event` (the kind) and `job` (the id), plus the kind's
/// own fields. Energies carry their exact bits alongside the decimal
/// rendering, keeping the wire format as bitwise-faithful as the report
/// artifacts.
pub(crate) fn event_json(event: &JobEvent) -> Json {
    let mut fields = vec![
        ("event", Json::Str(event.kind().to_string())),
        ("job", Json::Num(event.job() as f64)),
    ];
    match event {
        JobEvent::Queued { name, .. } | JobEvent::Cancelled { name, .. } => {
            fields.push(("name", Json::Str(name.clone())));
        }
        JobEvent::Started {
            name,
            threads,
            exclusive,
            ..
        } => {
            fields.push(("name", Json::Str(name.clone())));
            fields.push(("threads", Json::Num(*threads as f64)));
            fields.push(("exclusive", Json::Bool(*exclusive)));
        }
        JobEvent::Thermo {
            step,
            total_energy,
            temperature,
            ..
        } => {
            fields.push(("step", Json::Num(*step as f64)));
            fields.push(("total_energy", Json::Num(*total_energy)));
            fields.push((
                "total_energy_bits",
                Json::Str(format!("{:016x}", total_energy.to_bits())),
            ));
            fields.push(("temperature", Json::Num(*temperature)));
        }
        JobEvent::Checkpoint { step, .. } => {
            fields.push(("step", Json::Num(*step as f64)));
        }
        JobEvent::Finished { name, seconds, .. } => {
            fields.push(("name", Json::Str(name.clone())));
            fields.push(("seconds", Json::Num(*seconds)));
        }
        JobEvent::Faulted { name, message, .. } => {
            fields.push(("name", Json::Str(name.clone())));
            fields.push(("message", Json::Str(message.clone())));
        }
    }
    obj(fields)
}

// ---------------------------------------------------------------------------
// Server state and the recorder
// ---------------------------------------------------------------------------

/// Everything a connection thread can reach: the engine, the registry,
/// the shutdown flag, and the wire counters.
pub(crate) struct ServerState {
    pub(crate) engine: JobEngine,
    pub(crate) registry: Arc<Registry>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) started: Instant,
    pub(crate) http_requests: AtomicU64,
}

impl ServerState {
    /// Whether graceful shutdown was requested (signal or
    /// `POST /v1/shutdown`): intake is closed, the drain has begun.
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The recorder loop: drain the engine's event stream into the registry's
/// per-job logs until the bus closes (engine shutdown). Runs on its own
/// thread, subscribed before the server accepts its first connection, so
/// no job's `queued` event can be missed.
pub(crate) fn run_recorder(sub: EventSub, registry: Arc<Registry>) {
    loop {
        match sub.recv() {
            Ok(event) => registry.record(&event),
            Err(RecvError::Closed) => break,
            Err(RecvError::Empty) => unreachable!("recv only returns events or Closed"),
        }
    }
    registry.close_all();
}
