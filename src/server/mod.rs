//! `tersoff-serve`: a long-running HTTP front end for the
//! [`JobEngine`](md_core::jobs::JobEngine).
//!
//! The module family splits along the same seams as the engine itself:
//!
//! - [`http`] — a hand-rolled HTTP/1.1 wire layer over
//!   [`std::net::TcpListener`] (no new crates): bounded request parsing,
//!   fixed-length responses, chunked transfer encoding for streams.
//! - `api` — routing and handlers: strict-JSON scenario intake, typed job
//!   status, queue-level cancel, NDJSON event streaming, Prometheus
//!   `/metrics`.
//! - `state` — the shared [`JobEngine`] plus the job registry that turns
//!   consume-on-wait job handles into poll-forever HTTP resources, and the
//!   per-job event logs fed by a single recorder thread.
//!
//! # Threading model
//!
//! One nonblocking accept loop polls the shutdown flag between accepts and
//! spawns a thread per connection (each serves exactly one request —
//! `Connection: close`). One recorder thread drains the engine's
//! [`EventBus`](md_core::jobs::EventBus) into per-job append-only logs; it
//! subscribes with a deep buffer *before* the first connection is accepted
//! so no `queued` event can be missed, and a stalled streaming client can
//! never block job progress (subscriptions are bounded, drop-oldest).
//!
//! # Graceful shutdown
//!
//! SIGTERM / ctrl-c (wired up by the binary) or `POST /v1/shutdown` set one
//! flag. From that point intake answers `503`, but the server keeps
//! serving: clients can still poll job status and follow event streams
//! while the engine's lanes drain the queue. Once every accepted job is
//! terminal, [`Server::join`] closes the listener, joins the in-flight
//! connections, and runs
//! [`JobEngine::shutdown`](md_core::jobs::JobEngine::shutdown), which
//! closes the event bus (ending the recorder) and returns the final
//! [`EngineStats`] for the drain footer.

pub mod http;

mod api;
mod state;

use md_core::jobs::{CacheBudget, EngineConfig, EngineStats, JobEngine};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use state::{run_recorder, Registry, ServerState};

/// How often the accept loop and [`Server::join`] re-check the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(25);

/// The recorder's subscription depth. Deep because the recorder is the
/// server's source of truth for event replay; it drains continuously, so
/// this bound only matters under extreme thermo rates.
const RECORDER_SUB_CAPACITY: usize = 1 << 16;

/// How a [`Server`] is sized.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Engine lane threads (0 → [`EngineConfig`] default).
    pub workers: usize,
    /// Engine queue capacity — the backpressure bound behind `429`
    /// (0 → [`EngineConfig`] default).
    pub queue_depth: usize,
    /// Artifact-cache retention budget. Unlike the one-shot CLI, a server
    /// defaults to real bounds so the cache cannot grow without limit.
    pub cache_budget: CacheBudget,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 0,
            cache_budget: CacheBudget {
                max_entries: 256,
                max_bytes: 256 * 1024 * 1024,
            },
        }
    }
}

/// A running `tersoff-serve` instance: listener bound, accept loop and
/// recorder spawned, engine live. Dropping without [`Server::join`] still
/// shuts the engine down (its own `Drop`), but skips the graceful drain
/// ordering — call `join`.
pub struct Server {
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    stop_accepting: Arc<AtomicBool>,
    addr: SocketAddr,
    accept: JoinHandle<()>,
    recorder: JoinHandle<()>,
}

impl Server {
    /// Bind `config.addr`, start the engine, the recorder and the accept
    /// loop, and return the running server.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let defaults = EngineConfig::default();
        let engine = JobEngine::new(EngineConfig {
            workers: if config.workers == 0 {
                defaults.workers
            } else {
                config.workers
            },
            queue_depth: if config.queue_depth == 0 {
                defaults.queue_depth
            } else {
                config.queue_depth
            },
            cache_budget: config.cache_budget,
        });

        // Subscribe before any connection can submit: the recorder must
        // see every job's `queued` event.
        let registry = Arc::new(Registry::default());
        let sub = engine.subscribe_with_capacity(RECORDER_SUB_CAPACITY);
        let recorder_registry = registry.clone();
        let recorder = thread::Builder::new()
            .name("serve-recorder".to_string())
            .spawn(move || run_recorder(sub, recorder_registry))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ServerState {
            engine,
            registry,
            shutdown: shutdown.clone(),
            started: Instant::now(),
            http_requests: AtomicU64::new(0),
        });
        let stop_accepting = Arc::new(AtomicBool::new(false));
        let accept_state = state.clone();
        let accept_stop = stop_accepting.clone();
        let accept = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_state, accept_stop))?;

        Ok(Server {
            state,
            shutdown,
            stop_accepting,
            addr,
            accept,
            recorder,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle the binary's signal bridge can set to begin the drain —
    /// identical in effect to `POST /v1/shutdown`.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Begin graceful shutdown from the owning thread.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until shutdown is requested, then drain: keep serving (intake
    /// answers `503`, status polls and event streams still work) until
    /// every accepted job is terminal, then close the listener, join the
    /// in-flight connections, and return the engine's final counters from
    /// [`JobEngine::shutdown`](md_core::jobs::JobEngine::shutdown).
    pub fn join(self) -> EngineStats {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::sleep(POLL);
        }
        // Drain while still serving: clients can poll results and follow
        // streams to their terminal events, and the `503` intake answer is
        // actually observable. Unregistered work (a 429 rollback's
        // still-running first variant, a submit racing the flag) is
        // invisible to clients and covered by the engine shutdown below,
        // which drains its queue before joining.
        while self.state.engine.stats_snapshot().queue_len > 0
            || !self.state.registry.all_terminal()
        {
            thread::sleep(POLL);
        }
        self.stop_accepting.store(true, Ordering::SeqCst);
        // The accept loop exits on the stop flag and joins every
        // connection thread before returning.
        let _ = self.accept.join();
        // Connection threads are gone — this Arc is now sole (the recorder
        // holds only the registry). Spin defensively anyway.
        let mut state = self.state;
        let state = loop {
            match Arc::try_unwrap(state) {
                Ok(state) => break state,
                Err(shared) => {
                    state = shared;
                    thread::sleep(Duration::from_millis(5));
                }
            }
        };
        // Drains queued + running jobs, then closes the event bus, which
        // ends the recorder loop.
        let stats = state.engine.shutdown();
        let _ = self.recorder.join();
        stats
    }
}

/// Accept until the stop flag is set (after the drain — the server keeps
/// serving while draining), one thread per connection; then join the
/// in-flight connections and drop (close) the listener.
fn accept_loop(listener: TcpListener, state: Arc<ServerState>, stop: Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is nonblocking for the shutdown poll; the
                // accepted stream must block normally.
                let _ = stream.set_nonblocking(false);
                let conn_state = state.clone();
                if let Ok(handle) = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || api::handle_connection(&conn_state, stream))
                {
                    connections.push(handle);
                }
                connections.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}
