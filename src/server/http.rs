//! A hand-rolled HTTP/1.1 wire layer over [`std::net::TcpStream`].
//!
//! Deliberately minimal, matching the repo's offline-shims constraint (no
//! new crates): request parsing with bounded header/body sizes, fixed
//! `Content-Length` responses, and chunked transfer encoding for the NDJSON
//! event stream. Every connection is single-request (`Connection: close`),
//! which keeps the server's shutdown story exact — joining the connection
//! threads is joining the in-flight requests.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Parsed request headers grow at most this large.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Request bodies (scenario specs) grow at most this large.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why a request could not be read off the socket.
#[derive(Debug)]
pub enum ReadError {
    /// The peer vanished or the socket failed: nothing to respond to.
    Io(std::io::Error),
    /// The bytes are not HTTP/1.1 we understand → respond 400.
    BadRequest(String),
    /// Headers or body exceed the fixed bounds → respond 413.
    TooLarge(String),
}

/// One parsed HTTP/1.1 request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one request off the stream. `Ok(None)` means the peer closed the
/// connection cleanly before sending anything.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge(format!(
                "request headers exceed {MAX_HEADER_BYTES} bytes"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => {
                return Err(ReadError::BadRequest(
                    "connection closed mid-headers".into(),
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ReadError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::BadRequest(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::BadRequest(format!("invalid Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "request body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(ReadError::BadRequest(format!(
                    "connection closed after {} of {content_length} body bytes",
                    body.len()
                )))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    body.truncate(content_length);
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// A fixed-length response, written in one shot with `Connection: close`.
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .body(body.into().into_bytes())
    }

    /// An `application/json` response serialized from `json` (the repo's
    /// deterministic pretty printer, same as every report artifact).
    pub fn json(status: u16, json: &crate::json::Json) -> Self {
        Response::new(status)
            .header("Content-Type", "application/json")
            .body(json.pretty().into_bytes())
    }

    /// Add a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Replace the body.
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// The status code (for access logging).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// Serialize head + body onto the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A chunked-transfer response in progress (the NDJSON event stream):
/// status and headers go out on [`ChunkedStream::start`], each
/// [`ChunkedStream::write_chunk`] is one `len\r\n…\r\n` frame flushed
/// immediately (live streaming, no buffering), and [`ChunkedStream::finish`]
/// writes the terminal zero chunk.
pub struct ChunkedStream<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedStream<'a> {
    /// Write the response head and switch the connection to chunked frames.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedStream { stream })
    }

    /// Write one chunk (skipped when empty — an empty chunk would
    /// terminate the stream).
    pub fn write_chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream cleanly.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
