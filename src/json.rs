//! A minimal JSON value, parser and writer.
//!
//! The offline build environment has no `serde_json`; scenario files and
//! benchmark reports are plain JSON, so the facade carries this deliberately
//! small reader/writer (the same approach as `bench_diff`'s parser). The
//! grammar is full JSON minus `\uXXXX` escapes, which never occur in the
//! files this repository produces or consumes — they are rejected loudly
//! rather than silently mangled.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (numbers as f64 — ample for scenario specs and
/// benchmark reports).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys — deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object (None for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serialize with 2-space indentation and deterministic key order.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialize onto a single line with deterministic key order — the
    /// framing NDJSON requires (one value per line, no inner newlines).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (k, (key, value)) in map.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Short scalar-only arrays (e.g. `cells`, thread lists) stay
                // on one line; everything else goes multi-line.
                let inline = items.len() <= 8
                    && items
                        .iter()
                        .all(|i| matches!(i, Json::Num(_) | Json::Bool(_) | Json::Str(_)));
                if inline {
                    out.push('[');
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (k, item) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        item.write(out, indent + 1);
                        if k + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, value)) in map.iter().enumerate() {
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if k + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Build a `Json::Obj` from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, what: &str) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("JSON parse error at line {line}, column {col}: {what}")
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.error(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(
                                self.error(&format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(b) => {
                    // Collect the full UTF-8 code point.
                    let start = self.pos;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let v = parse(r#"{"a": [1, -2.5e2, true, false, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[5].as_str(), Some("x\n\"y\""));
        assert!(v.get("b").unwrap().as_obj().unwrap().is_empty());
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("[1,] trailing").is_err());
    }

    #[test]
    fn round_trips_through_pretty() {
        let v = obj([
            ("name", Json::Str("si \"quoted\"".into())),
            ("cells", Json::Arr(vec![Json::Num(4.0); 3])),
            ("steps", Json::Num(100.0)),
            ("drift", Json::Num(2e-5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = v.pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integer_accessors_reject_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(parse(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": oops\n}").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
