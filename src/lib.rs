//! # lammps-tersoff-vector
//!
//! A from-scratch Rust reproduction of *The Vectorization of the Tersoff
//! Multi-Body Potential: An Exercise in Performance Portability*
//! (Höhnerbach, Ismail, Bientinesi — SC'16).
//!
//! The workspace is organized as four library crates plus a benchmark
//! harness; this facade crate re-exports their public APIs and hosts the
//! runnable examples and the cross-crate integration tests:
//!
//! * [`vektor`] — the portable vector abstraction (the paper's "building
//!   blocks": vector-wide conditionals, in-register reductions, conflict
//!   write handling, adjacent gathers).
//! * [`md_core`] — the molecular-dynamics substrate standing in for LAMMPS
//!   (atoms, box, lattices, neighbor lists, velocity-Verlet, thermo, timers,
//!   domain decomposition, and the thread-parallel allocation-free
//!   [`md_core::force_engine`]).
//! * [`tersoff`] — the Tersoff potential: reference, scalar-optimized
//!   (Algorithm 3) and the three vectorization schemes (1a/1b/1c), in double,
//!   single and mixed precision.
//! * [`arch_model`] — the machines of Tables I–III and the analytic cost
//!   model used to project the cross-architecture figures.
//!
//! ## Quickstart
//!
//! ```
//! use lammps_tersoff_vector::prelude::*;
//!
//! // Build a small perturbed silicon crystal...
//! let (sim_box, mut atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 42);
//! init_velocities(&mut atoms, &[units::mass::SI], 300.0, 1);
//!
//! // ...pick the paper's Opt-M execution mode (scheme 1b, 16 f32 lanes),
//! // threaded across 2 workers by the allocation-free force engine...
//! let potential = make_potential(
//!     TersoffParams::silicon(),
//!     TersoffOptions::default().with_threads(2),
//! );
//!
//! // ...and run a short NVE simulation.
//! let config = SimulationConfig::default();
//! let mut sim = Simulation::new(atoms, sim_box, potential, config);
//! sim.run(10);
//! assert!(sim.drift.max_relative_drift() < 1e-3);
//! ```

pub use arch_model;
pub use md_core;
pub use tersoff;
pub use vektor;

/// One-stop prelude for the examples and downstream users.
pub mod prelude {
    pub use arch_model::prelude::*;
    pub use md_core::prelude::*;
    pub use tersoff::prelude::*;
    pub use vektor::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_pulls_in_all_crates() {
        let params = TersoffParams::silicon();
        assert_eq!(params.n_elements(), 1);
        let machine = Machine::haswell();
        assert_eq!(machine.name, "HW");
        let v: SimdF<f64, 4> = SimdF::splat(1.0);
        assert_eq!(v.horizontal_sum(), 4.0);
        let lattice = Lattice::silicon([1, 1, 1]);
        assert_eq!(lattice.n_atoms(), 8);
    }
}
