//! # lammps-tersoff-vector
//!
//! A from-scratch Rust reproduction of *The Vectorization of the Tersoff
//! Multi-Body Potential: An Exercise in Performance Portability*
//! (Höhnerbach, Ismail, Bientinesi — SC'16).
//!
//! The workspace is organized as four library crates plus a benchmark
//! harness; this facade crate re-exports their public APIs, adds the
//! declarative [`scenario`] layer, and hosts the runnable examples and the
//! cross-crate integration tests:
//!
//! * [`vektor`] — the portable vector abstraction (the paper's "building
//!   blocks": vector-wide conditionals, in-register reductions, conflict
//!   write handling, adjacent gathers).
//! * [`md_core`] — the molecular-dynamics substrate standing in for LAMMPS
//!   (atoms, box, lattices, neighbor lists, velocity-Verlet, thermo, timers,
//!   the observer-driven simulation loop behind
//!   [`md_core::SimulationBuilder`], and the rank-parallel
//!   [`md_core::domain`] decomposition whose distributed timestep is
//!   bitwise identical to the single-domain driver). Its
//!   [`md_core::runtime`] module is
//!   the one thread owner in the system: the whole timestep — the
//!   allocation-free [`md_core::force_engine`], neighbor rebuilds, ghost
//!   exchange, integration, reductions — dispatches through one shared
//!   `ParallelRuntime`, with results bitwise identical across thread
//!   counts.
//! * [`tersoff`] — the Tersoff potential: reference, scalar-optimized
//!   (Algorithm 3) and the three vectorization schemes (1a/1b/1c), in double,
//!   single and mixed precision.
//! * [`arch_model`] — the machines of Tables I–III and the analytic cost
//!   model used to project the cross-architecture figures.
//! * [`scenario`] — serializable experiment descriptions: the specs in
//!   `scenarios/` that the `tersoff-run` binary executes (including an
//!   optional `decomposition` rank grid and `dump.format` selection).
//! * [`server`] — the `tersoff-serve` HTTP front end: scenario submission
//!   over the wire, typed job status, streamed NDJSON events, and
//!   Prometheus `/metrics`, all on the long-running
//!   [`md_core::jobs::JobEngine`].
//!
//! ## Quickstart
//!
//! Build a simulation declaratively with [`md_core::SimulationBuilder`];
//! `run` drives the registered observers and returns a
//! [`md_core::RunReport`]:
//!
//! ```
//! use lammps_tersoff_vector::prelude::*;
//!
//! // A small perturbed silicon crystal under the paper's Opt-M kernel
//! // (scheme 1b, 16 f32 lanes), threaded across 2 workers by the
//! // allocation-free force engine.
//! let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 42);
//! let potential = make_potential(
//!     TersoffParams::silicon(),
//!     TersoffOptions::default().with_threads(2),
//! );
//!
//! let mut sim = Simulation::builder(atoms, sim_box, potential)
//!     .masses(vec![units::mass::SI])
//!     .temperature(300.0, 1)     // Maxwell–Boltzmann velocities
//!     .thermo_every(5)
//!     .build()                    // typed BuildError instead of panics
//!     .expect("valid setup");
//!
//! let report = sim.run(10);
//! assert_eq!(report.steps, 10);
//! assert!(report.max_drift < 1e-3);
//! assert!(!sim.thermo_history().is_empty());
//! ```
//!
//! The same experiment as *data* — a [`scenario::Scenario`] spec that can
//! live in a JSON file under `scenarios/` and run via
//! `cargo run -p bench --bin tersoff-run -- scenarios/`:
//!
//! ```
//! use lammps_tersoff_vector::scenario::Scenario;
//!
//! let spec = r#"{
//!   "name": "doc_example",
//!   "system":    {"lattice": "silicon", "cells": [2, 2, 2], "temperature": 300.0},
//!   "potential": {"params": "silicon", "mode": "Opt-M", "scheme": "1b", "threads": 2},
//!   "run":       {"steps": 10, "thermo_every": 5},
//!   "max_drift": 1e-3
//! }"#;
//! let scenario = Scenario::from_json(spec).expect("valid spec");
//! let outcome = scenario.execute(None).expect("runs");
//! assert!(outcome.drift_violations().is_empty());
//! ```

pub use arch_model;
pub use md_core;
pub use tersoff;
pub use vektor;

pub mod json;
pub mod scenario;
pub mod server;

/// One-stop prelude for the examples and downstream users.
pub mod prelude {
    pub use crate::scenario::{Scenario, ScenarioError, ScenarioReport};
    pub use arch_model::prelude::*;
    pub use md_core::prelude::*;
    pub use tersoff::prelude::*;
    pub use vektor::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_pulls_in_all_crates() {
        let params = TersoffParams::silicon();
        assert_eq!(params.n_elements(), 1);
        let machine = Machine::haswell();
        assert_eq!(machine.name, "HW");
        let v: SimdF<f64, 4> = SimdF::splat(1.0);
        assert_eq!(v.horizontal_sum(), 4.0);
        let lattice = Lattice::silicon([1, 1, 1]);
        assert_eq!(lattice.n_atoms(), 8);
    }
}
