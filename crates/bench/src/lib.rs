//! Shared helpers for the benchmark harness: workload construction, kernel
//! timing, and the small formatting utilities the per-figure binaries use to
//! print paper-vs-reproduction tables.

use md_core::atom::AtomData;
use md_core::lattice::Lattice;
use md_core::neighbor::{NeighborList, NeighborSettings};
use md_core::potential::{ComputeOutput, Potential};
use md_core::simbox::SimBox;
use md_core::units;
use std::time::Instant;
use tersoff::driver::{make_potential, ExecutionMode, Scheme, TersoffOptions};
use tersoff::params::TersoffParams;

/// A prepared silicon workload: atoms, box and a skin-extended neighbor list.
pub struct SiliconWorkload {
    /// The simulation box.
    pub sim_box: SimBox,
    /// Atom data.
    pub atoms: AtomData,
    /// Neighbor list built with the Tersoff cutoff + 1 Å skin.
    pub neighbors: NeighborList,
}

impl SiliconWorkload {
    /// Build a perturbed crystalline-silicon workload with roughly `n_atoms`
    /// atoms (the lattice builder rounds up to whole unit cells).
    pub fn new(n_atoms: usize) -> Self {
        let lattice = Lattice::silicon_with_atoms(n_atoms);
        let (sim_box, atoms) = lattice.build_perturbed(0.05, 2024);
        let neighbors =
            NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(3.0, 1.0));
        SiliconWorkload {
            sim_box,
            atoms,
            neighbors,
        }
    }

    /// Number of atoms actually generated.
    pub fn n_atoms(&self) -> usize {
        self.atoms.n_local
    }

    /// Run one force computation with the given potential, returning the
    /// output (for correctness cross-checks).
    pub fn compute(&self, potential: &mut dyn Potential) -> ComputeOutput {
        let mut out = ComputeOutput::zeros(self.atoms.n_total());
        potential.compute(&self.atoms, &self.sim_box, &self.neighbors, &mut out);
        out
    }

    /// Measure the wall-clock seconds per force evaluation for a potential,
    /// averaged over `reps` evaluations after one warm-up evaluation.
    pub fn time_kernel(&self, potential: &mut dyn Potential, reps: usize) -> f64 {
        let mut out = ComputeOutput::zeros(self.atoms.n_total());
        potential.compute(&self.atoms, &self.sim_box, &self.neighbors, &mut out);
        let start = Instant::now();
        for _ in 0..reps.max(1) {
            potential.compute(&self.atoms, &self.sim_box, &self.neighbors, &mut out);
        }
        start.elapsed().as_secs_f64() / reps.max(1) as f64
    }

    /// Measure seconds per force evaluation for one of the paper's execution
    /// modes (using the paper's default scheme/width for that mode).
    pub fn time_mode(&self, mode: ExecutionMode, reps: usize) -> f64 {
        self.time_mode_threads(mode, 1, reps)
    }

    /// Measure seconds per force evaluation for an execution mode through the
    /// thread-parallel force engine.
    pub fn time_mode_threads(&self, mode: ExecutionMode, threads: usize, reps: usize) -> f64 {
        let mut pot = make_potential(TersoffParams::silicon(), mode_options(mode, threads));
        self.time_kernel(pot.as_mut(), reps)
    }
}

/// The paper's default scheme/width for an execution mode, with the given
/// engine thread count.
pub fn mode_options(mode: ExecutionMode, threads: usize) -> TersoffOptions {
    let scheme = match mode {
        ExecutionMode::Ref => Scheme::Scalar,
        ExecutionMode::OptD => Scheme::JLanes,
        ExecutionMode::OptS | ExecutionMode::OptM => Scheme::FusedLanes,
    };
    TersoffOptions {
        mode,
        scheme,
        width: 0,
        threads,
        backend: None,
    }
}

/// Write a machine-readable benchmark report to `BENCH_<name>.json` in the
/// directory named by `BENCH_JSON_DIR` (default: current directory). The
/// `body` must already be valid JSON; this helper only frames and writes it.
pub fn write_bench_json(name: &str, body: &str) -> std::io::Result<String> {
    use std::io::Write as _;
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = format!("{dir}/BENCH_{name}.json");
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    Ok(path)
}

/// Convert seconds-per-step into the paper's ns/day metric (1 fs timestep).
pub fn ns_per_day(seconds_per_step: f64) -> f64 {
    units::ns_per_day(units::DEFAULT_TIMESTEP, seconds_per_step)
}

/// Print a standard figure header.
pub fn figure_header(figure: &str, caption: &str, workload: &str) {
    println!("==============================================================");
    println!("{figure}: {caption}");
    println!("workload: {workload}");
    println!("==============================================================");
}

/// Print one row of a paper-vs-reproduction table.
pub fn row(label: &str, paper: &str, repro: &str) {
    println!("{label:<28} {paper:>22} {repro:>22}");
}

/// Print the table header used by [`row`].
pub fn row_header() {
    println!(
        "{:<28} {:>22} {:>22}",
        "series", "paper", "this reproduction"
    );
    println!("{:-<74}", "");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_times() {
        let w = SiliconWorkload::new(64);
        assert!(w.n_atoms() >= 64);
        let t_ref = w.time_mode(ExecutionMode::Ref, 1);
        let t_opt = w.time_mode(ExecutionMode::OptM, 1);
        assert!(t_ref > 0.0 && t_opt > 0.0);
        assert!(ns_per_day(t_ref).is_finite());
    }

    #[test]
    fn compute_gives_bound_crystal() {
        let w = SiliconWorkload::new(64);
        let mut pot = make_potential(TersoffParams::silicon(), TersoffOptions::default());
        let out = w.compute(pot.as_mut());
        assert!(out.energy < 0.0);
    }
}
