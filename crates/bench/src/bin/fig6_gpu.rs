//! Figure 6: GPU offload on the Kepler nodes (K20X, K40), 256 000 atoms —
//! the LAMMPS GPU-package references (double/single/mixed), the KOKKOS
//! double-precision reference, and the paper's optimized Opt-KK-D, plus the
//! projected Opt-KK-S the paper expects at ≈5 ns/s.

use arch_model::cost::{CostModel, WorkloadShape};
use arch_model::machines::Machine;
use bench::figure_header;

fn main() {
    figure_header(
        "Figure 6",
        "offload to GPU: reference ports vs the optimized warp-scheme (1c) port",
        "256 000 Si atoms; projections from the cost model (Kepler occupancy model)",
    );
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(256_000);

    println!("{:<14} {:>10} {:>10}    note", "series", "K20X", "K40");
    println!("{:-<64}", "");
    let series: [(&str, bool, bool, &str); 5] = [
        ("Ref-GPU-D", false, false, "LAMMPS GPU package, double"),
        ("Ref-GPU-S", false, true, "LAMMPS GPU package, single"),
        (
            "Ref-GPU-M",
            false,
            true,
            "LAMMPS GPU package, mixed (≈single rate)",
        ),
        ("Ref-KK-D", false, false, "KOKKOS port, double"),
        ("Opt-KK-D", true, false, "this work: scheme 1c + warp votes"),
    ];
    let machines = [Machine::k20x(), Machine::k40()];
    for (label, optimized, single, note) in series {
        let vals: Vec<f64> = machines
            .iter()
            .map(|m| model.gpu_ns_per_day(m, optimized, single, &shape))
            .collect();
        println!(
            "{:<14} {:>10.3} {:>10.3}    {}",
            label, vals[0], vals[1], note
        );
    }
    let opt_s: Vec<f64> = machines
        .iter()
        .map(|m| model.gpu_ns_per_day(m, true, true, &shape))
        .collect();
    println!(
        "{:<14} {:>10.3} {:>10.3}    projected single-precision port (paper: ≈5 ns/s)",
        "Opt-KK-S*", opt_s[0], opt_s[1]
    );

    let speedup = model.gpu_ns_per_day(&machines[0], true, false, &shape)
        / model.gpu_ns_per_day(&machines[0], false, false, &shape);
    println!(
        "\nOpt-KK-D over Ref-KK-D (K20X): {speedup:.1}x  (paper: ≈3x end-to-end, ≈5x kernel-only)"
    );
}
