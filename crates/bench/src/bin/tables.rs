//! Regenerate Tables I, II and III of the paper: the hardware used in the
//! evaluation, as encoded in `arch-model`.

use arch_model::machines::Machine;

fn print_cpu_table(title: &str, machines: &[Machine]) {
    println!("{title}");
    println!(
        "{:<10} {:<26} {:>7} {:>10}  Vector ISA",
        "Name", "Processor", "Cores", "GHz"
    );
    println!("{:-<70}", "");
    for m in machines {
        println!(
            "{:<10} {:<26} {:>7} {:>10.2}  {}",
            m.name,
            m.cpu,
            m.cores,
            m.freq_ghz,
            m.isa.name()
        );
    }
    println!();
}

fn main() {
    print_cpu_table(
        "TABLE I: Hardware used for CPU benchmarks",
        &Machine::table1(),
    );

    println!("TABLE II: Hardware used for GPU benchmarks");
    println!(
        "{:<10} {:<22} {:>7} {:>6}  {:<22}",
        "Name", "CPU", "Cores", "ISA", "Accelerator"
    );
    println!("{:-<74}", "");
    for m in Machine::table2() {
        let acc = m.accelerator.unwrap();
        println!(
            "{:<10} {:<22} {:>7} {:>6}  {:<22}",
            m.name,
            m.cpu,
            m.cores,
            m.isa.name(),
            acc.name
        );
    }
    println!();

    println!("TABLE III: Hardware used in the evaluation of the Xeon Phi performance");
    println!(
        "{:<10} {:<22} {:>7} {:>8}  {:<26} {:>7} {:>8}",
        "Name", "CPU", "Cores", "ISA", "Accelerator", "Cores", "ISA"
    );
    println!("{:-<96}", "");
    for m in Machine::table3() {
        match m.accelerator {
            Some(acc) => println!(
                "{:<10} {:<22} {:>7} {:>8}  {:<26} {:>7} {:>8}",
                m.name,
                m.cpu,
                m.cores,
                m.isa.name(),
                format!("{} x{}", acc.name, acc.count),
                acc.cores * acc.count,
                acc.isa.name()
            ),
            None => println!(
                "{:<10} {:<22} {:>7} {:>8}  {:<26} {:>7} {:>8}",
                "KNL",
                "-",
                "-",
                "-",
                m.cpu,
                m.cores,
                m.isa.name()
            ),
        }
    }
}
