//! Figure 5: single-node execution, Ref vs Opt-M across threads.
//!
//! The paper's figure runs 512 000 Si atoms on all cores of WM / SB / HW /
//! HW2 / BW and annotates the Ref→Opt-M speedups 3.18×, 5.00×, 3.15×, 2.69×,
//! 2.95×. This reproduction measures the **real implementation** — the
//! thread-parallel force engine around the paper's default kernels — on the
//! host machine with a thread sweep, then prints the cost-model projection
//! for the paper's machines as context. Results are also written to
//! `BENCH_fig5_single_node.json` so later changes can track the trajectory.
//!
//! The default workload is a 6×6×6-cell (1728-atom) perturbed silicon
//! crystal so the binary finishes in seconds; pass a cell count to scale up
//! (e.g. `fig5_single_node 40` ≈ 512 000 atoms, the paper's size).

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::{figure_header, mode_options, row, row_header, write_bench_json, SiliconWorkload};
use md_core::lattice::Lattice;
use tersoff::driver::ExecutionMode;

fn main() {
    let cells: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
        .max(1);
    let n_atoms = Lattice::silicon([cells, cells, cells]).n_atoms();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The vektor implementation that will actually execute the dispatched
    // vector ops (VEKTOR_BACKEND override, else hardware detection).
    let executed_backend = mode_options(ExecutionMode::OptM, 1).resolved_backend();

    figure_header(
        "Figure 5",
        "single-node execution, Ref vs Opt-M, thread sweep (measured)",
        &format!(
            "{cells}x{cells}x{cells} cells = {n_atoms} perturbed Si atoms, \
             {parallelism} CPUs available, vektor backend: {executed_backend}"
        ),
    );

    let workload = SiliconWorkload::new(n_atoms);
    let reps = (200_000 / n_atoms).clamp(2, 20);
    let mut threads_axis = vec![1usize, 2, 4, 8, 16];
    threads_axis.retain(|&t| t == 1 || t <= 2 * parallelism);

    println!(
        "{:<8} {:>8} {:>14} {:>12} {:>14} {:>16}",
        "mode", "threads", "s/step", "ns/day", "scaling vs t1", "vs Ref same t"
    );
    println!("{:-<76}", "");

    let mut json_rows = String::new();
    let mut ref_times = Vec::new();
    for mode in [ExecutionMode::Ref, ExecutionMode::OptM] {
        let mut t1 = 0.0f64;
        for (axis_idx, &threads) in threads_axis.iter().enumerate() {
            let seconds = workload.time_mode_threads(mode, threads, reps);
            if threads == 1 {
                t1 = seconds;
            }
            if mode == ExecutionMode::Ref {
                ref_times.push(seconds);
            }
            let vs_ref = if mode == ExecutionMode::Ref {
                1.0
            } else {
                ref_times.get(axis_idx).copied().unwrap_or(f64::NAN) / seconds
            };
            println!(
                "{:<8} {:>8} {:>14.6} {:>12.3} {:>13.2}x {:>15.2}x",
                mode.label(),
                threads,
                seconds,
                bench::ns_per_day(seconds),
                t1 / seconds,
                vs_ref
            );
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            json_rows.push_str(&format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"seconds_per_step\": {:.9e}, \
                 \"ns_per_day\": {:.6}, \"speedup_vs_t1\": {:.6}, \"speedup_vs_ref\": {:.6}}}",
                mode.label(),
                threads,
                seconds,
                bench::ns_per_day(seconds),
                t1 / seconds,
                vs_ref
            ));
        }
    }

    let options_label = mode_options(ExecutionMode::OptM, 1).label();
    let body = format!(
        "{{\n  \"figure\": \"fig5_single_node\",\n  \"workload\": {{\"cells\": {cells}, \
         \"atoms\": {n_atoms}, \"perturbation\": 0.05}},\n  \"available_parallelism\": \
         {parallelism},\n  \"reps\": {reps},\n  \"opt_m_options\": \"{options_label}\",\n  \
         \"executed_backend\": \"{executed_backend}\",\n  \
         \"series\": [\n{json_rows}\n  ]\n}}\n"
    );
    match write_bench_json("fig5_single_node", &body) {
        Ok(path) => println!("\n(wrote {path})"),
        Err(e) => eprintln!("\nwarning: could not write JSON report: {e}"),
    }

    // Context: the analytic projection for the paper's machines at the
    // paper's 512 000-atom size (what this binary printed before the real
    // threaded implementation existed).
    println!("\ncost-model projection, 512 000 atoms (context):");
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(512_000);
    let paper_speedups = [
        ("WM", 3.18),
        ("SB", 5.00),
        ("HW", 3.15),
        ("HW2", 2.69),
        ("BW", 2.95),
    ];
    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>16}",
        "", "Ref ns/day", "Opt-M ns/day", "speedup (model)", "speedup (paper)"
    );
    println!("{:-<66}", "");
    for (name, paper) in paper_speedups {
        let m = Machine::by_name(name).unwrap();
        let reference = model.node_ns_per_day(&m, Mode::Ref, &shape);
        let optimized = model.node_ns_per_day(&m, Mode::OptM, &shape);
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>15.2}x {:>15.2}x",
            name,
            reference,
            optimized,
            optimized / reference,
            paper
        );
    }

    println!();
    row_header();
    row(
        "who wins",
        "Opt-M on every machine",
        "see measured table above",
    );
    row(
        "paper speedup range",
        "2.7x - 5.0x",
        "see measured table above",
    );
    println!("\nNote: measured scaling depends on the host's core count; on a single-CPU");
    println!("container the thread sweep shows engine overhead rather than speedup. The");
    println!("acceptance target (>= 2x at 4 threads) applies to hosts with >= 4 cores.");
}
