//! Figure 5: single-node execution, Ref vs Opt-M across threads.
//!
//! The paper's figure runs 512 000 Si atoms on all cores of WM / SB / HW /
//! HW2 / BW and annotates the Ref→Opt-M speedups 3.18×, 5.00×, 3.15×, 2.69×,
//! 2.95×. This reproduction measures the **real implementation** — the
//! thread-parallel force engine around the paper's default kernels — on the
//! host machine, then prints the cost-model projection for the paper's
//! machines as context. Results are also written to
//! `BENCH_fig5_single_node.json` so the `bench_diff` gate can track the
//! trajectory.
//!
//! The workload and the mode×threads sweep are declared by the committed
//! `scenarios/silicon_fig5.json` spec (embedded below; the same file
//! `tersoff-run` executes as a full simulation). This binary keeps the
//! historical fig5 semantics on top of that declaration: `seconds_per_step`
//! is the **force-kernel** evaluation time (averaged over reps, no
//! integration/neighbor cost), which is what the committed
//! `BENCH_baseline/` snapshot gates. Pass a cell count to scale up (e.g.
//! `fig5_single_node 40` ≈ 512 000 atoms, the paper's size).

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::{figure_header, row, row_header, write_bench_json, SiliconWorkload};
use lammps_tersoff_vector::scenario::{Scenario, Variant};
use md_core::neighbor::{NeighborList, NeighborSettings};
use std::collections::BTreeMap;
use tersoff::driver::ExecutionMode;

/// The spec is embedded so the binary runs from any working directory; the
/// file in `scenarios/` stays the single source of truth.
const SPEC: &str = include_str!("../../../../scenarios/silicon_fig5.json");

fn main() {
    let mut scenario = Scenario::from_json(SPEC).expect("embedded scenario is valid");
    if let Some(cells) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        let cells: usize = std::cmp::max(cells, 1);
        scenario.system.cells = [cells, cells, cells];
    }
    let cells = scenario.system.cells;
    let n_atoms = scenario.n_atoms();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The declared matrix, with the thread axis trimmed to what this host
    // can meaningfully exercise (same rule as before the scenario rewire).
    let matrix = scenario
        .matrix
        .clone()
        .expect("fig5 scenario declares a matrix");
    let modes = matrix.modes;
    let mut threads_axis = matrix.threads;
    threads_axis.retain(|&t| t == 1 || t <= 2 * parallelism);

    // The vektor implementation the kernels will execute (VEKTOR_BACKEND
    // override, else hardware detection — kernel-granularity dispatch, so
    // this holds in every build flavor), plus the build's own ISA level
    // for the report metadata.
    let executed_backend = scenario
        .options_for(Variant {
            mode: ExecutionMode::OptM,
            threads: 1,
        })
        .resolved_backend();
    let compiled_isa = vektor::dispatch::compiled_isa();
    let dispatch_granularity = vektor::dispatch::DISPATCH_GRANULARITY;

    figure_header(
        "Figure 5",
        "single-node execution, Ref vs Opt-M, thread sweep (measured)",
        &format!(
            "{}x{}x{} cells = {n_atoms} perturbed Si atoms, \
             {parallelism} CPUs available, vektor backend: {executed_backend} \
             ({dispatch_granularity}-granular dispatch, {compiled_isa} build)",
            cells[0], cells[1], cells[2]
        ),
    );

    // The measured workload is built from the scenario's own spec — lattice,
    // perturbation, seed, and a neighbor list with the declared parameter
    // set's cutoff and the declared skin — so the timed pair set and the
    // JSON metadata always describe the system that actually ran.
    let params = scenario.potential.params.params();
    let (sim_box, atoms) = scenario
        .system
        .lattice
        .lattice(scenario.system.cells, scenario.system.lattice_seed)
        .build_perturbed(scenario.system.perturbation, scenario.system.lattice_seed);
    let neighbors = NeighborList::build_binned(
        &atoms,
        &sim_box,
        NeighborSettings::new(params.max_cutoff, scenario.run.skin),
    );
    let workload = SiliconWorkload {
        sim_box,
        atoms,
        neighbors,
    };
    let reps = (200_000 / n_atoms).clamp(2, 20);

    println!(
        "{:<8} {:>8} {:>14} {:>12} {:>14} {:>16}",
        "mode", "threads", "s/step", "ns/day", "scaling vs t1", "vs Ref same t"
    );
    println!("{:-<76}", "");

    // Time the Ref rows first regardless of the declared mode order, so the
    // speedup_vs_ref column always has its denominator (keyed by thread
    // count, not axis position).
    let mut modes = modes;
    modes.sort_by_key(|&m| m != ExecutionMode::Ref);

    let mut json_rows = String::new();
    let mut ref_times: BTreeMap<usize, f64> = BTreeMap::new();
    for &mode in &modes {
        // Both speedup columns are optional: t1 is None until (and unless)
        // this mode's threads == 1 row has been measured, vs_ref is None
        // when the matrix omits Ref or this thread count. Missing values
        // print as "—" and their JSON fields are omitted — never NaN or a
        // bogus 0.0 flowing into the bench_diff gate.
        let mut t1: Option<f64> = None;
        for &threads in &threads_axis {
            let options = scenario.options_for(Variant { mode, threads });
            let mut pot = tersoff::driver::make_potential(params.clone(), options);
            let seconds = workload.time_kernel(pot.as_mut(), reps);
            if threads == 1 {
                t1 = Some(seconds);
            }
            if mode == ExecutionMode::Ref {
                ref_times.insert(threads, seconds);
            }
            let vs_t1 = t1.map(|t| t / seconds);
            let vs_ref = if mode == ExecutionMode::Ref {
                Some(1.0)
            } else {
                ref_times.get(&threads).map(|r| r / seconds)
            };
            let dash = |v: Option<f64>| v.map(|v| format!("{v:.2}x")).unwrap_or_else(|| "—".into());
            println!(
                "{:<8} {:>8} {:>14.6} {:>12.3} {:>14} {:>16}",
                mode.label(),
                threads,
                seconds,
                bench::ns_per_day(seconds),
                dash(vs_t1),
                dash(vs_ref)
            );
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            let opt_field = |name: &str, v: Option<f64>| {
                v.map(|v| format!(", \"{name}\": {v:.6}"))
                    .unwrap_or_default()
            };
            json_rows.push_str(&format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"seconds_per_step\": {:.9e}, \
                 \"ns_per_day\": {:.6}{}{}}}",
                mode.label(),
                threads,
                seconds,
                bench::ns_per_day(seconds),
                opt_field("speedup_vs_t1", vs_t1),
                opt_field("speedup_vs_ref", vs_ref)
            ));
        }
    }

    let options_label = scenario
        .options_for(Variant {
            mode: ExecutionMode::OptM,
            threads: 1,
        })
        .label();
    let body = format!(
        "{{\n  \"figure\": \"fig5_single_node\",\n  \"scenario\": \"{}\",\n  \
         \"workload\": {{\"cells\": [{}, {}, {}], \"atoms\": {n_atoms}, \"perturbation\": \
         {}}},\n  \"available_parallelism\": {parallelism},\n  \"reps\": {reps},\n  \
         \"opt_m_options\": \"{options_label}\",\n  \"executed_backend\": \
         \"{executed_backend}\",\n  \"dispatch_granularity\": \"{dispatch_granularity}\",\n  \
         \"compiled_isa\": \"{compiled_isa}\",\n  \"series\": [\n{json_rows}\n  ]\n}}\n",
        scenario.name, cells[0], cells[1], cells[2], scenario.system.perturbation
    );
    match write_bench_json("fig5_single_node", &body) {
        Ok(path) => println!("\n(wrote {path})"),
        Err(e) => eprintln!("\nwarning: could not write JSON report: {e}"),
    }

    // Context: the analytic projection for the paper's machines at the
    // paper's 512 000-atom size (what this binary printed before the real
    // threaded implementation existed).
    println!("\ncost-model projection, 512 000 atoms (context):");
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(512_000);
    let paper_speedups = [
        ("WM", 3.18),
        ("SB", 5.00),
        ("HW", 3.15),
        ("HW2", 2.69),
        ("BW", 2.95),
    ];
    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>16}",
        "", "Ref ns/day", "Opt-M ns/day", "speedup (model)", "speedup (paper)"
    );
    println!("{:-<66}", "");
    for (name, paper) in paper_speedups {
        let m = Machine::by_name(name).unwrap();
        let reference = model.node_ns_per_day(&m, Mode::Ref, &shape);
        let optimized = model.node_ns_per_day(&m, Mode::OptM, &shape);
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>15.2}x {:>15.2}x",
            name,
            reference,
            optimized,
            optimized / reference,
            paper
        );
    }

    println!();
    row_header();
    row(
        "who wins",
        "Opt-M on every machine",
        "see measured table above",
    );
    row(
        "paper speedup range",
        "2.7x - 5.0x",
        "see measured table above",
    );
    println!("\nNote: measured scaling depends on the host's core count; on a single-CPU");
    println!("container the thread sweep shows engine overhead rather than speedup. The");
    println!("acceptance target (>= 2x at 4 threads) applies to hosts with >= 4 cores.");
}
