//! Figure 5: single-node execution (all cores, MPI), Ref vs Opt-M, 512 000
//! atoms, across WM / SB / HW / HW2 / BW. The paper annotates the speedups
//! 3.18×, 5.00×, 3.15×, 2.69×, 2.95×.

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::{figure_header, row, row_header};

fn main() {
    figure_header(
        "Figure 5",
        "single-node execution, Ref vs Opt-M (512 000 Si atoms)",
        "projected from the cost model; paper speedup labels shown for comparison",
    );
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(512_000);
    let paper_speedups = [
        ("WM", 3.18),
        ("SB", 5.00),
        ("HW", 3.15),
        ("HW2", 2.69),
        ("BW", 2.95),
    ];

    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>16}",
        "", "Ref ns/day", "Opt-M ns/day", "speedup (repro)", "speedup (paper)"
    );
    println!("{:-<66}", "");
    for (name, paper) in paper_speedups {
        let m = Machine::by_name(name).unwrap();
        let reference = model.node_ns_per_day(&m, Mode::Ref, &shape);
        let optimized = model.node_ns_per_day(&m, Mode::OptM, &shape);
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>15.2}x {:>15.2}x",
            name,
            reference,
            optimized,
            optimized / reference,
            paper
        );
    }

    println!();
    row_header();
    row("communication share", "5% – 30% of runtime", "modeled at 6% of Ref step");
    row("who wins", "Opt-M on every machine", "Opt-M on every machine");
    row("range of speedups", "2.7x – 5.0x", "see column above");
    println!("\nNote: the reproduction's SB value differs most from the paper because the");
    println!("paper's 5.00x on SB partly reflects poor Ref scaling on that node, which a");
    println!("throughput-only model does not capture (documented in EXPERIMENTS.md).");
}
