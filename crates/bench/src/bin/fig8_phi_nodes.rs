//! Figure 8: performance of Xeon-Phi-augmented nodes (host + accelerator
//! sharing the work through the offload path), Opt-M, 512 000 atoms:
//! SB+KNC, HW+KNC, IV+2KNC and the self-hosted KNL.

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::figure_header;

fn main() {
    figure_header(
        "Figure 8",
        "Xeon Phi node performance (Opt-M), host + accelerator offload",
        "512 000 Si atoms; projections from the cost model",
    );
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(512_000);

    println!("{:<10} {:>14}   composition", "node", "Opt-M ns/day");
    println!("{:-<64}", "");
    let mut values = Vec::new();
    for m in Machine::table3() {
        let ns = model.accelerated_node_ns_per_day(&m, Mode::OptM, &shape);
        values.push((m.name, ns));
        let composition = match m.accelerator {
            Some(acc) => format!("{} + {}x {}", m.cpu, acc.count, acc.name),
            None => format!("{} (self-hosted)", m.cpu),
        };
        println!("{:<10} {:>14.3}   {}", m.name, ns, composition);
    }

    println!("\nshape checks against the paper:");
    let get = |n: &str| values.iter().find(|(name, _)| *name == n).unwrap().1;
    let checks = [
        (
            "a single KNC node beats the CPU-only SB node",
            get("SB+KNC") > model.node_ns_per_day(&Machine::sandy_bridge(), Mode::OptM, &shape),
        ),
        (
            "adding a second KNC improves the IV node",
            get("IV+2KNC") > get("SB+KNC"),
        ),
        ("KNL beats IV+2KNC", get("KNL") > get("IV+2KNC")),
    ];
    for (label, ok) in checks {
        println!("  [{}] {}", if ok { "ok" } else { "MISMATCH" }, label);
    }
}
