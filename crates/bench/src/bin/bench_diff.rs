//! Benchmark regression gate: compare a fresh `BENCH_fig5_single_node.json`
//! against a committed baseline snapshot and fail on significant
//! slowdowns.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--fail-pct 15] [--warn-pct 5]
//!            [--metric seconds_per_step] [--update] [--strict]
//! ```
//!
//! For every `(mode, threads)` series entry present in the baseline, the
//! chosen metric is compared: a regression (current slower) above
//! `--fail-pct` fails the run (exit code 1), above `--warn-pct` prints a
//! warning. A markdown summary table goes to stdout so CI can paste it into
//! the job log / step summary. `--update` rewrites the baseline from the
//! current file instead of comparing (for refreshing the snapshot after an
//! intentional performance change).
//!
//! The parser below is a deliberately small hand-rolled JSON reader — the
//! offline build has no serde_json, and the input grammar is produced by
//! this repository's own benchmark binaries.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (numbers as f64 — ample for benchmark reports).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        // \uXXXX and exotic escapes do not occur in our
                        // benchmark reports; reject loudly rather than
                        // silently mangling.
                        other => {
                            return Err(
                                self.error(&format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(b) => {
                    // Collect the full UTF-8 code point.
                    let start = self.pos;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let end = (start + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// The diff
// ---------------------------------------------------------------------------

/// The metric value of every `(mode, threads)` series entry in a fig5
/// report, keyed for deterministic iteration order.
fn series_metrics(report: &Json, metric: &str) -> Result<BTreeMap<(String, u64), f64>, String> {
    let series = report
        .get("series")
        .and_then(|s| s.as_arr())
        .ok_or("report has no \"series\" array")?;
    let mut out = BTreeMap::new();
    for entry in series {
        let mode = entry
            .get("mode")
            .and_then(|m| m.as_str())
            .ok_or("series entry without \"mode\"")?
            .to_string();
        let threads = entry
            .get("threads")
            .and_then(|t| t.as_f64())
            .ok_or("series entry without \"threads\"")? as u64;
        let value = entry
            .get(metric)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("series entry without \"{metric}\""))?;
        out.insert((mode, threads), value);
    }
    Ok(out)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

struct Args {
    baseline: String,
    current: String,
    fail_pct: f64,
    warn_pct: f64,
    metric: String,
    update: bool,
    strict: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <current.json> \
         [--fail-pct 15] [--warn-pct 5] [--metric seconds_per_step] [--update] [--strict]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut fail_pct = 15.0;
    let mut warn_pct = 5.0;
    let mut metric = "seconds_per_step".to_string();
    let mut update = false;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-pct" => {
                fail_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warn-pct" => {
                warn_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--metric" => metric = args.next().unwrap_or_else(|| usage()),
            "--update" => update = true,
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    Args {
        baseline: positional.remove(0),
        current: positional.remove(0),
        fail_pct,
        warn_pct,
        metric,
        update,
        strict,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.update {
        match std::fs::copy(&args.current, &args.baseline) {
            Ok(_) => {
                println!("baseline {} updated from {}", args.baseline, args.current);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("bench_diff: cannot update baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (base_metrics, cur_metrics) = match (
        series_metrics(&baseline, &args.metric),
        series_metrics(&current, &args.metric),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let backend = |r: &Json| {
        r.get("executed_backend")
            .and_then(|b| b.as_str())
            .unwrap_or("unknown")
            .to_string()
    };
    let parallelism = |r: &Json| {
        r.get("available_parallelism")
            .and_then(|p| p.as_f64())
            .unwrap_or(0.0) as u64
    };
    // Absolute timings only gate when the baseline's host fingerprint
    // (executed vektor backend + CPU count) matches the current run;
    // otherwise regressions are reported but demoted to warnings, because a
    // committed baseline from a different machine class says nothing about
    // this commit. `--strict` restores hard failing regardless.
    let host_match =
        backend(&baseline) == backend(&current) && parallelism(&baseline) == parallelism(&current);
    let gating = host_match || args.strict;
    println!(
        "## Bench regression gate: `{}` (fail > {:.0}%, warn > {:.0}%)\n",
        args.metric, args.fail_pct, args.warn_pct
    );
    println!(
        "baseline: `{}` backend, {} CPUs · current: `{}` backend, {} CPUs{}\n",
        backend(&baseline),
        parallelism(&baseline),
        backend(&current),
        parallelism(&current),
        if gating {
            ""
        } else {
            " · **host mismatch — regressions reported but not gating** \
             (refresh the baseline on this machine class with `--update`, \
             or pass `--strict` to gate anyway)"
        }
    );
    println!("| mode | threads | baseline | current | Δ | status |");
    println!("|------|---------|----------|---------|----|--------|");

    // For time-like metrics larger is worse; for speedups larger is better.
    let larger_is_worse = !args.metric.starts_with("speedup") && args.metric != "ns_per_day";

    let mut failures = 0usize;
    let mut warnings = 0usize;
    for ((mode, threads), base_value) in &base_metrics {
        let row = |cur: String, delta: String, status: &str| {
            println!("| {mode} | {threads} | {base_value:.3e} | {cur} | {delta} | {status} |");
        };
        match cur_metrics.get(&(mode.clone(), *threads)) {
            None => {
                // A baseline series that vanished (renamed mode, dropped
                // thread count) must fail, or the gate silently disarms.
                row("—".into(), "—".into(), "✗ missing in current");
                failures += 1;
            }
            Some(cur_value) => {
                let change = cur_value / base_value - 1.0;
                let regression_pct = if larger_is_worse { change } else { -change } * 100.0;
                let status = if regression_pct > args.fail_pct {
                    failures += 1;
                    "✗ regression"
                } else if regression_pct > args.warn_pct {
                    warnings += 1;
                    "⚠ slower"
                } else if regression_pct < -args.warn_pct {
                    "✓ improved"
                } else {
                    "✓ ok"
                };
                row(
                    format!("{cur_value:.3e}"),
                    format!("{:+.1}%", change * 100.0),
                    status,
                );
            }
        }
    }
    for key in cur_metrics.keys() {
        if !base_metrics.contains_key(key) {
            println!("| {} | {} | — | — | — | new (no baseline) |", key.0, key.1);
        }
    }

    println!(
        "\n{} series compared: {failures} failing, {warnings} warnings.",
        base_metrics.len()
    );
    if failures > 0 && gating {
        eprintln!(
            "bench_diff: {failures} series regressed more than {:.0}% — failing the gate",
            args.fail_pct
        );
        ExitCode::FAILURE
    } else {
        if failures > 0 {
            eprintln!(
                "bench_diff: {failures} series regressed more than {:.0}% but the baseline \
                 was recorded on a different host class — not failing",
                args.fail_pct
            );
        }
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig5_shaped_json() {
        let text = r#"{
          "figure": "fig5_single_node",
          "executed_backend": "avx2",
          "series": [
            {"mode": "Ref", "threads": 1, "seconds_per_step": 1.5e-3},
            {"mode": "Opt-M", "threads": 2, "seconds_per_step": 0.5e-3}
          ]
        }"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("executed_backend").unwrap().as_str(), Some("avx2"));
        let m = series_metrics(&v, "seconds_per_step").unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[&("Ref".to_string(), 1)] - 1.5e-3).abs() < 1e-12);
        assert!((m[&("Opt-M".to_string(), 2)] - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_literals() {
        let v =
            parse_json(r#"{"a": [1, -2.5e2, true, false, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[5].as_str(), Some("x\n\"y\""));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1,] trailing").is_err());
    }

    #[test]
    fn missing_series_is_an_error() {
        let v = parse_json(r#"{"figure": "x"}"#).unwrap();
        assert!(series_metrics(&v, "seconds_per_step").is_err());
    }
}
