//! Benchmark regression gate: compare a fresh `BENCH_fig5_single_node.json`
//! against a committed baseline snapshot and fail on significant
//! slowdowns.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--fail-pct 15] [--warn-pct 5]
//!            [--metric seconds_per_step] [--update] [--strict]
//! ```
//!
//! For every `(mode, threads)` series entry present in the baseline, the
//! chosen metric is compared: a regression (current slower) above
//! `--fail-pct` fails the run (exit code 1), above `--warn-pct` prints a
//! warning. A markdown summary table goes to stdout so CI can paste it into
//! the job log / step summary. `--update` rewrites the baseline from the
//! current file instead of comparing (for refreshing the snapshot after an
//! intentional performance change).
//!
//! JSON is read through `lammps_tersoff_vector::json` — the workspace's one
//! hand-rolled reader (the offline build has no serde_json; the input
//! grammar is produced by this repository's own benchmark binaries).

use lammps_tersoff_vector::json::{parse as parse_json, Json};
use std::collections::BTreeMap;
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// The diff
// ---------------------------------------------------------------------------

/// The metric value of every `(mode, threads)` series entry in a fig5
/// report, keyed for deterministic iteration order.
fn series_metrics(report: &Json, metric: &str) -> Result<BTreeMap<(String, u64), f64>, String> {
    let series = report
        .get("series")
        .and_then(|s| s.as_arr())
        .ok_or("report has no \"series\" array")?;
    let mut out = BTreeMap::new();
    for entry in series {
        let mode = entry
            .get("mode")
            .and_then(|m| m.as_str())
            .ok_or("series entry without \"mode\"")?
            .to_string();
        let threads = entry
            .get("threads")
            .and_then(|t| t.as_f64())
            .ok_or("series entry without \"threads\"")? as u64;
        let value = entry
            .get(metric)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("series entry without \"{metric}\""))?;
        out.insert((mode, threads), value);
    }
    Ok(out)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

struct Args {
    baseline: String,
    current: String,
    fail_pct: f64,
    warn_pct: f64,
    metric: String,
    update: bool,
    strict: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <current.json> \
         [--fail-pct 15] [--warn-pct 5] [--metric seconds_per_step] [--update] [--strict]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut fail_pct = 15.0;
    let mut warn_pct = 5.0;
    let mut metric = "seconds_per_step".to_string();
    let mut update = false;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-pct" => {
                fail_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warn-pct" => {
                warn_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--metric" => metric = args.next().unwrap_or_else(|| usage()),
            "--update" => update = true,
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    Args {
        baseline: positional.remove(0),
        current: positional.remove(0),
        fail_pct,
        warn_pct,
        metric,
        update,
        strict,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.update {
        match std::fs::copy(&args.current, &args.baseline) {
            Ok(_) => {
                println!("baseline {} updated from {}", args.baseline, args.current);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("bench_diff: cannot update baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (base_metrics, cur_metrics) = match (
        series_metrics(&baseline, &args.metric),
        series_metrics(&current, &args.metric),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let backend = |r: &Json| {
        r.get("executed_backend")
            .and_then(|b| b.as_str())
            .unwrap_or("unknown")
            .to_string()
    };
    let parallelism = |r: &Json| {
        r.get("available_parallelism")
            .and_then(|p| p.as_f64())
            .unwrap_or(0.0) as u64
    };
    // Absolute timings only gate when the baseline's host fingerprint
    // (executed vektor backend + CPU count) matches the current run;
    // otherwise regressions are reported but demoted to warnings, because a
    // committed baseline from a different machine class says nothing about
    // this commit. `--strict` restores hard failing regardless.
    let host_match =
        backend(&baseline) == backend(&current) && parallelism(&baseline) == parallelism(&current);
    let gating = host_match || args.strict;
    println!(
        "## Bench regression gate: `{}` (fail > {:.0}%, warn > {:.0}%)\n",
        args.metric, args.fail_pct, args.warn_pct
    );
    println!(
        "baseline: `{}` backend, {} CPUs · current: `{}` backend, {} CPUs{}\n",
        backend(&baseline),
        parallelism(&baseline),
        backend(&current),
        parallelism(&current),
        if gating {
            ""
        } else {
            " · **host mismatch — regressions reported but not gating** \
             (refresh the baseline on this machine class with `--update`, \
             or pass `--strict` to gate anyway)"
        }
    );
    println!("| mode | threads | baseline | current | Δ | status |");
    println!("|------|---------|----------|---------|----|--------|");

    // For time-like metrics larger is worse; for speedups larger is better.
    let larger_is_worse = !args.metric.starts_with("speedup") && args.metric != "ns_per_day";

    let mut failures = 0usize;
    let mut warnings = 0usize;
    for ((mode, threads), base_value) in &base_metrics {
        let row = |cur: String, delta: String, status: &str| {
            println!("| {mode} | {threads} | {base_value:.3e} | {cur} | {delta} | {status} |");
        };
        match cur_metrics.get(&(mode.clone(), *threads)) {
            None => {
                // A baseline series that vanished (renamed mode, dropped
                // thread count) must fail, or the gate silently disarms.
                row("—".into(), "—".into(), "✗ missing in current");
                failures += 1;
            }
            Some(cur_value) => {
                let change = cur_value / base_value - 1.0;
                let regression_pct = if larger_is_worse { change } else { -change } * 100.0;
                let status = if regression_pct > args.fail_pct {
                    failures += 1;
                    "✗ regression"
                } else if regression_pct > args.warn_pct {
                    warnings += 1;
                    "⚠ slower"
                } else if regression_pct < -args.warn_pct {
                    "✓ improved"
                } else {
                    "✓ ok"
                };
                row(
                    format!("{cur_value:.3e}"),
                    format!("{:+.1}%", change * 100.0),
                    status,
                );
            }
        }
    }
    for key in cur_metrics.keys() {
        if !base_metrics.contains_key(key) {
            println!("| {} | {} | — | — | — | new (no baseline) |", key.0, key.1);
        }
    }

    println!(
        "\n{} series compared: {failures} failing, {warnings} warnings.",
        base_metrics.len()
    );
    if failures > 0 && gating {
        eprintln!(
            "bench_diff: {failures} series regressed more than {:.0}% — failing the gate",
            args.fail_pct
        );
        ExitCode::FAILURE
    } else {
        if failures > 0 {
            eprintln!(
                "bench_diff: {failures} series regressed more than {:.0}% but the baseline \
                 was recorded on a different host class — not failing",
                args.fail_pct
            );
        }
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig5_shaped_json() {
        let text = r#"{
          "figure": "fig5_single_node",
          "executed_backend": "avx2",
          "series": [
            {"mode": "Ref", "threads": 1, "seconds_per_step": 1.5e-3},
            {"mode": "Opt-M", "threads": 2, "seconds_per_step": 0.5e-3}
          ]
        }"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("executed_backend").unwrap().as_str(), Some("avx2"));
        let m = series_metrics(&v, "seconds_per_step").unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[&("Ref".to_string(), 1)] - 1.5e-3).abs() < 1e-12);
        assert!((m[&("Opt-M".to_string(), 2)] - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_literals() {
        let v =
            parse_json(r#"{"a": [1, -2.5e2, true, false, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[5].as_str(), Some("x\n\"y\""));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1,] trailing").is_err());
    }

    #[test]
    fn missing_series_is_an_error() {
        let v = parse_json(r#"{"figure": "x"}"#).unwrap();
        assert!(series_metrics(&v, "seconds_per_step").is_err());
    }
}
