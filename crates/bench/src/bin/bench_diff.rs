//! Benchmark regression gate: compare fresh benchmark reports against
//! committed baseline snapshots and fail on significant slowdowns.
//!
//! Two modes:
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [flags]          # one report
//! bench_diff --scenarios <baseline-dir> <current-dir> [flags]  # every BENCH_scenario_*.json
//! ```
//!
//! Flags: `[--fail-pct 15] [--warn-pct 5] [--metric seconds_per_step]
//! [--update] [--strict]`.
//!
//! For every `(mode, threads)` series entry present in the baseline, the
//! chosen metric is compared: a regression (current slower) above
//! `--fail-pct` fails the run (exit code 1), above `--warn-pct` prints a
//! warning. A markdown summary table goes to stdout so CI can paste it into
//! the job log / step summary. `--update` rewrites the baseline from the
//! current file(s) instead of comparing (for refreshing snapshots after an
//! intentional performance change).
//!
//! `--scenarios` gates the reports `tersoff-run` writes the same way fig5 is
//! gated: each `BENCH_scenario_<name>.json` in `<current-dir>` is compared
//! against `<baseline-dir>/scenario_<name>.json`. A scenario without a
//! baseline is reported (not failing — run `--update` to adopt it); a
//! baseline whose scenario vanished from the current run fails, so the gate
//! cannot silently disarm. Absolute timings only hard-fail when the
//! baseline's host fingerprint (executed vektor backend + CPU count) matches
//! the current run, exactly as in single-report mode.
//!
//! JSON is read through `lammps_tersoff_vector::json` — the workspace's one
//! hand-rolled reader (the offline build has no serde_json; the input
//! grammar is produced by this repository's own benchmark binaries).

use lammps_tersoff_vector::json::{parse as parse_json, Json};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

// ---------------------------------------------------------------------------
// The diff
// ---------------------------------------------------------------------------

/// The metric value of every `(mode, threads)` series entry in a report,
/// keyed for deterministic iteration order.
fn series_metrics(report: &Json, metric: &str) -> Result<BTreeMap<(String, u64), f64>, String> {
    let series = report
        .get("series")
        .and_then(|s| s.as_arr())
        .ok_or("report has no \"series\" array")?;
    let mut out = BTreeMap::new();
    for entry in series {
        // Variants that diverged / panicked / timed out carry a status but
        // no metrics; they are reported by `tersoff-run`'s exit code, not
        // by the perf gate, so skip them here.
        if let Some(status) = entry.get("status").and_then(|s| s.as_str()) {
            if status != "ok" {
                continue;
            }
        }
        let mode = entry
            .get("mode")
            .and_then(|m| m.as_str())
            .ok_or("series entry without \"mode\"")?
            .to_string();
        let threads = entry
            .get("threads")
            .and_then(|t| t.as_f64())
            .ok_or("series entry without \"threads\"")? as u64;
        let value = entry
            .get(metric)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("series entry without \"{metric}\""))?;
        out.insert((mode, threads), value);
    }
    Ok(out)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn backend(r: &Json) -> String {
    r.get("executed_backend")
        .and_then(|b| b.as_str())
        .unwrap_or("unknown")
        .to_string()
}

/// `executed_backend` extended with the dispatch granularity and the
/// build's compiled ISA when the report records them (reports written
/// since kernel-granularity dispatch do), e.g. `avx2 (kernel-granular,
/// baseline build)`.
fn backend_detail(r: &Json) -> String {
    let mut detail = backend(r);
    let granularity = r.get("dispatch_granularity").and_then(|g| g.as_str());
    let compiled = r.get("compiled_isa").and_then(|c| c.as_str());
    if granularity.is_some() || compiled.is_some() {
        let mut notes = Vec::new();
        if let Some(g) = granularity {
            notes.push(format!("{g}-granular"));
        }
        if let Some(c) = compiled {
            notes.push(format!("{c} build"));
        }
        detail.push_str(&format!(" ({})", notes.join(", ")));
    }
    detail
}

fn parallelism(r: &Json) -> u64 {
    r.get("available_parallelism")
        .and_then(|p| p.as_f64())
        .unwrap_or(0.0) as u64
}

/// Compare one baseline report against one current report, printing the
/// markdown table. Returns `(failures, warnings)`; failures only count when
/// the gate is armed (host fingerprints match, or `--strict`).
/// Direction of regression for a metric: time-like metrics regress when
/// they grow; rate-like metrics (speedups, ns/day, the throughput gate's
/// `*_per_hour` rates) regress when they shrink.
fn larger_is_worse(metric: &str) -> bool {
    !metric.starts_with("speedup") && metric != "ns_per_day" && !metric.ends_with("_per_hour")
}

fn compare_reports(baseline: &Json, current: &Json, args: &Args) -> Result<(usize, usize), String> {
    let base_metrics = series_metrics(baseline, &args.metric)?;
    let cur_metrics = series_metrics(current, &args.metric)?;

    // Absolute timings only gate when the baseline's host fingerprint
    // (executed vektor backend + CPU count) matches the current run;
    // otherwise regressions are reported but demoted to warnings, because a
    // committed baseline from a different machine class says nothing about
    // this commit. `--strict` restores hard failing regardless.
    let host_match =
        backend(baseline) == backend(current) && parallelism(baseline) == parallelism(current);
    let gating = host_match || args.strict;
    println!(
        "baseline: `{}` backend, {} CPUs · current: `{}` backend, {} CPUs{}\n",
        backend_detail(baseline),
        parallelism(baseline),
        backend_detail(current),
        parallelism(current),
        if gating {
            ""
        } else {
            " · **host mismatch — regressions reported but not gating** \
             (refresh the baseline on this machine class with `--update`, \
             or pass `--strict` to gate anyway)"
        }
    );
    println!("| mode | threads | baseline | current | Δ | status |");
    println!("|------|---------|----------|---------|----|--------|");

    let larger_is_worse = larger_is_worse(&args.metric);

    let mut failures = 0usize;
    let mut warnings = 0usize;
    for ((mode, threads), base_value) in &base_metrics {
        let row = |cur: String, delta: String, status: &str| {
            println!("| {mode} | {threads} | {base_value:.3e} | {cur} | {delta} | {status} |");
        };
        match cur_metrics.get(&(mode.clone(), *threads)) {
            None => {
                // A baseline series that vanished (renamed mode, dropped
                // thread count) must fail, or the gate silently disarms.
                row("—".into(), "—".into(), "✗ missing in current");
                failures += 1;
            }
            Some(cur_value) => {
                let change = cur_value / base_value - 1.0;
                let regression_pct = if larger_is_worse { change } else { -change } * 100.0;
                let status = if regression_pct > args.fail_pct {
                    failures += 1;
                    "✗ regression"
                } else if regression_pct > args.warn_pct {
                    warnings += 1;
                    "⚠ slower"
                } else if regression_pct < -args.warn_pct {
                    "✓ improved"
                } else {
                    "✓ ok"
                };
                row(
                    format!("{cur_value:.3e}"),
                    format!("{:+.1}%", change * 100.0),
                    status,
                );
            }
        }
    }
    for key in cur_metrics.keys() {
        if !base_metrics.contains_key(key) {
            println!("| {} | {} | — | — | — | new (no baseline) |", key.0, key.1);
        }
    }

    println!(
        "\n{} series compared: {failures} failing, {warnings} warnings.",
        base_metrics.len()
    );
    if !gating {
        if failures > 0 {
            eprintln!(
                "bench_diff: {failures} series regressed more than {:.0}% but the baseline \
                 was recorded on a different host class — not failing",
                args.fail_pct
            );
        }
        failures = 0;
    }
    Ok((failures, warnings))
}

// ---------------------------------------------------------------------------
// Scenario-directory mode
// ---------------------------------------------------------------------------

/// `BENCH_scenario_*.json` files in `dir`, sorted by name.
fn scenario_reports(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_scenario_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// The committed-baseline file for a current `BENCH_scenario_<name>.json`:
/// `<baseline-dir>/scenario_<name>.json` (the `BENCH_` prefix marks
/// generated output; baselines drop it like `fig5_single_node.json` does).
fn baseline_for(current: &Path, baseline_dir: &Path) -> PathBuf {
    let name = current
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default()
        .trim_start_matches("BENCH_")
        .to_string();
    baseline_dir.join(name)
}

fn run_scenarios_mode(args: &Args) -> ExitCode {
    let baseline_dir = Path::new(&args.baseline);
    let current_dir = Path::new(&args.current);
    let current = match scenario_reports(current_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    if current.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_scenario_*.json in {} (run tersoff-run first)",
            current_dir.display()
        );
        return ExitCode::FAILURE;
    }

    if args.update {
        for cur in &current {
            let base = baseline_for(cur, baseline_dir);
            match std::fs::copy(cur, &base) {
                Ok(_) => println!("baseline {} updated from {}", base.display(), cur.display()),
                Err(e) => {
                    eprintln!("bench_diff: cannot update {}: {e}", base.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    println!(
        "## Scenario bench gate: `{}` (fail > {:.0}%, warn > {:.0}%)\n",
        args.metric, args.fail_pct, args.warn_pct
    );
    let mut failures = 0usize;
    let mut warnings = 0usize;
    let mut compared: Vec<PathBuf> = Vec::new();
    for cur in &current {
        let base = baseline_for(cur, baseline_dir);
        println!("### {}\n", cur.display());
        if !base.exists() {
            println!(
                "no committed baseline ({}) — skipping (adopt with `--update`)\n",
                base.display()
            );
            warnings += 1;
            continue;
        }
        compared.push(base.clone());
        let result = load(&base.display().to_string())
            .and_then(|b| load(&cur.display().to_string()).map(|c| (b, c)))
            .and_then(|(b, c)| compare_reports(&b, &c, args));
        match result {
            Ok((f, w)) => {
                failures += f;
                warnings += w;
            }
            Err(e) => {
                eprintln!("bench_diff: {e}");
                failures += 1;
            }
        }
        println!();
    }
    // A committed baseline whose scenario no longer produces a report must
    // fail, or deleting a spec silently disarms its gate.
    if let Ok(entries) = std::fs::read_dir(baseline_dir) {
        for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            let is_scenario_baseline = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("scenario_") && n.ends_with(".json"));
            if is_scenario_baseline && !compared.contains(&path) {
                eprintln!(
                    "bench_diff: baseline {} has no current report — \
                     did the scenario (or its run) disappear?",
                    path.display()
                );
                failures += 1;
            }
        }
    }

    println!(
        "{} scenario report(s): {failures} failing, {warnings} warnings.",
        current.len()
    );
    if failures > 0 {
        eprintln!("bench_diff: scenario gate failing");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

struct Args {
    baseline: String,
    current: String,
    fail_pct: f64,
    warn_pct: f64,
    metric: String,
    update: bool,
    strict: bool,
    scenarios: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <current.json> \
         [--fail-pct 15] [--warn-pct 5] [--metric seconds_per_step] [--update] [--strict]\n\
         \x20      bench_diff --scenarios <baseline-dir> <current-dir> [same flags]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut fail_pct = 15.0;
    let mut warn_pct = 5.0;
    let mut metric = "seconds_per_step".to_string();
    let mut update = false;
    let mut strict = false;
    let mut scenarios = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-pct" => {
                fail_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--warn-pct" => {
                warn_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--metric" => metric = args.next().unwrap_or_else(|| usage()),
            "--update" => update = true,
            "--strict" => strict = true,
            "--scenarios" => scenarios = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    Args {
        baseline: positional.remove(0),
        current: positional.remove(0),
        fail_pct,
        warn_pct,
        metric,
        update,
        strict,
        scenarios,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.scenarios {
        return run_scenarios_mode(&args);
    }

    if args.update {
        match std::fs::copy(&args.current, &args.baseline) {
            Ok(_) => {
                println!("baseline {} updated from {}", args.baseline, args.current);
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("bench_diff: cannot update baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "## Bench regression gate: `{}` (fail > {:.0}%, warn > {:.0}%)\n",
        args.metric, args.fail_pct, args.warn_pct
    );
    match compare_reports(&baseline, &current, &args) {
        Ok((failures, _warnings)) if failures > 0 => {
            eprintln!(
                "bench_diff: {failures} series regressed more than {:.0}% — failing the gate",
                args.fail_pct
            );
            ExitCode::FAILURE
        }
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig5_shaped_json() {
        let text = r#"{
          "figure": "fig5_single_node",
          "executed_backend": "avx2",
          "series": [
            {"mode": "Ref", "threads": 1, "seconds_per_step": 1.5e-3},
            {"mode": "Opt-M", "threads": 2, "seconds_per_step": 0.5e-3}
          ]
        }"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("executed_backend").unwrap().as_str(), Some("avx2"));
        let m = series_metrics(&v, "seconds_per_step").unwrap();
        assert_eq!(m.len(), 2);
        assert!((m[&("Ref".to_string(), 1)] - 1.5e-3).abs() < 1e-12);
        assert!((m[&("Opt-M".to_string(), 2)] - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_literals() {
        let v =
            parse_json(r#"{"a": [1, -2.5e2, true, false, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[1].as_f64(), Some(-250.0));
        assert_eq!(arr[5].as_str(), Some("x\n\"y\""));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1,] trailing").is_err());
    }

    #[test]
    fn regression_direction_follows_the_metric() {
        // Time-like: growing is a regression.
        assert!(larger_is_worse("seconds_per_step"));
        assert!(larger_is_worse("seconds_per_scenario"));
        assert!(larger_is_worse("max_drift"));
        // Rate-like: shrinking is a regression.
        assert!(!larger_is_worse("speedup_vs_ref"));
        assert!(!larger_is_worse("ns_per_day"));
        assert!(!larger_is_worse("scenarios_per_hour"));
        assert!(!larger_is_worse("variants_per_hour"));
    }

    #[test]
    fn missing_series_is_an_error() {
        let v = parse_json(r#"{"figure": "x"}"#).unwrap();
        assert!(series_metrics(&v, "seconds_per_step").is_err());
    }

    #[test]
    fn baseline_path_drops_the_bench_prefix() {
        let base = baseline_for(
            Path::new("out/BENCH_scenario_silicon_fig5.json"),
            Path::new("BENCH_baseline"),
        );
        assert_eq!(base, Path::new("BENCH_baseline/scenario_silicon_fig5.json"));
    }

    #[test]
    fn compare_reports_gates_on_matching_hosts_only() {
        let args = Args {
            baseline: String::new(),
            current: String::new(),
            fail_pct: 15.0,
            warn_pct: 5.0,
            metric: "seconds_per_step".into(),
            update: false,
            strict: false,
            scenarios: false,
        };
        let base = parse_json(
            r#"{"executed_backend": "portable", "available_parallelism": 1,
                "series": [{"mode": "Ref", "threads": 1, "seconds_per_step": 1.0e-3}]}"#,
        )
        .unwrap();
        let slower_same_host = parse_json(
            r#"{"executed_backend": "portable", "available_parallelism": 1,
                "series": [{"mode": "Ref", "threads": 1, "seconds_per_step": 2.0e-3}]}"#,
        )
        .unwrap();
        let (failures, _) = compare_reports(&base, &slower_same_host, &args).unwrap();
        assert_eq!(failures, 1, "2x slowdown on a matching host must fail");

        let slower_other_host = parse_json(
            r#"{"executed_backend": "avx2", "available_parallelism": 8,
                "series": [{"mode": "Ref", "threads": 1, "seconds_per_step": 2.0e-3}]}"#,
        )
        .unwrap();
        let (failures, _) = compare_reports(&base, &slower_other_host, &args).unwrap();
        assert_eq!(failures, 0, "host mismatch demotes to warnings");

        let strict = Args {
            strict: true,
            ..args
        };
        let (failures, _) = compare_reports(&base, &slower_other_host, &strict).unwrap();
        assert_eq!(failures, 1, "--strict arms the gate regardless of host");
    }
}
