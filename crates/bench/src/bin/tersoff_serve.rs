//! `tersoff-serve` — the scenario job engine as a long-running HTTP server.
//!
//! Binds a loopback (by default) listener and serves the `server` module's
//! wire API: `POST /v1/jobs` takes the same strict scenario JSON that
//! `tersoff-run` executes from disk (matrix expansion included), `GET
//! /v1/jobs/{id}` polls typed status and — once terminal — the resolved
//! per-variant report with exact energy bits, `DELETE` cancels a queued
//! job, `GET /v1/jobs/{id}/events` streams the job's events as chunked
//! NDJSON, `GET /metrics` exposes the engine counters in Prometheus text
//! format, and `POST /v1/shutdown` (or SIGINT/SIGTERM) begins a graceful
//! drain. Results are bitwise identical to a `tersoff-run` invocation of
//! the same scenario.
//!
//! ```text
//! tersoff-serve [--addr HOST:PORT] [--jobs N] [--queue-depth N]
//!               [--cache-entries N] [--cache-bytes N]
//! ```
//!
//! * `--addr HOST:PORT`  bind address (default `127.0.0.1:7171`; port 0
//!   picks a free port, printed on startup)
//! * `--jobs N`          engine worker lanes (default: engine default)
//! * `--queue-depth N`   engine queue capacity — the backpressure bound
//!   behind `429` (default: engine default)
//! * `--cache-entries N` artifact-cache entry budget (default 256)
//! * `--cache-bytes N`   artifact-cache byte budget (default 256 MiB)
//!
//! Exit code `0` after a graceful drain, `2` on usage errors, `1` when the
//! listener cannot bind.

use lammps_tersoff_vector::server::{Server, ServerConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

struct Args {
    addr: String,
    jobs: usize,
    queue_depth: usize,
    cache_entries: usize,
    cache_bytes: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: tersoff-serve [--addr HOST:PORT] [--jobs N] [--queue-depth N] \
         [--cache-entries N] [--cache-bytes N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let defaults = ServerConfig::default();
    let mut out = Args {
        addr: "127.0.0.1:7171".to_string(),
        jobs: 0,
        queue_depth: 0,
        cache_entries: defaults.cache_budget.max_entries,
        cache_bytes: defaults.cache_budget.max_bytes,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = args.next().unwrap_or_else(|| usage()),
            "--jobs" => {
                out.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--queue-depth" => {
                out.queue_depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache-entries" => {
                out.cache_entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache-bytes" => {
                out.cache_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    out
}

/// Set on SIGINT / SIGTERM by the (async-signal-safe) handler; a bridge
/// thread forwards it to the server's shutdown flag.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // std already links libc; `signal(2)` is enough for a store-a-flag
    // handler, so no new crate is needed.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    install_signal_handlers();

    let mut config = ServerConfig {
        addr: args.addr,
        workers: args.jobs,
        queue_depth: args.queue_depth,
        ..ServerConfig::default()
    };
    config.cache_budget.max_entries = args.cache_entries;
    config.cache_budget.max_bytes = args.cache_bytes;

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tersoff-serve: cannot bind: {e}");
            return ExitCode::from(1);
        }
    };
    println!("tersoff-serve: listening on http://{}", server.local_addr());

    // Bridge the signal flag into the server's shutdown flag.
    let shutdown = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    // Blocks until SIGINT/SIGTERM or POST /v1/shutdown, then drains every
    // in-flight and queued job before returning the final counters.
    let stats = server.join();
    println!(
        "tersoff-serve: drained: {} submitted, {} finished, {} faulted, \
         {} cancelled ({} runtime(s) pooled, {} cache hits, {} misses, \
         {} evictions) over {:.1} s.",
        stats.submitted,
        stats.finished,
        stats.faulted,
        stats.cancelled,
        stats.runtimes_created,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.uptime.as_secs_f64(),
    );
    ExitCode::SUCCESS
}
