//! `tersoff-run` — the scenario batch runner, as a job-engine client.
//!
//! Loads one scenario file or every `*.json` in a directory, optionally
//! expands each scenario's declared mode×threads matrix, submits every
//! variant to one shared `JobEngine` (one runtime pool, one artifact cache
//! for the whole invocation), prints a per-variant table, and writes one
//! `BENCH_scenario_<name>.json` report per scenario in the same shape the
//! `bench_diff` regression gate consumes.
//!
//! ```text
//! tersoff-run <scenario.json | scenarios-dir>... [--steps-cap N]
//!             [--no-matrix] [--grid X,Y,Z] [--list] [--quiet]
//!             [--keep-going] [--retries N] [--timeout-secs S] [--resume]
//!             [--jobs N] [--throughput]
//! ```
//!
//! * `--steps-cap N`    run at most N steps per variant (CI smoke runs)
//! * `--no-matrix`      ignore declared matrices, run only the base variant
//! * `--grid X,Y,Z`     run every scenario domain-decomposed over this rank
//!   grid (overrides any declared `decomposition`; `1,1,1` forces
//!   single-domain). Results are bitwise identical for any feasible grid.
//! * `--list`           print the discovered scenarios and exit
//! * `--quiet`          suppress the per-variant tables
//! * `--keep-going`     keep running the remaining variants after a failure
//! * `--retries N`      retry panicked/timed-out variants up to N extra times
//! * `--timeout-secs S` wall-clock budget per variant attempt
//! * `--resume`         resume each variant from its checkpoint file, if any
//! * `--jobs N`         engine worker lanes: how many variants run
//!   concurrently (results are bitwise independent of N)
//! * `--throughput`     submit every variant of every scenario up front,
//!   measure scenarios/hour at engine saturation, and write
//!   `BENCH_throughput.json` (implies `--keep-going`)
//!
//! Every variant runs isolated: a panic or divergence in one job is caught,
//! typed, and reported per-variant (`ok | diverged | panicked | timeout |
//! failed` in the table and report JSON) without poisoning the shared
//! worker runtime. The `TERSOFF_FAULT` environment variable
//! (`kind@step[@variant]`, e.g. `panic@5@Ref`) injects a test fault into
//! matching variants, overriding any `fault` field in the scenario files.
//!
//! Exit codes distinguish the failure classes (worst one wins, in the order
//! panic > timeout > health/drift > load) — the mapping lives in the
//! library's `BatchSeverity`:
//!
//! * `0` every variant ok, within its drift bound and property tolerances
//! * `2` usage error
//! * `3` a scenario failed to load or a variant failed to build
//! * `4` a health guard aborted a variant, a drift bound was exceeded or a
//!   measured property missed its published value
//! * `5` a variant panicked (crash)
//! * `6` a variant exceeded its wall-clock budget

use bench::write_bench_json;
use lammps_tersoff_vector::scenario::{
    measure_throughput, BatchSeverity, DecompositionSpec, FaultSpec, RunPolicy, Scenario,
    ScenarioReport, VariantStatus,
};
use md_core::jobs::{EngineConfig, JobEngine};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    paths: Vec<PathBuf>,
    steps_cap: Option<u64>,
    no_matrix: bool,
    grid: Option<[usize; 3]>,
    list: bool,
    quiet: bool,
    keep_going: bool,
    retries: u32,
    timeout_secs: Option<f64>,
    resume: bool,
    jobs: usize,
    throughput: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tersoff-run <scenario.json | dir>... [--steps-cap N] \
         [--no-matrix] [--grid X,Y,Z] [--list] [--quiet] [--keep-going] \
         [--retries N] [--timeout-secs S] [--resume] [--jobs N] \
         [--throughput]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        paths: Vec::new(),
        steps_cap: None,
        no_matrix: false,
        grid: None,
        list: false,
        quiet: false,
        keep_going: false,
        retries: 0,
        timeout_secs: None,
        resume: false,
        jobs: 1,
        throughput: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps-cap" => {
                out.steps_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--retries" => {
                out.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout-secs" => {
                out.timeout_secs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--jobs" => {
                out.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--grid" => {
                out.grid = Some(
                    args.next()
                        .and_then(|v| parse_grid(&v))
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-matrix" => out.no_matrix = true,
            "--list" => out.list = true,
            "--quiet" => out.quiet = true,
            "--keep-going" => out.keep_going = true,
            "--resume" => out.resume = true,
            "--throughput" => out.throughput = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => out.paths.push(PathBuf::from(other)),
        }
    }
    if out.paths.is_empty() {
        usage();
    }
    out
}

/// Parse `--grid X,Y,Z` (each entry a positive rank count).
fn parse_grid(text: &str) -> Option<[usize; 3]> {
    let parts: Vec<usize> = text
        .split(',')
        .map(|t| t.trim().parse().ok().filter(|&g: &usize| g > 0))
        .collect::<Option<_>>()?;
    let [x, y, z] = parts.as_slice() else {
        return None;
    };
    Some([*x, *y, *z])
}

/// Print the per-variant table plus the engine/backend facts for one
/// executed scenario.
fn print_report(outcome: &ScenarioReport) {
    println!(
        "    vektor backend: {} ({}-granular dispatch, {} build)",
        outcome.executed_backend, outcome.dispatch_granularity, outcome.compiled_isa
    );
    println!(
        "    {:<20} {:>8} {:>9} {:>14} {:>12} {:>10} {:>10}",
        "variant", "threads", "status", "s/step", "ns/day", "rebuilds", "drift"
    );
    for v in &outcome.variants {
        match &v.report {
            Some(report) => println!(
                "    {:<20} {:>8} {:>9} {:>14.6} {:>12.3} {:>10} {:>10.2e}",
                v.label,
                v.resolved_threads,
                v.status.name(),
                report.seconds_per_step(),
                report.ns_per_day,
                report.total_rebuilds,
                report.max_drift
            ),
            None => println!(
                "    {:<20} {:>8} {:>9} {:>14} {:>12} {:>10} {:>10}",
                v.label,
                v.resolved_threads,
                v.status.name(),
                "-",
                "-",
                "-",
                "-"
            ),
        }
        if let Some(step) = v.resumed_from {
            println!("    {:<20}   resumed from checkpoint step {step}", "");
        }
        if let Some(d) = &v.decomposition {
            println!(
                "    {:<20}   {}x{}x{} ranks: {} migrated, ghost {:.3}, comm {:.1}%",
                "",
                d.grid[0],
                d.grid[1],
                d.grid[2],
                d.migrations,
                d.ghost_fraction,
                100.0 * d.comm_fraction
            );
        }
        for w in &v.warnings {
            println!("    {:<20}   warning: {w}", "");
        }
        if let Some(p) = &v.properties {
            if let Some(e) = &p.elastic {
                let fmt = |c: Option<f64>| match c {
                    Some(v) => format!("{v:.1}"),
                    None => "-".to_string(),
                };
                println!(
                    "    {:<20}   a0 {:.4} A, E_coh {:.4} eV, C11 {} C12 {} C44 {} GPa",
                    "",
                    e.lattice_a,
                    e.cohesive_ev,
                    fmt(e.c11_gpa),
                    fmt(e.c12_gpa),
                    fmt(e.c44_gpa)
                );
            }
            for c in &p.checks {
                println!(
                    "    {:<20}   check {}: measured {:.4} vs published {:.4} ({:.2}% off) {}",
                    "",
                    c.name,
                    c.measured,
                    c.expected,
                    c.rel_err_pct,
                    if c.ok { "ok" } else { "FAIL" }
                );
            }
        }
    }
}

/// Fold one executed scenario into the invocation's severity and failure
/// count, surface its errors and drift violations, and write its
/// `BENCH_scenario_<name>.json` report.
fn account_and_write(
    outcome: &ScenarioReport,
    quiet: bool,
    severity: &mut BatchSeverity,
    failures: &mut usize,
) {
    let name = &outcome.scenario.name;
    for v in &outcome.variants {
        severity.record(v.status);
        if v.status != VariantStatus::Ok {
            *failures += 1;
            if let Some(error) = &v.error {
                eprintln!("tersoff-run: {name}: {error}");
            }
        }
    }
    for violation in outcome.drift_violations() {
        eprintln!("tersoff-run: {name}: DRIFT VIOLATION: {violation}");
        severity.record_drift_violation();
        *failures += 1;
    }
    for violation in outcome.property_violations() {
        eprintln!("tersoff-run: {name}: PROPERTY CHECK FAILED: {violation}");
        severity.record_drift_violation();
        *failures += 1;
    }
    let report_name = format!("scenario_{name}");
    match write_bench_json(&report_name, &outcome.to_report_json()) {
        Ok(out_path) => {
            if !quiet {
                println!("    wrote {out_path}");
            }
        }
        Err(e) => {
            eprintln!("tersoff-run: {name}: cannot write report: {e}");
            severity.record_load_failure();
            *failures += 1;
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let fault_override = match std::env::var("TERSOFF_FAULT") {
        Err(_) => None,
        Ok(text) => match FaultSpec::parse_env(&text) {
            Ok(spec) => {
                eprintln!("tersoff-run: TERSOFF_FAULT injecting {text}");
                Some(spec)
            }
            Err(e) => {
                eprintln!("tersoff-run: invalid TERSOFF_FAULT: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let policy = RunPolicy {
        jobs: args.jobs,
        steps_cap: args.steps_cap,
        retries: args.retries,
        // Throughput measurement is a whole-batch rate: one failed variant
        // must not starve the rest of the queue.
        keep_going: args.keep_going || args.throughput,
        timeout: args.timeout_secs.map(Duration::from_secs_f64),
        fault_override,
        resume: args.resume,
    };

    let mut severity = BatchSeverity::new();
    let mut failures = 0usize;

    let mut scenarios: Vec<(PathBuf, Scenario)> = Vec::new();
    for path in &args.paths {
        match Scenario::discover(path) {
            Ok(found) if found.is_empty() => {
                eprintln!("tersoff-run: {}: no *.json scenarios found", path.display());
                severity.record_load_failure();
                failures += 1;
            }
            Ok(found) => scenarios.extend(found),
            Err(e) => {
                eprintln!("tersoff-run: {e}");
                severity.record_load_failure();
                failures += 1;
            }
        }
    }
    if args.no_matrix {
        for (_, s) in &mut scenarios {
            s.matrix = None;
        }
    }
    if let Some(grid) = args.grid {
        // `--grid 1,1,1` strips declared decompositions (single-domain);
        // anything else decomposes every scenario over that rank grid.
        let spec = (grid != [1, 1, 1]).then_some(DecompositionSpec { grid });
        for (_, s) in &mut scenarios {
            s.decomposition = spec;
        }
    }

    if args.list {
        for (path, s) in &scenarios {
            println!(
                "{:<28} {:>7} atoms {:>8} steps {:>3} variants  {}  [{}]",
                s.name,
                s.n_atoms(),
                s.run.steps,
                s.variants().len(),
                s.description,
                path.display()
            );
        }
        return ExitCode::from(severity.exit_code());
    }

    // One engine for the whole invocation: the runtime pool and artifact
    // cache are shared across scenarios, so a repeated lattice or parameter
    // set is only prepared once.
    let engine = JobEngine::new(EngineConfig {
        workers: args.jobs,
        ..EngineConfig::default()
    });

    if args.throughput {
        let (summary, reports) = match measure_throughput(&scenarios, &engine, &policy) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("tersoff-run: {e}");
                severity.record_load_failure();
                return ExitCode::from(severity.exit_code());
            }
        };
        for (path, outcome) in &reports {
            if !args.quiet {
                println!("=== {} ({}) ===", outcome.scenario.name, path.display());
                print_report(outcome);
            }
            account_and_write(outcome, args.quiet, &mut severity, &mut failures);
            if !args.quiet {
                println!();
            }
        }
        match write_bench_json("throughput", &summary.to_report_json()) {
            Ok(out_path) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("tersoff-run: cannot write throughput report: {e}");
                severity.record_load_failure();
                failures += 1;
            }
        }
        println!(
            "{} scenario(s), {} variant(s) in {:.2} s at --jobs {}: \
             {:.1} scenarios/hour, {:.1} variants/hour \
             ({} cache hits, {} misses), {failures} failure(s).",
            summary.scenarios,
            summary.variants,
            summary.wall_seconds,
            summary.jobs,
            summary.scenarios_per_hour,
            summary.variants_per_hour,
            summary.engine.cache.hits,
            summary.engine.cache.misses,
        );
        return ExitCode::from(severity.exit_code());
    }

    for (path, scenario) in &scenarios {
        if !args.quiet {
            println!("=== {} ({}) ===", scenario.name, path.display());
            if !scenario.description.is_empty() {
                println!("    {}", scenario.description);
            }
            println!(
                "    {} atoms, {} steps{}, {} variant(s)",
                scenario.n_atoms(),
                scenario.run.steps,
                match args.steps_cap {
                    Some(cap) if cap < scenario.run.steps => format!(" (capped to {cap})"),
                    _ => String::new(),
                },
                scenario.variants().len()
            );
        }

        let outcome = match scenario.execute_on(&engine, &policy) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tersoff-run: {}: {e}", scenario.name);
                severity.record_load_failure();
                failures += 1;
                continue;
            }
        };

        if !args.quiet {
            print_report(&outcome);
        }
        account_and_write(&outcome, args.quiet, &mut severity, &mut failures);
        if !args.quiet {
            println!();
        }
    }

    let stats = engine.stats_snapshot();
    println!(
        "{} scenario(s) executed at --jobs {} ({} runtime(s) pooled, \
         {} cache hits, {} misses), {failures} failure(s).",
        scenarios.len(),
        stats.workers,
        stats.runtimes_created,
        stats.cache.hits,
        stats.cache.misses,
    );
    ExitCode::from(severity.exit_code())
}
