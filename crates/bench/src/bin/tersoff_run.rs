//! `tersoff-run` — the scenario batch runner.
//!
//! Loads one scenario file or every `*.json` in a directory, optionally
//! expands each scenario's declared mode×threads matrix, runs every variant
//! through the `SimulationBuilder` API, prints a per-variant table, and
//! writes one `BENCH_scenario_<name>.json` report per scenario in the same
//! shape the `bench_diff` regression gate consumes.
//!
//! ```text
//! tersoff-run <scenario.json | scenarios-dir>... [--steps-cap N]
//!             [--no-matrix] [--list] [--quiet]
//! ```
//!
//! * `--steps-cap N`  run at most N steps per variant (CI smoke runs)
//! * `--no-matrix`    ignore declared matrices, run only the base variant
//! * `--list`         print the discovered scenarios and exit
//! * `--quiet`        suppress the per-variant tables
//!
//! Exit code 1 when any scenario fails to load or run, or when a variant's
//! measured energy drift exceeds the scenario's declared `max_drift` bound —
//! which is what lets CI smoke every shipped spec.

use bench::write_bench_json;
use lammps_tersoff_vector::scenario::Scenario;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    paths: Vec<PathBuf>,
    steps_cap: Option<u64>,
    no_matrix: bool,
    list: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tersoff-run <scenario.json | dir>... [--steps-cap N] \
         [--no-matrix] [--list] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut paths = Vec::new();
    let mut steps_cap = None;
    let mut no_matrix = false;
    let mut list = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps-cap" => {
                steps_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-matrix" => no_matrix = true,
            "--list" => list = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        usage();
    }
    Args {
        paths,
        steps_cap,
        no_matrix,
        list,
        quiet,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut scenarios: Vec<(PathBuf, Scenario)> = Vec::new();
    let mut failures = 0usize;
    for path in &args.paths {
        match Scenario::discover(path) {
            Ok(found) if found.is_empty() => {
                eprintln!("tersoff-run: {}: no *.json scenarios found", path.display());
                failures += 1;
            }
            Ok(found) => scenarios.extend(found),
            Err(e) => {
                eprintln!("tersoff-run: {e}");
                failures += 1;
            }
        }
    }

    if args.list {
        for (path, s) in &scenarios {
            println!(
                "{:<28} {:>7} atoms {:>8} steps {:>3} variants  {}  [{}]",
                s.name,
                s.n_atoms(),
                s.run.steps,
                s.variants().len(),
                s.description,
                path.display()
            );
        }
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for (path, scenario) in &scenarios {
        let mut scenario = scenario.clone();
        if args.no_matrix {
            scenario.matrix = None;
        }
        if !args.quiet {
            println!("=== {} ({}) ===", scenario.name, path.display());
            if !scenario.description.is_empty() {
                println!("    {}", scenario.description);
            }
            println!(
                "    {} atoms, {} steps{}, {} variant(s)",
                scenario.n_atoms(),
                scenario.run.steps,
                match args.steps_cap {
                    Some(cap) if cap < scenario.run.steps => format!(" (capped to {cap})"),
                    _ => String::new(),
                },
                scenario.variants().len()
            );
        }

        let outcome = match scenario.execute(args.steps_cap) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tersoff-run: {}: {e}", scenario.name);
                failures += 1;
                continue;
            }
        };

        if !args.quiet {
            println!(
                "    vektor backend: {} ({}-granular dispatch, {} build)",
                outcome.executed_backend, outcome.dispatch_granularity, outcome.compiled_isa
            );
            println!(
                "    {:<20} {:>8} {:>14} {:>12} {:>10} {:>10}",
                "variant", "threads", "s/step", "ns/day", "rebuilds", "drift"
            );
            for v in &outcome.variants {
                println!(
                    "    {:<20} {:>8} {:>14.6} {:>12.3} {:>10} {:>10.2e}",
                    v.label,
                    v.resolved_threads,
                    v.report.seconds_per_step(),
                    v.report.ns_per_day,
                    v.report.total_rebuilds,
                    v.report.max_drift
                );
            }
        }

        for violation in outcome.drift_violations() {
            eprintln!(
                "tersoff-run: {}: DRIFT VIOLATION: {violation}",
                scenario.name
            );
            failures += 1;
        }

        let report_name = format!("scenario_{}", scenario.name);
        match write_bench_json(&report_name, &outcome.to_report_json()) {
            Ok(out_path) => {
                if !args.quiet {
                    println!("    wrote {out_path}");
                }
            }
            Err(e) => {
                eprintln!("tersoff-run: {}: cannot write report: {e}", scenario.name);
                failures += 1;
            }
        }
        if !args.quiet {
            println!();
        }
    }

    println!(
        "{} scenario(s) executed (backend auto-detection per run), {failures} failure(s).",
        scenarios.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
