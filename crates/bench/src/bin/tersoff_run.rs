//! `tersoff-run` — the scenario batch runner.
//!
//! Loads one scenario file or every `*.json` in a directory, optionally
//! expands each scenario's declared mode×threads matrix, runs every variant
//! through the `SimulationBuilder` API, prints a per-variant table, and
//! writes one `BENCH_scenario_<name>.json` report per scenario in the same
//! shape the `bench_diff` regression gate consumes.
//!
//! ```text
//! tersoff-run <scenario.json | scenarios-dir>... [--steps-cap N]
//!             [--no-matrix] [--list] [--quiet] [--keep-going]
//!             [--retries N] [--timeout-secs S] [--resume]
//! ```
//!
//! * `--steps-cap N`    run at most N steps per variant (CI smoke runs)
//! * `--no-matrix`      ignore declared matrices, run only the base variant
//! * `--list`           print the discovered scenarios and exit
//! * `--quiet`          suppress the per-variant tables
//! * `--keep-going`     keep running the remaining variants after a failure
//! * `--retries N`      retry panicked/timed-out variants up to N extra times
//! * `--timeout-secs S` wall-clock budget per variant attempt
//! * `--resume`         resume each variant from its checkpoint file, if any
//!
//! Every variant runs isolated: a panic or divergence in one job is caught,
//! typed, and reported per-variant (`ok | diverged | panicked | timeout |
//! failed` in the table and report JSON) without poisoning the shared
//! worker runtime. The `TERSOFF_FAULT` environment variable
//! (`kind@step[@variant]`, e.g. `panic@5@Ref`) injects a test fault into
//! matching variants, overriding any `fault` field in the scenario files.
//!
//! Exit codes distinguish the failure classes (worst one wins, in the order
//! panic > timeout > health/drift > load):
//!
//! * `0` every variant ok and within its drift bound
//! * `2` usage error
//! * `3` a scenario failed to load or a variant failed to build
//! * `4` a health guard aborted a variant or a drift bound was exceeded
//! * `5` a variant panicked (crash)
//! * `6` a variant exceeded its wall-clock budget

use bench::write_bench_json;
use lammps_tersoff_vector::scenario::{FaultSpec, RunPolicy, Scenario, VariantStatus};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    paths: Vec<PathBuf>,
    steps_cap: Option<u64>,
    no_matrix: bool,
    list: bool,
    quiet: bool,
    keep_going: bool,
    retries: u32,
    timeout_secs: Option<f64>,
    resume: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tersoff-run <scenario.json | dir>... [--steps-cap N] \
         [--no-matrix] [--list] [--quiet] [--keep-going] [--retries N] \
         [--timeout-secs S] [--resume]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        paths: Vec::new(),
        steps_cap: None,
        no_matrix: false,
        list: false,
        quiet: false,
        keep_going: false,
        retries: 0,
        timeout_secs: None,
        resume: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--steps-cap" => {
                out.steps_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--retries" => {
                out.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout-secs" => {
                out.timeout_secs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| s.is_finite() && *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--no-matrix" => out.no_matrix = true,
            "--list" => out.list = true,
            "--quiet" => out.quiet = true,
            "--keep-going" => out.keep_going = true,
            "--resume" => out.resume = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => out.paths.push(PathBuf::from(other)),
        }
    }
    if out.paths.is_empty() {
        usage();
    }
    out
}

/// Failure classes seen across the whole invocation; the exit code reports
/// the worst one (panic > timeout > health/drift > load).
#[derive(Default)]
struct Severity {
    load: bool,
    health: bool,
    panic: bool,
    timeout: bool,
}

impl Severity {
    fn record(&mut self, status: VariantStatus) {
        match status {
            VariantStatus::Ok => {}
            VariantStatus::Diverged => self.health = true,
            VariantStatus::Panicked => self.panic = true,
            VariantStatus::Timeout => self.timeout = true,
            VariantStatus::Failed => self.load = true,
        }
    }

    fn any(&self) -> bool {
        self.load || self.health || self.panic || self.timeout
    }

    fn exit_code(&self) -> ExitCode {
        if self.panic {
            ExitCode::from(5)
        } else if self.timeout {
            ExitCode::from(6)
        } else if self.health {
            ExitCode::from(4)
        } else if self.load {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let fault_override = match std::env::var("TERSOFF_FAULT") {
        Err(_) => None,
        Ok(text) => match FaultSpec::parse_env(&text) {
            Ok(spec) => {
                eprintln!("tersoff-run: TERSOFF_FAULT injecting {text}");
                Some(spec)
            }
            Err(e) => {
                eprintln!("tersoff-run: invalid TERSOFF_FAULT: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let policy = RunPolicy {
        steps_cap: args.steps_cap,
        retries: args.retries,
        keep_going: args.keep_going,
        timeout: args.timeout_secs.map(Duration::from_secs_f64),
        fault_override,
        resume: args.resume,
    };

    let mut severity = Severity::default();
    let mut failures = 0usize;

    let mut scenarios: Vec<(PathBuf, Scenario)> = Vec::new();
    for path in &args.paths {
        match Scenario::discover(path) {
            Ok(found) if found.is_empty() => {
                eprintln!("tersoff-run: {}: no *.json scenarios found", path.display());
                severity.load = true;
                failures += 1;
            }
            Ok(found) => scenarios.extend(found),
            Err(e) => {
                eprintln!("tersoff-run: {e}");
                severity.load = true;
                failures += 1;
            }
        }
    }

    if args.list {
        for (path, s) in &scenarios {
            println!(
                "{:<28} {:>7} atoms {:>8} steps {:>3} variants  {}  [{}]",
                s.name,
                s.n_atoms(),
                s.run.steps,
                s.variants().len(),
                s.description,
                path.display()
            );
        }
        return severity.exit_code();
    }

    for (path, scenario) in &scenarios {
        let mut scenario = scenario.clone();
        if args.no_matrix {
            scenario.matrix = None;
        }
        if !args.quiet {
            println!("=== {} ({}) ===", scenario.name, path.display());
            if !scenario.description.is_empty() {
                println!("    {}", scenario.description);
            }
            println!(
                "    {} atoms, {} steps{}, {} variant(s)",
                scenario.n_atoms(),
                scenario.run.steps,
                match args.steps_cap {
                    Some(cap) if cap < scenario.run.steps => format!(" (capped to {cap})"),
                    _ => String::new(),
                },
                scenario.variants().len()
            );
        }

        let outcome = match scenario.execute_with(&policy) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tersoff-run: {}: {e}", scenario.name);
                severity.load = true;
                failures += 1;
                continue;
            }
        };

        if !args.quiet {
            println!(
                "    vektor backend: {} ({}-granular dispatch, {} build)",
                outcome.executed_backend, outcome.dispatch_granularity, outcome.compiled_isa
            );
            println!(
                "    {:<20} {:>8} {:>9} {:>14} {:>12} {:>10} {:>10}",
                "variant", "threads", "status", "s/step", "ns/day", "rebuilds", "drift"
            );
            for v in &outcome.variants {
                match &v.report {
                    Some(report) => println!(
                        "    {:<20} {:>8} {:>9} {:>14.6} {:>12.3} {:>10} {:>10.2e}",
                        v.label,
                        v.resolved_threads,
                        v.status.name(),
                        report.seconds_per_step(),
                        report.ns_per_day,
                        report.total_rebuilds,
                        report.max_drift
                    ),
                    None => println!(
                        "    {:<20} {:>8} {:>9} {:>14} {:>12} {:>10} {:>10}",
                        v.label,
                        v.resolved_threads,
                        v.status.name(),
                        "-",
                        "-",
                        "-",
                        "-"
                    ),
                }
                if let Some(step) = v.resumed_from {
                    println!("    {:<20}   resumed from checkpoint step {step}", "");
                }
                for w in &v.warnings {
                    println!("    {:<20}   warning: {w}", "");
                }
            }
        }

        for v in &outcome.variants {
            severity.record(v.status);
            if v.status != VariantStatus::Ok {
                failures += 1;
                if let Some(error) = &v.error {
                    eprintln!("tersoff-run: {}: {error}", scenario.name);
                }
            }
        }

        for violation in outcome.drift_violations() {
            eprintln!(
                "tersoff-run: {}: DRIFT VIOLATION: {violation}",
                scenario.name
            );
            severity.health = true;
            failures += 1;
        }

        let report_name = format!("scenario_{}", scenario.name);
        match write_bench_json(&report_name, &outcome.to_report_json()) {
            Ok(out_path) => {
                if !args.quiet {
                    println!("    wrote {out_path}");
                }
            }
            Err(e) => {
                eprintln!("tersoff-run: {}: cannot write report: {e}", scenario.name);
                severity.load = true;
                failures += 1;
            }
        }
        if !args.quiet {
            println!();
        }
    }

    println!(
        "{} scenario(s) executed (backend auto-detection per run), {failures} failure(s).",
        scenarios.len()
    );
    let _ = severity.any();
    severity.exit_code()
}
