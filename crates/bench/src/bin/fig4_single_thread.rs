//! Figure 4 + the Sec. VI-A speedup narrative: single-threaded ns/day for
//! Ref / Opt-D / Opt-S / Opt-M across the CPU architectures (ARM, WM, SB,
//! HW), 32 000 atoms.
//!
//! Two views are printed: (a) the *measured* kernel speedups of this
//! reproduction on the host machine (algorithmic effect only — all variants
//! share the host ISA), and (b) the *projected* ns/day per paper machine from
//! the arch-model cost model, which is what corresponds to the bars of
//! Fig. 4.

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::{figure_header, ns_per_day, SiliconWorkload};
use tersoff::driver::ExecutionMode;

fn main() {
    let atoms_arg: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    figure_header(
        "Figure 4",
        "single-threaded execution, Ref / Opt-D / Opt-S / Opt-M across CPUs",
        "32 000 Si atoms (paper); measured part uses a scaled-down system",
    );

    // (a) Measured on this host.
    let workload = SiliconWorkload::new(atoms_arg);
    println!(
        "\n(a) measured on this host ({} atoms, single thread):",
        workload.n_atoms()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "mode", "s/step", "ns/day", "vs Ref"
    );
    let reps = if workload.n_atoms() > 10_000 { 1 } else { 3 };
    let t_ref = workload.time_mode(ExecutionMode::Ref, reps);
    for (label, mode) in [
        ("Ref", ExecutionMode::Ref),
        ("Opt-D", ExecutionMode::OptD),
        ("Opt-S", ExecutionMode::OptS),
        ("Opt-M", ExecutionMode::OptM),
    ] {
        let t = if mode == ExecutionMode::Ref {
            t_ref
        } else {
            workload.time_mode(mode, reps)
        };
        println!(
            "{:<10} {:>14.5} {:>14.4} {:>11.2}x",
            label,
            t,
            ns_per_day(t),
            t_ref / t
        );
    }

    // (b) Projected per paper machine.
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(32_000);
    println!("\n(b) projected ns/day per paper machine (cost model, 32 000 atoms):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}   paper speedups (Sec. VI-A)",
        "", "Ref", "Opt-D", "Opt-S", "Opt-M"
    );
    let paper_notes = [
        ("ARM", "Opt-D 2.4x, Opt-S 6.4x"),
        ("WM", "Opt-D 1.9x, Opt-S 3.5x"),
        ("SB", "Opt-D >3x"),
        ("HW", "Opt-S 4.8x"),
    ];
    for (name, note) in paper_notes {
        let m = Machine::by_name(name).unwrap();
        let v: Vec<f64> = Mode::ALL
            .iter()
            .map(|&mode| model.single_thread_ns_per_day(&m, mode, &shape))
            .collect();
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   {}",
            name, v[0], v[1], v[2], v[3], note
        );
    }

    println!("\nprojected speedups over Ref:");
    println!("{:<6} {:>10} {:>10} {:>10}", "", "Opt-D", "Opt-S", "Opt-M");
    for name in ["ARM", "WM", "SB", "HW"] {
        let m = Machine::by_name(name).unwrap();
        let reference = model.single_thread_ns_per_day(&m, Mode::Ref, &shape);
        let s: Vec<f64> = [Mode::OptD, Mode::OptS, Mode::OptM]
            .iter()
            .map(|&mode| model.single_thread_ns_per_day(&m, mode, &shape) / reference)
            .collect();
        println!("{:<6} {:>9.2}x {:>9.2}x {:>9.2}x", name, s[0], s[1], s[2]);
    }
}
