//! Figure 2: mask status during the K loop, with and without the
//! fast-forward optimization of Sec. IV-C.
//!
//! The paper visualizes this as a per-lane timeline; here we report the
//! aggregate statistics the picture conveys — how many K-loop iterations
//! compute versus spin, and how full the vector is when computation happens.

#![allow(clippy::needless_range_loop)] // stencil-style 0..3 loops are intentional

use bench::{figure_header, SiliconWorkload};
use md_core::potential::{ComputeOutput, Potential};
use tersoff::params::TersoffParams;
use tersoff::scheme_b::TersoffSchemeB;

fn main() {
    let n_atoms: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let workload = SiliconWorkload::new(n_atoms);
    figure_header(
        "Figure 2",
        "K-loop lane occupancy: naive vs fast-forward iteration (scheme 1b, 16 lanes)",
        &format!("{} Si atoms, ~4 neighbors/atom", workload.n_atoms()),
    );

    let mut naive = TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon())
        .without_fast_forward()
        .with_stats();
    let mut fast = TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon()).with_stats();
    let mut out = ComputeOutput::zeros(workload.atoms.n_total());
    naive.compute(
        &workload.atoms,
        &workload.sim_box,
        &workload.neighbors,
        &mut out,
    );
    fast.compute(
        &workload.atoms,
        &workload.sim_box,
        &workload.neighbors,
        &mut out,
    );

    println!(
        "{:<38} {:>16} {:>16}",
        "", "naive (Fig.2 left)", "fast-forward (right)"
    );
    println!("{:-<72}", "");
    #[allow(clippy::type_complexity)]
    let rows: [(&str, Box<dyn Fn(&tersoff::stats::KernelStats) -> String>); 6] = [
        (
            "pair-level lane occupancy",
            Box::new(|s| format!("{:.1}%", 100.0 * s.pair_occupancy())),
        ),
        (
            "K iterations (compute)",
            Box::new(|s| format!("{}", s.k_compute_iterations)),
        ),
        (
            "K iterations (spin only)",
            Box::new(|s| format!("{}", s.k_spin_iterations)),
        ),
        (
            "K spin fraction",
            Box::new(|s| format!("{:.1}%", 100.0 * s.k_spin_fraction())),
        ),
        (
            "mean active lanes per compute",
            Box::new(|s| format!("{:.2}", s.k_mean_active_lanes())),
        ),
        (
            "K-loop occupancy",
            Box::new(|s| format!("{:.1}%", 100.0 * s.k_occupancy())),
        ),
    ];
    for (label, f) in rows {
        println!(
            "{:<38} {:>16} {:>16}",
            label,
            f(&naive.stats),
            f(&fast.stats)
        );
    }

    println!("\nactive-lane histogram of computing K iterations (lanes: count)");
    for (label, stats) in [("naive", &naive.stats), ("fast-forward", &fast.stats)] {
        let total: u64 = stats.k_active_histogram.iter().sum();
        let line: Vec<String> = stats
            .k_active_histogram
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(lanes, &c)| format!("{lanes}:{:.0}%", 100.0 * c as f64 / total.max(1) as f64))
            .collect();
        println!("  {label:<14} {}", line.join("  "));
    }

    println!("\npaper: without fast-forwarding, computation fires as soon as one lane is");
    println!("ready (sparse masks, 'no more than four lanes active'); with it, computation");
    println!("is delayed until every iterating lane is ready, trading spin iterations for");
    println!("full vectors — the same trade-off visible in the numbers above.");
}
