//! Figure 9: strong scalability — the same system spread over more and more
//! ranks. The paper runs 2 million Si atoms on 1–8 SuperMIC nodes (196 MPI
//! ranks at the top end) and reports 2.5× (CPU only) / 6.5× (with
//! accelerators) over Ref at 8 nodes, with the communication share of the
//! timestep growing as the per-rank subdomain shrinks.
//!
//! This reproduction measures the **real distributed timestep** — the
//! in-process rank-parallel [`DomainSimulation`] (per-rank integration and
//! neighbor builds, atom migration, ghost exchange as halo messages) — over
//! a grid sweep of the committed `scenarios/fig9_strong_scaling.json`
//! workload, verifying every decomposition is **bitwise identical** to the
//! single-domain driver and reporting the measured communication fraction
//! from the per-stage timers. Results go to `BENCH_fig9_strong_scaling.json`
//! for the `bench_diff` gate (each grid is its own series row, keyed
//! `mode/grid`). The cost-model projection for the paper's cluster is
//! printed afterwards as context. Pass a cell count to scale up (e.g.
//! `fig9_strong_scaling 40` ≈ 512 000 atoms).

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::{figure_header, ns_per_day, row, row_header, write_bench_json};
use lammps_tersoff_vector::scenario::{Scenario, Variant};
use md_core::domain::DomainSimulation;
use md_core::timer::Stage;
use std::time::Instant;

/// The spec is embedded so the binary runs from any working directory; the
/// file in `scenarios/` stays the single source of truth.
const SPEC: &str = include_str!("../../../../scenarios/fig9_strong_scaling.json");

/// The rank grids swept, smallest first. Grids whose subdomain cells would
/// be thinner than the neighbor build cutoff for the chosen system are
/// skipped (reported, not failed) — the same validation `tersoff-run`
/// applies to a declared `decomposition`.
const GRIDS: [[usize; 3]; 4] = [[1, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2]];

fn main() {
    let mut scenario = Scenario::from_json(SPEC).expect("embedded scenario is valid");
    if let Some(cells) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        let cells: usize = std::cmp::max(cells, 1);
        scenario.system.cells = [cells, cells, cells];
    }
    // The sweep below sets the grid per run; the declared decomposition only
    // picks the default grid `tersoff-run` executes.
    scenario.decomposition = None;
    let cells = scenario.system.cells;
    let n_atoms = scenario.n_atoms();
    let steps = scenario.run.steps;
    let variant = Variant {
        mode: scenario.potential.mode,
        threads: scenario.potential.threads,
    };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let executed_backend = scenario.options_for(variant).resolved_backend();

    figure_header(
        "Figure 9",
        "strong scaling over the rank-parallel domain decomposition (measured)",
        &format!(
            "{}x{}x{} cells = {n_atoms} perturbed Si atoms, {} mode, \
             {} engine thread(s), {steps} steps per run",
            cells[0],
            cells[1],
            cells[2],
            variant.mode.label(),
            variant.threads
        ),
    );

    // Single-domain reference trajectory: the bitwise anchor every grid must
    // reproduce, and the denominator of the efficiency column.
    let mut single = scenario
        .simulation_builder(variant)
        .expect("embedded scenario builds")
        .build()
        .expect("embedded scenario builds");
    let start = Instant::now();
    let reference = single.run(steps);
    let single_seconds = start.elapsed().as_secs_f64();
    let ref_bits = reference.final_thermo.total.to_bits();
    println!(
        "single-domain reference: E = {:.6} eV, {:.3} s wall\n",
        reference.final_thermo.total, single_seconds
    );

    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>10} {:>10} {:>9} {:>8}",
        "grid", "ranks", "s/step", "ns/day", "comm %", "ghost", "migrated", "bitwise"
    );
    println!("{:-<82}", "");

    let mut json_rows = String::new();
    for grid in GRIDS {
        let builder = scenario
            .simulation_builder(variant)
            .expect("embedded scenario builds");
        let mut dom = match DomainSimulation::new(builder, grid) {
            Ok(dom) => dom,
            Err(e) => {
                println!(
                    "{:<8} skipped: {e}",
                    format!("{}x{}x{}", grid[0], grid[1], grid[2])
                );
                continue;
            }
        };
        let start = Instant::now();
        let report = dom.run(steps);
        let wall = start.elapsed().as_secs_f64();
        let seconds_per_step = wall / steps.max(1) as f64;

        let timers = &dom.sim().timers;
        let total: f64 = Stage::ALL.iter().map(|&s| timers.seconds(s)).sum();
        let comm = timers.seconds(Stage::Comm) + timers.seconds(Stage::Migrate);
        let comm_fraction = comm / total.max(1e-12);
        let ghost_fraction = dom.ghost_fraction();
        let migrations = dom.migrations();
        let bitwise = report.final_thermo.total.to_bits() == ref_bits;

        println!(
            "{:<8} {:>6} {:>12.6} {:>12.3} {:>10.2} {:>10.3} {:>9} {:>8}",
            format!("{}x{}x{}", grid[0], grid[1], grid[2]),
            dom.n_ranks(),
            seconds_per_step,
            ns_per_day(seconds_per_step),
            100.0 * comm_fraction,
            ghost_fraction,
            migrations,
            if bitwise { "yes" } else { "NO" },
        );
        assert!(
            bitwise,
            "grid {grid:?} diverged from the single-domain trajectory"
        );

        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        // Each grid is its own `(mode, threads)` series key for the
        // bench_diff gate, so the grid label rides in the mode string.
        json_rows.push_str(&format!(
            "    {{\"mode\": \"{}/{}x{}x{}\", \"threads\": {}, \"grid\": [{}, {}, {}], \
             \"ranks\": {}, \"seconds_per_step\": {:.9e}, \"ns_per_day\": {:.6}, \
             \"atom_steps_per_sec\": {:.3}, \"comm_fraction\": {:.6}, \
             \"ghost_fraction\": {:.6}, \"migrations\": {}}}",
            variant.mode.label(),
            grid[0],
            grid[1],
            grid[2],
            variant.threads,
            grid[0],
            grid[1],
            grid[2],
            dom.n_ranks(),
            seconds_per_step,
            ns_per_day(seconds_per_step),
            n_atoms as f64 / seconds_per_step.max(1e-12),
            comm_fraction,
            ghost_fraction,
            migrations,
        ));
    }

    let body = format!(
        "{{\n  \"figure\": \"fig9_strong_scaling\",\n  \"scenario\": \"{}\",\n  \
         \"workload\": {{\"cells\": [{}, {}, {}], \"atoms\": {n_atoms}, \"perturbation\": \
         {}}},\n  \"steps\": {steps},\n  \"available_parallelism\": {parallelism},\n  \
         \"executed_backend\": \"{executed_backend}\",\n  \
         \"single_domain_seconds\": {:.6},\n  \
         \"series\": [\n{json_rows}\n  ]\n}}\n",
        scenario.name, cells[0], cells[1], cells[2], scenario.system.perturbation, single_seconds
    );
    match write_bench_json("fig9_strong_scaling", &body) {
        Ok(path) => println!("\n(wrote {path})"),
        Err(e) => eprintln!("\nwarning: could not write JSON report: {e}"),
    }

    // Context: the analytic projection for the paper's cluster (SuperMIC:
    // IV + 2 KNC per node) at the paper's 2-million-atom size.
    println!("\ncost-model projection, 2 000 000 atoms on the paper's cluster (context):");
    let model = CostModel::default();
    let node = Machine::iv_2knc();
    let shape = WorkloadShape::silicon(2_000_000);
    println!(
        "{:<8} {:>14} {:>14} {:>18}",
        "#nodes", "Ref (IV)", "Opt-D (IV)", "Opt-D (IV+2KNC)"
    );
    println!("{:-<58}", "");
    let mut at8 = (0.0, 0.0, 0.0);
    for n in [1usize, 2, 4, 8] {
        let reference = model.cluster_ns_per_day(&node, Mode::Ref, false, n, &shape);
        let opt_cpu = model.cluster_ns_per_day(&node, Mode::OptD, false, n, &shape);
        let opt_acc = model.cluster_ns_per_day(&node, Mode::OptD, true, n, &shape);
        if n == 8 {
            at8 = (reference, opt_cpu, opt_acc);
        }
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>18.3}",
            n, reference, opt_cpu, opt_acc
        );
    }

    println!();
    row_header();
    row(
        "trajectory across ranks",
        "one physical answer",
        "bitwise identical (asserted)",
    );
    row(
        "comm share as ranks grow",
        "rises (surface/volume)",
        "see measured comm % column",
    );
    row(
        "Opt-D (IV) at 8 nodes",
        "2.5x over Ref",
        &format!("{:.2}x (cost model)", at8.1 / at8.0),
    );
    row(
        "Opt-D (IV+2KNC) at 8 nodes",
        "6.5x over Ref",
        &format!("{:.2}x (cost model)", at8.2 / at8.0),
    );
    println!("\nNote: in-process ranks share one host, so s/step measures decomposition");
    println!("overhead rather than cluster speedup; the paper's scaling claim is carried");
    println!("by the bitwise-identical distributed timestep plus the cost-model columns.");
}
