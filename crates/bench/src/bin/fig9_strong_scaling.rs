//! Figure 9: strong scalability on a cluster of Xeon-Phi-augmented nodes
//! (SuperMIC: IV + 2 KNC per node), 2 million atoms, 1–8 nodes, three
//! configurations: Ref (CPU only), Opt-D (CPU only), Opt-D (CPU + 2 KNC).
//! The paper reports 2.5× (CPU only) and 6.5× (with accelerators) at 8 nodes
//! / 196 MPI ranks.

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::figure_header;

fn main() {
    figure_header(
        "Figure 9",
        "strong scaling on the IV+2KNC cluster: Ref(IV), Opt-D(IV), Opt-D(IV+2KNC)",
        "2 000 000 Si atoms; projections from the cost model",
    );
    let model = CostModel::default();
    let node = Machine::iv_2knc();
    let shape = WorkloadShape::silicon(2_000_000);

    println!(
        "{:<8} {:>14} {:>14} {:>18}",
        "#nodes", "Ref (IV)", "Opt-D (IV)", "Opt-D (IV+2KNC)"
    );
    println!("{:-<58}", "");
    let mut at8 = (0.0, 0.0, 0.0);
    for n in [1usize, 2, 4, 8] {
        let reference = model.cluster_ns_per_day(&node, Mode::Ref, false, n, &shape);
        let opt_cpu = model.cluster_ns_per_day(&node, Mode::OptD, false, n, &shape);
        let opt_acc = model.cluster_ns_per_day(&node, Mode::OptD, true, n, &shape);
        if n == 8 {
            at8 = (reference, opt_cpu, opt_acc);
        }
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>18.3}",
            n, reference, opt_cpu, opt_acc
        );
    }

    println!("\nimprovement at 8 nodes relative to Ref (IV):");
    println!(
        "  Opt-D (IV)      : {:.2}x   (paper: 2.5x at 196 ranks)",
        at8.1 / at8.0
    );
    println!("  Opt-D (IV+2KNC) : {:.2}x   (paper: 6.5x)", at8.2 / at8.0);
    println!("\nshape: all three curves keep rising through 8 nodes and keep their ordering,");
    println!("matching the paper's conclusion that the vector optimizations 'port to large");
    println!("scale computations seamlessly'.");
}
