//! Figure 7: native execution on the Xeon Phi generations (KNC, KNL),
//! 512 000 atoms, Ref vs Opt-M. The paper annotates 4.71× (KNC) and 5.94×
//! (KNL), with a ≈3× generation-over-generation gain.

use arch_model::cost::{CostModel, Mode, WorkloadShape};
use arch_model::machines::Machine;
use bench::figure_header;

fn main() {
    figure_header(
        "Figure 7",
        "native execution on Xeon Phi: Ref vs Opt-M",
        "512 000 Si atoms; projections from the cost model",
    );
    let model = CostModel::default();
    let shape = WorkloadShape::silicon(512_000);
    let paper = [("KNC", 4.71), ("KNL", 5.94)];

    println!(
        "{:<6} {:>12} {:>12} {:>16} {:>16}",
        "", "Ref ns/day", "Opt-M ns/day", "speedup (repro)", "speedup (paper)"
    );
    println!("{:-<66}", "");
    let mut opt = Vec::new();
    for (name, paper_speedup) in paper {
        let m = Machine::by_name(name).unwrap();
        let reference = model.node_ns_per_day(&m, Mode::Ref, &shape);
        let optimized = model.node_ns_per_day(&m, Mode::OptM, &shape);
        opt.push(optimized);
        println!(
            "{:<6} {:>12.3} {:>12.3} {:>15.2}x {:>15.2}x",
            name,
            reference,
            optimized,
            optimized / reference,
            paper_speedup
        );
    }
    println!(
        "\nKNL over KNC (Opt-M): {:.2}x   (paper: ≈3x, tracking the ≈3x peak-performance gap)",
        opt[1] / opt[0]
    );
    println!(
        "single-threaded kernel speedup implied by the model: {:.1}x (paper quotes ≈9x 'pure')",
        model.kernel_speedup(arch_model::machines::Isa::Avx512, Mode::OptM)
    );
}
