//! Figure 3: validation of the single-precision solver — relative difference
//! of the total energy between the single- and double-precision solvers over
//! an NVE trajectory.
//!
//! The paper runs 32 000 atoms for 10⁶ steps and finds the deviation stays
//! within 0.002%. This binary runs a scaled-down trajectory (size and steps
//! configurable) and prints the same series.

use bench::figure_header;
use md_core::lattice::Lattice;
use md_core::prelude::*;
use md_core::units;
use tersoff::driver::{make_potential, ExecutionMode, Scheme, TersoffOptions};
use tersoff::params::TersoffParams;

fn total_energy_series(mode: ExecutionMode, steps: u64, every: u64) -> Vec<(u64, f64)> {
    let (sim_box, mut atoms) = Lattice::silicon([4, 4, 4]).build_perturbed(0.02, 99);
    let masses = vec![units::mass::SI];
    init_velocities(&mut atoms, &masses, 600.0, 4);
    let potential = make_potential(
        TersoffParams::silicon(),
        TersoffOptions {
            mode,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 1,
            backend: None,
        },
    );
    let mut sim = Simulation::new(
        atoms,
        sim_box,
        potential,
        SimulationConfig {
            masses,
            thermo_every: every,
            ..Default::default()
        },
    );
    sim.run(steps);
    sim.thermo_history
        .iter()
        .map(|t| (t.step, t.total))
        .collect()
}

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let every = (steps / 20).max(1);
    figure_header(
        "Figure 3",
        "relative total-energy difference, single vs double precision",
        &format!("512 Si atoms, {steps} NVE steps (paper: 32 000 atoms, 10⁶ steps)"),
    );

    let d = total_energy_series(ExecutionMode::OptD, steps, every);
    let s = total_energy_series(ExecutionMode::OptS, steps, every);

    println!(
        "{:>10} {:>18} {:>18} {:>14}",
        "step", "E_double (eV)", "E_single (eV)", "|ΔE|/|E|"
    );
    let mut worst = 0.0f64;
    for ((step, ed), (_, es)) in d.iter().zip(s.iter()) {
        let rel = ((es - ed) / ed).abs();
        worst = worst.max(rel);
        println!("{step:>10} {ed:>18.6} {es:>18.6} {rel:>14.3e}");
    }
    println!("\nmax |ΔE|/|E| measured : {worst:.3e}");
    println!("paper reports          : < 2.0e-5 over one million steps");
    println!(
        "conclusion             : {}",
        if worst < 2.0e-4 {
            "single precision deviation is negligible, matching the paper"
        } else {
            "deviation larger than expected — inspect the trajectory"
        }
    );
}
