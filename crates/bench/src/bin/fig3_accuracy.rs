//! Figure 3: validation of the single-precision solver — relative difference
//! of the total energy between the single- and double-precision solvers over
//! an NVE trajectory.
//!
//! The paper runs 32 000 atoms for 10⁶ steps and finds the deviation stays
//! within 0.002%. This binary executes the committed
//! `scenarios/fig3_accuracy.json` spec (the same file `tersoff-run` smokes
//! in CI) through the scenario API: the declared Opt-D/Opt-S matrix produces
//! the two trajectories whose thermo traces are differenced below. Pass a
//! step count to scale the trajectory.

use bench::figure_header;
use lammps_tersoff_vector::scenario::Scenario;
use tersoff::driver::ExecutionMode;

/// The spec is embedded so the binary runs from any working directory; the
/// file in `scenarios/` stays the single source of truth.
const SPEC: &str = include_str!("../../../../scenarios/fig3_accuracy.json");

fn main() {
    let mut scenario = Scenario::from_json(SPEC).expect("embedded scenario is valid");
    if let Some(steps) = std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        scenario.run.steps = steps;
        scenario.run.thermo_every = (steps / 20).max(1);
    }
    figure_header(
        "Figure 3",
        "relative total-energy difference, single vs double precision",
        &format!(
            "{} Si atoms, {} NVE steps (paper: 32 000 atoms, 10⁶ steps)",
            scenario.n_atoms(),
            scenario.run.steps
        ),
    );

    let outcome = scenario.execute(None).expect("scenario runs");
    let trace = |mode: ExecutionMode| {
        &outcome
            .variants
            .iter()
            .find(|v| v.variant.mode == mode)
            .expect("matrix declares this mode")
            .trace
    };
    let d = trace(ExecutionMode::OptD);
    let s = trace(ExecutionMode::OptS);

    println!(
        "{:>10} {:>18} {:>18} {:>14}",
        "step", "E_double (eV)", "E_single (eV)", "|ΔE|/|E|"
    );
    let mut worst = 0.0f64;
    for (td, ts) in d.iter().zip(s.iter()) {
        let rel = ((ts.total - td.total) / td.total).abs();
        worst = worst.max(rel);
        println!(
            "{:>10} {:>18.6} {:>18.6} {:>14.3e}",
            td.step, td.total, ts.total, rel
        );
    }
    println!("\nmax |ΔE|/|E| measured : {worst:.3e}");
    println!("paper reports          : < 2.0e-5 over one million steps");
    println!(
        "conclusion             : {}",
        if worst < 2.0e-4 {
            "single precision deviation is negligible, matching the paper"
        } else {
            "deviation larger than expected — inspect the trajectory"
        }
    );
}
