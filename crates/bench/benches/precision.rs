//! Precision-mode comparison (the Opt-D / Opt-S / Opt-M split of Fig. 4):
//! the same fused-pair kernel (scheme 1b) in double, single and mixed
//! precision, at the widths the paper would choose for each.

use bench::SiliconWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::potential::{ComputeOutput, Potential};
use std::time::Duration;
use tersoff::params::TersoffParams;
use tersoff::scheme_b::TersoffSchemeB;

fn bench_precision(c: &mut Criterion) {
    let workload = SiliconWorkload::new(1000);
    let mut out = ComputeOutput::zeros(workload.atoms.n_total());
    let mut group = c.benchmark_group("precision_modes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    let mut opt_d = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon());
    group.bench_function("opt_d_w8", |b| {
        b.iter(|| {
            opt_d.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    let mut opt_s = TersoffSchemeB::<f32, f32, 16>::new(TersoffParams::silicon());
    group.bench_function("opt_s_w16", |b| {
        b.iter(|| {
            opt_s.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    let mut opt_m = TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon());
    group.bench_function("opt_m_w16", |b| {
        b.iter(|| {
            opt_m.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
