//! Kernel-level comparison of the Tersoff implementations: the reference
//! (Algorithm 2), the scalar-optimized variant (Algorithm 3) and the three
//! vectorization schemes, all in double precision on the same silicon
//! workload, plus the thread-parallel force engine around the default Opt-M
//! kernel. This is the microbenchmark behind the paper's "isolated kernel"
//! speedup quotes.

use bench::SiliconWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::potential::{ComputeOutput, Potential};
use std::time::Duration;
use tersoff::driver::{make_potential, TersoffOptions};
use tersoff::params::TersoffParams;
use tersoff::reference::TersoffRef;
use tersoff::scalar_opt::TersoffOptD;
use tersoff::scheme_a::TersoffSchemeA;
use tersoff::scheme_b::TersoffSchemeB;
use tersoff::scheme_c::TersoffSchemeC;

fn bench_kernels(c: &mut Criterion) {
    let workload = SiliconWorkload::new(1000);
    let mut out = ComputeOutput::zeros(workload.atoms.n_total());
    let mut group = c.benchmark_group("tersoff_kernels");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    macro_rules! bench_impl {
        ($name:expr, $pot:expr) => {{
            let mut pot = $pot;
            group.bench_function($name, |b| {
                b.iter(|| {
                    pot.compute(
                        &workload.atoms,
                        &workload.sim_box,
                        &workload.neighbors,
                        &mut out,
                    )
                })
            });
        }};
    }

    bench_impl!("ref_algorithm2", TersoffRef::new(TersoffParams::silicon()));
    bench_impl!(
        "scalar_opt_algorithm3",
        TersoffOptD::new(TersoffParams::silicon())
    );
    bench_impl!(
        "scheme_a_w4_double",
        TersoffSchemeA::<f64, f64, 4>::new(TersoffParams::silicon())
    );
    bench_impl!(
        "scheme_b_w8_double",
        TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon())
    );
    bench_impl!(
        "scheme_c_w8_double",
        TersoffSchemeC::<f64, f64, 8>::new(TersoffParams::silicon())
    );
    // The threaded engine around the default Opt-M/1b kernel: the
    // thread-scaling axis of Fig. 5 at kernel granularity.
    for threads in [1usize, 2, 4] {
        bench_impl!(
            &format!("opt_m_1b_engine_t{threads}"),
            make_potential(
                TersoffParams::silicon(),
                TersoffOptions::default().with_threads(threads),
            )
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
