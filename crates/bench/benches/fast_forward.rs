//! Ablation of the fast-forward K-loop iteration (Sec. IV-C): the fused
//! scheme (1b) with and without it, at a long vector width where masking
//! waste matters most.

use bench::SiliconWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::potential::{ComputeOutput, Potential};
use std::time::Duration;
use tersoff::params::TersoffParams;
use tersoff::scheme_b::TersoffSchemeB;

fn bench_fast_forward(c: &mut Criterion) {
    let workload = SiliconWorkload::new(1000);
    let mut out = ComputeOutput::zeros(workload.atoms.n_total());
    let mut group = c.benchmark_group("fast_forward_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    let mut with_ff = TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon());
    group.bench_function("scheme_b_w16_fast_forward", |b| {
        b.iter(|| {
            with_ff.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    let mut without_ff =
        TersoffSchemeB::<f32, f64, 16>::new(TersoffParams::silicon()).without_fast_forward();
    group.bench_function("scheme_b_w16_naive_iteration", |b| {
        b.iter(|| {
            without_ff.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fast_forward);
criterion_main!(benches);
