//! Microbenchmarks of the vector-abstraction building blocks themselves:
//! reductions, conflict-handled scatter, and adjacent gathers.
//!
//! Two classes of cases:
//!
//! * the **free functions** (`sum_slice`, `adjacent_gather3`,
//!   `scatter_add3`, ...) — always the portable lane loops at the crate's
//!   own codegen, exactly what a caller outside a dispatched kernel gets;
//! * the same gather routed through `dispatch::run_kernel` on the
//!   portable and the host-detected instance, so the per-ISA trampoline's
//!   effect is measurable side by side. (`run_kernel`'s adapter hides the
//!   buffers behind an opaque struct — fine for an apples-to-apples
//!   instance comparison, but see `vektor/tests/perf_probe.rs` for why
//!   hot kernels declare their own entries instead.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vektor::backend::{Avx2S, Avx512D, Backend};
use vektor::conflict::{scatter_add3, scatter_add3_conflict_detect};
use vektor::dispatch::{self, BackendImpl, KernelBody};
use vektor::gather::{adjacent_gather3, adjacent_gather3_in};
use vektor::reduce::sum_slice;
use vektor::{SimdBackend, SimdF, SimdI, SimdM};

/// [`KernelBody`] adapter for the instance-comparison cases.
struct Gather3Probe<'a> {
    positions: &'a [f64],
    idx: &'a [usize; 8],
}

impl KernelBody for Gather3Probe<'_> {
    type Output = [SimdF<f64, 8>; 3];

    #[inline(always)]
    fn run<B: SimdBackend>(self) -> [SimdF<f64, 8>; 3] {
        adjacent_gather3_in::<B, f64, 8, 4>(self.positions, self.idx, SimdM::all_true())
    }
}

fn bench_vektor(c: &mut Criterion) {
    // Name both axes: the modeled ISA classes of the width/precision
    // configurations below, and which instance each case class executes.
    let detected = dispatch::default_backend();
    println!(
        "vektor building blocks (modeled classes {} and {}): free functions run \
         the portable lane loops; *_instance cases run the `{detected}` kernel \
         instance via dispatch::run_kernel",
        Avx512D::KIND.label(),
        Avx2S::KIND.label(),
    );
    let mut group = c.benchmark_group("vektor_building_blocks");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1000));

    let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    group.bench_function("sum_slice_w8", |b| b.iter(|| sum_slice::<f64, 8>(&data)));
    group.bench_function("sum_slice_w16", |b| b.iter(|| sum_slice::<f64, 16>(&data)));

    let positions: Vec<f64> = (0..4096 * 4).map(|i| i as f64).collect();
    let idx: [usize; 8] = [3, 99, 500, 7, 1023, 64, 2048, 4095];
    group.bench_function("adjacent_gather3_w8", |b| {
        b.iter(|| adjacent_gather3::<f64, 8, 4>(&positions, &idx, SimdM::all_true()))
    });
    group.bench_function("adjacent_gather3_w8_portable_instance", |b| {
        b.iter(|| {
            dispatch::run_kernel(
                BackendImpl::Portable,
                Gather3Probe {
                    positions: &positions,
                    idx: &idx,
                },
            )
        })
    });
    group.bench_function("adjacent_gather3_w8_detected_instance", |b| {
        b.iter(|| {
            dispatch::run_kernel(
                detected,
                Gather3Probe {
                    positions: &positions,
                    idx: &idx,
                },
            )
        })
    });

    let values = [SimdF::<f64, 8>::splat(1.0); 3];
    let conflict_idx = [5usize, 5, 7, 9, 5, 7, 11, 13];
    group.bench_function("scatter_add3_serialized", |b| {
        let mut target = vec![0.0f64; 64];
        b.iter(|| scatter_add3::<f64, 8, 3>(&mut target, &conflict_idx, SimdM::all_true(), values))
    });
    group.bench_function("scatter_add3_conflict_detect", |b| {
        let mut target = vec![0.0f64; 64];
        let iv = SimdI::from_usize_array(conflict_idx);
        b.iter(|| {
            scatter_add3_conflict_detect::<f64, 8, 3>(&mut target, iv, SimdM::all_true(), values)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vektor);
criterion_main!(benches);
