//! Microbenchmarks of the vector-abstraction building blocks themselves:
//! reductions, conflict-handled scatter, and adjacent gathers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vektor::backend::{Avx2S, Avx512D, Backend};
use vektor::conflict::{scatter_add3, scatter_add3_conflict_detect};
use vektor::gather::adjacent_gather3;
use vektor::reduce::sum_slice;
use vektor::{SimdF, SimdI, SimdM};

fn bench_vektor(c: &mut Criterion) {
    // Name both axes of what is being measured: the modeled ISA class of
    // the width/precision configurations below, and the implementation the
    // runtime dispatch actually executes on this host.
    println!(
        "vektor backends under measurement: {} and {}",
        Avx512D::KIND.executed_label(),
        Avx2S::KIND.executed_label()
    );
    let mut group = c.benchmark_group("vektor_building_blocks");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1000));

    let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.001).collect();
    group.bench_function("sum_slice_w8", |b| b.iter(|| sum_slice::<f64, 8>(&data)));
    group.bench_function("sum_slice_w16", |b| b.iter(|| sum_slice::<f64, 16>(&data)));

    let positions: Vec<f64> = (0..4096 * 4).map(|i| i as f64).collect();
    let idx: [usize; 8] = [3, 99, 500, 7, 1023, 64, 2048, 4095];
    group.bench_function("adjacent_gather3_w8", |b| {
        b.iter(|| adjacent_gather3::<f64, 8, 4>(&positions, &idx, SimdM::all_true()))
    });

    let values = [SimdF::<f64, 8>::splat(1.0); 3];
    let conflict_idx = [5usize, 5, 7, 9, 5, 7, 11, 13];
    group.bench_function("scatter_add3_serialized", |b| {
        let mut target = vec![0.0f64; 64];
        b.iter(|| scatter_add3::<f64, 8, 3>(&mut target, &conflict_idx, SimdM::all_true(), values))
    });
    group.bench_function("scatter_add3_conflict_detect", |b| {
        let mut target = vec![0.0f64; 64];
        let iv = SimdI::from_usize_array(conflict_idx);
        b.iter(|| {
            scatter_add3_conflict_detect::<f64, 8, 3>(&mut target, iv, SimdM::all_true(), values)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vektor);
criterion_main!(benches);
