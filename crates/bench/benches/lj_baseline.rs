//! Pair-potential baseline: the Lennard-Jones kernel on the same workload as
//! the Tersoff kernels, quantifying the "multi-body potentials are far more
//! expensive per pair" premise of the paper's introduction.

use bench::SiliconWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::pair_lj::LennardJones;
use md_core::potential::{ComputeOutput, Potential};
use std::time::Duration;
use tersoff::params::TersoffParams;
use tersoff::reference::TersoffRef;

fn bench_lj_vs_tersoff(c: &mut Criterion) {
    let workload = SiliconWorkload::new(1000);
    let mut out = ComputeOutput::zeros(workload.atoms.n_total());
    let mut group = c.benchmark_group("pair_vs_multibody");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    let mut lj = LennardJones::new(0.1, 2.0, 3.0);
    group.bench_function("lennard_jones_pair", |b| {
        b.iter(|| {
            lj.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    let mut tersoff = TersoffRef::new(TersoffParams::silicon());
    group.bench_function("tersoff_multibody_ref", |b| {
        b.iter(|| {
            tersoff.compute(
                &workload.atoms,
                &workload.sim_box,
                &workload.neighbors,
                &mut out,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lj_vs_tersoff);
criterion_main!(benches);
