//! Neighbor-list infrastructure benchmarks: the binned O(N) builder against
//! the naive O(N²) reference, and the cutoff filtering step of Sec. IV-D that
//! strips skin atoms before the vector kernels run.

use criterion::{criterion_group, criterion_main, Criterion};
use md_core::lattice::Lattice;
use md_core::neighbor::{NeighborList, NeighborSettings};
use std::time::Duration;
use tersoff::filter::{FilteredNeighbors, PackedPairs};

fn bench_neighbor(c: &mut Criterion) {
    let (sim_box, atoms) = Lattice::silicon([5, 5, 5]).build_perturbed(0.05, 7);
    let settings = NeighborSettings::new(3.0, 1.0);
    let list = NeighborList::build_binned(&atoms, &sim_box, settings);

    let mut group = c.benchmark_group("neighbor_lists");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("binned_build_1000_atoms", |b| {
        b.iter(|| NeighborList::build_binned(&atoms, &sim_box, settings))
    });
    group.bench_function("naive_build_1000_atoms", |b| {
        b.iter(|| NeighborList::build_naive(&atoms, &sim_box, settings))
    });
    group.bench_function("filter_by_max_cutoff", |b| {
        b.iter(|| FilteredNeighbors::build(&atoms, &sim_box, &list, 3.0))
    });
    let filtered = FilteredNeighbors::build(&atoms, &sim_box, &list, 3.0);
    group.bench_function("pack_pairs", |b| b.iter(|| PackedPairs::build(&filtered)));
    group.finish();
}

criterion_group!(benches, bench_neighbor);
criterion_main!(benches);
