//! The reference Tersoff implementation (`Ref` in the paper's terminology).
//!
//! This mirrors the implementation shipped with LAMMPS: double precision, the
//! triple-loop structure of Algorithm 2, no pre-computation of the ζ
//! derivatives (the second K loop recomputes them), no neighbor-list
//! filtering (skin atoms are rejected inside the loops by cutoff tests), and
//! parameter lookup through the full (i, j, k) indirection on every access.
//! Every optimized variant in this crate is validated against it.

use crate::functions::{self, ParamT};
use crate::params::TersoffParams;
use md_core::atom::AtomData;
use md_core::force_engine::RangePotential;
use md_core::neighbor::NeighborList;
use md_core::potential::{ComputeOutput, Potential, VOIGT};
use md_core::simbox::SimBox;
use std::any::Any;
use std::ops::Range;

/// The unoptimized double-precision Tersoff potential.
#[derive(Clone, Debug)]
pub struct TersoffRef {
    params: TersoffParams,
}

impl TersoffRef {
    /// Create from a parameter set.
    pub fn new(params: TersoffParams) -> Self {
        TersoffRef { params }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &TersoffParams {
        &self.params
    }

    #[inline]
    fn param(&self, ti: usize, tj: usize, tk: usize) -> ParamT<f64> {
        ParamT::from_param(self.params.triplet(ti, tj, tk))
    }

    /// Accumulate the contributions of central atoms in `range` into `out`.
    /// All force writes (i, j and k side) go through `out`, so concurrent
    /// calls need per-thread outputs — exactly what the force engine
    /// provides.
    fn accumulate_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        out: &mut ComputeOutput,
    ) {
        for i in range {
            let xi = atoms.x[i];
            let ti = atoms.type_[i];
            let jlist = neighbors.neighbors_of(i);

            for &j in jlist {
                let tj = atoms.type_[j];
                let p_ij = self.param(ti, tj, tj);
                let del_ij = sim_box.min_image(xi, atoms.x[j]);
                let rsq_ij = del_ij[0] * del_ij[0] + del_ij[1] * del_ij[1] + del_ij[2] * del_ij[2];
                if rsq_ij >= p_ij.cutsq {
                    continue;
                }
                let rij = rsq_ij.sqrt();

                // First K loop: accumulate ζ_ij (Algorithm 2 keeps only the
                // scalar sum here and recomputes the per-k terms later).
                let mut zeta_ij = 0.0;
                for &k in jlist {
                    if k == j {
                        continue;
                    }
                    let tk = atoms.type_[k];
                    let p_ijk = self.param(ti, tj, tk);
                    let del_ik = sim_box.min_image(xi, atoms.x[k]);
                    let rsq_ik =
                        del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2];
                    if rsq_ik >= p_ijk.cutsq {
                        continue;
                    }
                    let rik = rsq_ik.sqrt();
                    let cos_theta =
                        (del_ij[0] * del_ik[0] + del_ij[1] * del_ik[1] + del_ij[2] * del_ik[2])
                            / (rij * rik);
                    zeta_ij += functions::zeta_term(&p_ijk, rij, rik, cos_theta);
                }

                // Pair terms: repulsive + bond-order-weighted attractive.
                let (e_rep, de_rep) = functions::repulsive(&p_ij, rij);
                let (e_att, de_att, de_dzeta) = functions::force_zeta(&p_ij, rij, zeta_ij);
                out.energy += e_rep + e_att;

                // F_i = (dE/dr)·(x_j − x_i)/r ; F_j the opposite.
                let fpair = (de_rep + de_att) / rij;
                for d in 0..3 {
                    out.forces[i][d] += fpair * del_ij[d];
                    out.forces[j][d] -= fpair * del_ij[d];
                }
                out.virial -= fpair * rsq_ij;
                for (c, (a, b)) in VOIGT.iter().enumerate() {
                    out.virial_tensor[c] -= fpair * del_ij[*a] * del_ij[*b];
                }

                // Second K loop: apply the ζ-gradient forces with the
                // prefactor δζ = ∂E/∂ζ.
                let prefactor = -de_dzeta;
                for &k in jlist {
                    if k == j {
                        continue;
                    }
                    let tk = atoms.type_[k];
                    let p_ijk = self.param(ti, tj, tk);
                    let del_ik = sim_box.min_image(xi, atoms.x[k]);
                    let rsq_ik =
                        del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2];
                    if rsq_ik >= p_ijk.cutsq {
                        continue;
                    }
                    let rik = rsq_ik.sqrt();
                    let (_, grad_j, grad_k) =
                        functions::zeta_term_and_gradients(&p_ijk, del_ij, rij, del_ik, rik);
                    let mut fj = [0.0; 3];
                    let mut fk = [0.0; 3];
                    for d in 0..3 {
                        fj[d] = prefactor * grad_j[d];
                        fk[d] = prefactor * grad_k[d];
                        let fi = -(fj[d] + fk[d]);
                        out.forces[i][d] += fi;
                        out.forces[j][d] += fj[d];
                        out.forces[k][d] += fk[d];
                        out.virial += del_ij[d] * fj[d] + del_ik[d] * fk[d];
                    }
                    for (c, (a, b)) in VOIGT.iter().enumerate() {
                        out.virial_tensor[c] += del_ij[*a] * fj[*b] + del_ik[*a] * fk[*b];
                    }
                }
            }
        }
    }
}

impl Potential for TersoffRef {
    fn name(&self) -> String {
        "tersoff/ref".to_string()
    }

    fn cutoff(&self) -> f64 {
        self.params.max_cutoff
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        out.reset(atoms.n_total());
        self.accumulate_range(atoms, sim_box, neighbors, 0..atoms.n_local, out);
    }
}

impl RangePotential for TersoffRef {
    fn prepare(&mut self, _atoms: &AtomData, _sim_box: &SimBox, _neighbors: &NeighborList) {}

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(())
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        range: Range<usize>,
        _scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        self.accumulate_range(atoms, sim_box, neighbors, range, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn compute_on(
        lattice_cells: [usize; 3],
        perturb: f64,
        seed: u64,
    ) -> (ComputeOutput, AtomData, SimBox) {
        let (sim_box, atoms) = Lattice::silicon(lattice_cells).build_perturbed(perturb, seed);
        let mut pot = TersoffRef::new(TersoffParams::silicon());
        let list =
            NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(pot.cutoff(), 1.0));
        let mut out = ComputeOutput::zeros(atoms.n_total());
        pot.compute(&atoms, &sim_box, &list, &mut out);
        (out, atoms, sim_box)
    }

    #[test]
    fn cohesive_energy_of_perfect_silicon() {
        // The Tersoff Si(C) parameterization gives a cohesive energy of
        // ≈ −4.63 eV/atom for the ideal diamond structure.
        let (out, atoms, _) = compute_on([2, 2, 2], 0.0, 0);
        let e_per_atom = out.energy / atoms.n_local as f64;
        assert!(
            (e_per_atom + 4.63).abs() < 0.05,
            "cohesive energy {e_per_atom} eV/atom"
        );
    }

    #[test]
    fn forces_vanish_on_perfect_lattice() {
        let (out, _, _) = compute_on([2, 2, 2], 0.0, 0);
        assert!(
            out.max_force_component() < 1e-9,
            "max |F| = {}",
            out.max_force_component()
        );
    }

    #[test]
    fn net_force_is_zero_on_perturbed_lattice() {
        let (out, _, _) = compute_on([2, 2, 2], 0.08, 3);
        let net = out.net_force();
        for d in 0..3 {
            assert!(net[d].abs() < 1e-9, "net force {net:?}");
        }
        // And forces are now definitely non-zero.
        assert!(out.max_force_component() > 1e-3);
    }

    #[test]
    fn forces_match_numerical_gradient_of_energy() {
        // Move a single atom along each axis and compare the analytic force
        // to the central difference of the total energy.
        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 11);
        let mut pot = TersoffRef::new(TersoffParams::silicon());
        let settings = NeighborSettings::new(pot.cutoff(), 1.0);

        let energy_of = |atoms: &AtomData| {
            let list = NeighborList::build_binned(atoms, &sim_box, settings);
            let mut out = ComputeOutput::zeros(atoms.n_total());
            let mut p = TersoffRef::new(TersoffParams::silicon());
            p.compute(atoms, &sim_box, &list, &mut out);
            out.energy
        };

        let list = NeighborList::build_binned(&atoms, &sim_box, settings);
        let mut out = ComputeOutput::zeros(atoms.n_total());
        pot.compute(&atoms, &sim_box, &list, &mut out);

        let h = 1e-5;
        for &atom in &[0usize, 7, 33] {
            for d in 0..3 {
                let mut plus = atoms.clone();
                plus.x[atom][d] += h;
                let mut minus = atoms.clone();
                minus.x[atom][d] -= h;
                let numeric = -(energy_of(&plus) - energy_of(&minus)) / (2.0 * h);
                let analytic = out.forces[atom][d];
                assert!(
                    (analytic - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                    "atom {atom} dim {d}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn energy_is_invariant_under_rigid_translation() {
        let (sim_box, mut atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 5);
        let mut pot = TersoffRef::new(TersoffParams::silicon());
        let settings = NeighborSettings::new(pot.cutoff(), 1.0);
        let list = NeighborList::build_binned(&atoms, &sim_box, settings);
        let mut out1 = ComputeOutput::zeros(atoms.n_total());
        pot.compute(&atoms, &sim_box, &list, &mut out1);

        for x in atoms.x.iter_mut() {
            *x = sim_box.wrap([x[0] + 1.37, x[1] - 0.52, x[2] + 3.1]);
        }
        let list = NeighborList::build_binned(&atoms, &sim_box, settings);
        let mut out2 = ComputeOutput::zeros(atoms.n_total());
        pot.compute(&atoms, &sim_box, &list, &mut out2);

        assert!((out1.energy - out2.energy).abs() < 1e-8 * out1.energy.abs());
    }

    #[test]
    fn isolated_dimer_has_no_three_body_term() {
        // Two atoms only: ζ = 0, b = 1, so the energy reduces to
        // f_C(r)[f_R(r) − B e^{−λ₂ r}] exactly.
        let sim_box = SimBox::cubic(50.0);
        let mut atoms = AtomData::new();
        let r = 2.35;
        atoms.push_local([10.0, 10.0, 10.0], [0.0; 3], 0, 1);
        atoms.push_local([10.0 + r, 10.0, 10.0], [0.0; 3], 0, 2);
        let mut pot = TersoffRef::new(TersoffParams::silicon());
        let list =
            NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(pot.cutoff(), 0.5));
        let mut out = ComputeOutput::zeros(2);
        pot.compute(&atoms, &sim_box, &list, &mut out);

        let p = ParamT::<f64>::from_param(TersoffParams::silicon().pair(0, 0));
        let expected =
            functions::fc(&p, r) * (p.biga * (-p.lam1 * r).exp() - p.bigb * (-p.lam2 * r).exp());
        assert!(
            (out.energy - expected).abs() < 1e-10,
            "dimer energy {} vs {}",
            out.energy,
            expected
        );
        // Forces are equal and opposite along the bond.
        assert!((out.forces[0][0] + out.forces[1][0]).abs() < 1e-12);
        assert!(out.forces[0][1].abs() < 1e-12);
    }

    #[test]
    fn multispecies_sic_runs_and_is_translation_invariant() {
        let (sim_box, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.03, 9);
        let mut pot = TersoffRef::new(TersoffParams::silicon_carbide());
        let list =
            NeighborList::build_binned(&atoms, &sim_box, NeighborSettings::new(pot.cutoff(), 1.0));
        let mut out = ComputeOutput::zeros(atoms.n_total());
        pot.compute(&atoms, &sim_box, &list, &mut out);
        assert!(
            out.energy < 0.0,
            "SiC crystal should be bound, E = {}",
            out.energy
        );
        let net = out.net_force();
        for d in 0..3 {
            assert!(net[d].abs() < 1e-9);
        }
    }
}
