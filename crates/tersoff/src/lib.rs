//! # tersoff — the paper's core contribution
//!
//! A performance-portable implementation of the Tersoff multi-body potential,
//! reproducing *The Vectorization of the Tersoff Multi-Body Potential: An
//! Exercise in Performance Portability* (Höhnerbach, Ismail, Bientinesi,
//! SC'16):
//!
//! * [`params`] — published parameter sets (Si, C, Ge, SiC), LAMMPS-format
//!   parsing, and the derived constants the kernels pre-compute.
//! * [`functions`] — the potential functions f_C, f_R, f_A, g, b_ij, ζ and
//!   their analytic derivatives, generic over the compute precision.
//! * [`reference`] — the `Ref` baseline: LAMMPS' Algorithm-2 structure in
//!   double precision.
//! * [`scalar_opt`] — the scalar optimizations of Sec. IV (Algorithm 3):
//!   pre-computed ζ derivatives with a `kmax` scratch + fallback, reduced
//!   parameter indirection, neighbor-list filtering.
//! * [`filter`] — the "filter" component that feeds the vector kernels.
//! * [`vector_kernel`] — the vectorized potential functions over
//!   `vektor::SimdF` lanes.
//! * [`scheme_a`], [`scheme_b`], [`scheme_c`] — the three I/J mappings of
//!   Fig. 1: J-across-lanes, fused-IJ-across-lanes (with the fast-forward K
//!   loop of Sec. IV-C and conflict-handled force scatter), and
//!   I-across-lanes (the GPU/warp analog).
//! * [`stats`] — lane-occupancy and operation instrumentation used to
//!   regenerate Fig. 2 and to feed the architecture cost model.
//! * [`driver`] — the `Ref` / `Opt-D` / `Opt-S` / `Opt-M` execution modes of
//!   Sec. V-E as ready-made [`md_core::potential::Potential`] objects.

// Kernel code indexes spatial components and lanes with explicit
// `for d in 0..3` / `for lane in 0..W` loops to mirror the paper's
// pseudocode; clippy's iterator rewrites are deliberately not applied.
#![allow(clippy::needless_range_loop)]

pub mod accumulate;
pub mod driver;
pub mod filter;
pub mod functions;
pub mod pair_kernel;
pub mod params;
pub mod reference;
pub mod scalar_opt;
pub mod scheme_a;
pub mod scheme_b;
pub mod scheme_c;
pub mod stats;
pub mod vector_kernel;

pub use driver::{make_potential, ExecutionMode, Scheme, TersoffOptions};
pub use params::{TersoffParam, TersoffParams};
pub use reference::TersoffRef;
pub use scalar_opt::{TersoffOptD, TersoffOptM, TersoffOptS, TersoffScalarOpt};
pub use scheme_a::TersoffSchemeA;
pub use scheme_b::TersoffSchemeB;
pub use scheme_c::TersoffSchemeC;
pub use stats::KernelStats;

/// Commonly used items.
pub mod prelude {
    pub use crate::driver::{make_potential, ExecutionMode, Scheme, TersoffOptions};
    pub use crate::params::{TersoffParam, TersoffParams};
    pub use crate::reference::TersoffRef;
    pub use crate::scalar_opt::{TersoffOptD, TersoffOptM, TersoffOptS};
    pub use crate::scheme_a::TersoffSchemeA;
    pub use crate::scheme_b::TersoffSchemeB;
    pub use crate::scheme_c::TersoffSchemeC;
    pub use crate::stats::KernelStats;
}
