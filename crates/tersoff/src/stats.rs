//! Kernel instrumentation: lane occupancy and operation counts.
//!
//! Two of the paper's figures are about *how well the vector lanes are used*
//! rather than about wall-clock time: Fig. 2 visualizes the mask status of
//! the K loop with and without the fast-forward optimization, and the text
//! quotes occupancy numbers ("no more than four lanes will be active at a
//! time", "95% of the threads in a warp might be inactive"). [`KernelStats`]
//! collects exactly those numbers from the vectorized kernels, and also
//! counts the vector iterations the cost model in `arch-model` consumes.

use serde::{Deserialize, Serialize};

/// Lane-occupancy and iteration statistics of one kernel invocation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Vector width the kernel ran with.
    pub width: usize,
    /// Number of vectors of (i, j) pairs processed by the pair-level code.
    pub pair_vectors: u64,
    /// Total pair slots = `pair_vectors * width`.
    pub pair_slots: u64,
    /// Pair slots that carried real work (lane active at the pair level).
    pub pair_active: u64,
    /// Number of K-loop vector iterations that performed computation.
    pub k_compute_iterations: u64,
    /// Number of K-loop iterations spent only advancing lanes
    /// ("spinning" — the red shades of Fig. 2).
    pub k_spin_iterations: u64,
    /// Active lanes summed over all computing K iterations.
    pub k_active_lanes: u64,
    /// Histogram of active-lane counts over computing K iterations
    /// (`histogram[c]` = iterations with exactly `c` active lanes).
    pub k_active_histogram: Vec<u64>,
    /// Scalar fallback invocations (work that bypassed the vector kernel).
    pub scalar_fallbacks: u64,
}

impl KernelStats {
    /// New statistics collector for a given vector width.
    pub fn new(width: usize) -> Self {
        KernelStats {
            width,
            k_active_histogram: vec![0; width + 1],
            ..Default::default()
        }
    }

    /// Record one vector of pairs entering the computational component.
    #[inline]
    pub fn record_pair_vector(&mut self, active_lanes: usize) {
        self.pair_vectors += 1;
        self.pair_slots += self.width as u64;
        self.pair_active += active_lanes as u64;
    }

    /// Record one K-loop iteration that performed computation with
    /// `active_lanes` lanes participating.
    #[inline]
    pub fn record_k_compute(&mut self, active_lanes: usize) {
        self.k_compute_iterations += 1;
        self.k_active_lanes += active_lanes as u64;
        if self.k_active_histogram.is_empty() {
            self.k_active_histogram = vec![0; self.width + 1];
        }
        let bucket = active_lanes.min(self.width);
        self.k_active_histogram[bucket] += 1;
    }

    /// Record one K-loop iteration that only advanced lanes (fast-forward
    /// spin or masked-out work).
    #[inline]
    pub fn record_k_spin(&mut self) {
        self.k_spin_iterations += 1;
    }

    /// Record work that had to fall back to scalar execution.
    #[inline]
    pub fn record_scalar_fallback(&mut self) {
        self.scalar_fallbacks += 1;
    }

    /// Pair-level lane occupancy in `[0, 1]`.
    pub fn pair_occupancy(&self) -> f64 {
        if self.pair_slots == 0 {
            0.0
        } else {
            self.pair_active as f64 / self.pair_slots as f64
        }
    }

    /// Average active lanes per computing K iteration.
    pub fn k_mean_active_lanes(&self) -> f64 {
        if self.k_compute_iterations == 0 {
            0.0
        } else {
            self.k_active_lanes as f64 / self.k_compute_iterations as f64
        }
    }

    /// K-loop occupancy in `[0, 1]` counting only computing iterations.
    pub fn k_occupancy(&self) -> f64 {
        self.k_mean_active_lanes() / self.width.max(1) as f64
    }

    /// Fraction of K-loop iterations that were pure spinning.
    pub fn k_spin_fraction(&self) -> f64 {
        let total = self.k_compute_iterations + self.k_spin_iterations;
        if total == 0 {
            0.0
        } else {
            self.k_spin_iterations as f64 / total as f64
        }
    }

    /// Total K-loop vector iterations (compute + spin) — the quantity the
    /// fast-forward optimization trades against occupancy.
    pub fn k_total_iterations(&self) -> u64 {
        self.k_compute_iterations + self.k_spin_iterations
    }

    /// Merge statistics from another invocation (e.g. accumulate over steps).
    pub fn merge(&mut self, other: &KernelStats) {
        assert_eq!(
            self.width, other.width,
            "cannot merge stats of different widths"
        );
        self.pair_vectors += other.pair_vectors;
        self.pair_slots += other.pair_slots;
        self.pair_active += other.pair_active;
        self.k_compute_iterations += other.k_compute_iterations;
        self.k_spin_iterations += other.k_spin_iterations;
        self.k_active_lanes += other.k_active_lanes;
        self.scalar_fallbacks += other.scalar_fallbacks;
        if self.k_active_histogram.len() < other.k_active_histogram.len() {
            self.k_active_histogram
                .resize(other.k_active_histogram.len(), 0);
        }
        for (i, &v) in other.k_active_histogram.iter().enumerate() {
            self.k_active_histogram[i] += v;
        }
    }

    /// Reset all counters, keeping the width.
    pub fn reset(&mut self) {
        *self = KernelStats::new(self.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_accounting() {
        let mut s = KernelStats::new(8);
        s.record_pair_vector(8);
        s.record_pair_vector(4);
        assert_eq!(s.pair_vectors, 2);
        assert!((s.pair_occupancy() - 0.75).abs() < 1e-12);

        s.record_k_compute(8);
        s.record_k_compute(2);
        s.record_k_spin();
        assert_eq!(s.k_total_iterations(), 3);
        assert!((s.k_mean_active_lanes() - 5.0).abs() < 1e-12);
        assert!((s.k_occupancy() - 5.0 / 8.0).abs() < 1e-12);
        assert!((s.k_spin_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.k_active_histogram[8], 1);
        assert_eq!(s.k_active_histogram[2], 1);
    }

    #[test]
    fn empty_stats_report_zero() {
        let s = KernelStats::new(4);
        assert_eq!(s.pair_occupancy(), 0.0);
        assert_eq!(s.k_mean_active_lanes(), 0.0);
        assert_eq!(s.k_spin_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelStats::new(4);
        let mut b = KernelStats::new(4);
        a.record_k_compute(4);
        b.record_k_compute(2);
        b.record_k_spin();
        b.record_scalar_fallback();
        a.merge(&b);
        assert_eq!(a.k_compute_iterations, 2);
        assert_eq!(a.k_spin_iterations, 1);
        assert_eq!(a.scalar_fallbacks, 1);
        assert_eq!(a.k_active_histogram[4], 1);
        assert_eq!(a.k_active_histogram[2], 1);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = KernelStats::new(4);
        a.merge(&KernelStats::new(8));
    }

    #[test]
    fn reset_keeps_width() {
        let mut s = KernelStats::new(16);
        s.record_pair_vector(10);
        s.reset();
        assert_eq!(s.width, 16);
        assert_eq!(s.pair_vectors, 0);
        assert_eq!(s.k_active_histogram.len(), 17);
    }
}
