//! Vectorization scheme (1b): the I and J loops fused and mapped onto the
//! vector lanes (Fig. 1b of the paper).
//!
//! This is the scheme for long vectors (8 or 16 lanes) where one atom's
//! neighbor list is far too short to fill a vector: the "filter" component
//! packs every in-cutoff (i, j) pair into a flat list and the computational
//! component consumes `W` pairs at a time, so the pair-level lanes are always
//! (nearly) full. The price is that atom i now differs between lanes:
//!
//! * the K loop traverses a different neighbor list in every lane, handled
//!   with the fast-forward iteration of Sec. IV-C;
//! * force updates may target the same atom from several lanes, handled with
//!   serialized (conflict-safe) scatter-adds — the `ordered simd` /
//!   AVX-512CD discussion of Sec. V-A.

use crate::accumulate::{flat_f64_forces, AccView};
use crate::filter::Prepared;
use crate::pair_kernel::{process_pair_vector, Accumulators, PairKernelCtx};
use crate::params::TersoffParams;
use crate::stats::KernelStats;
use crate::vector_kernel::PackedParams;
use md_core::atom::AtomData;
use md_core::force_engine::RangePotential;
use md_core::neighbor::NeighborList;
use md_core::potential::{ComputeOutput, Potential};
use md_core::simbox::SimBox;
use std::any::Any;
use std::ops::Range;
use vektor::dispatch::{self, BackendImpl};
use vektor::{Real, SimdBackend, SimdM};

/// Scheme (1b): fused I·J across the vector lanes.
#[derive(Clone, Debug)]
pub struct TersoffSchemeB<T: Real, A: Real, const W: usize> {
    params: TersoffParams,
    packed: PackedParams<T>,
    /// Lane-occupancy statistics of the last `compute` call (filled when
    /// `collect_stats` is set).
    pub stats: KernelStats,
    /// Whether to collect statistics.
    pub collect_stats: bool,
    /// Use the fast-forward K iteration (default true). Setting this to
    /// false reproduces the "unoptimized" left half of Fig. 2 for the
    /// ablation benchmark.
    pub fast_forward: bool,
    /// Per-step shared state (filtered lists, packed pairs, packed
    /// positions), refreshed in place by [`RangePotential::prepare`].
    prep: Prepared<T>,
    /// Scratch for the single-threaded [`Potential::compute`] entry point.
    own_scratch: PairSchemeScratch<A>,
    /// The vektor implementation this kernel instance executes (selected at
    /// construction, kernel-granular — see `vektor::dispatch`).
    backend: BackendImpl,
    _acc: std::marker::PhantomData<A>,
}

/// Reusable per-thread scratch shared by the pair-vector schemes (1b)/(1c):
/// the accumulation buffers plus per-thread kernel statistics.
#[derive(Clone, Debug, Default)]
pub struct PairSchemeScratch<A: Real> {
    /// Force/energy/virial accumulators in the accumulation precision.
    pub acc: Accumulators<A>,
    /// Per-thread lane-occupancy statistics.
    pub stats: KernelStats,
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeB<T, A, W> {
    /// Create from a parameter set.
    pub fn new(params: TersoffParams) -> Self {
        let packed = PackedParams::new(&params);
        TersoffSchemeB {
            params,
            packed,
            stats: KernelStats::new(W),
            collect_stats: false,
            fast_forward: true,
            prep: Prepared::default(),
            own_scratch: PairSchemeScratch::default(),
            backend: dispatch::default_backend(),
            _acc: std::marker::PhantomData,
        }
    }

    /// Select the vektor implementation this kernel instance executes
    /// (clamped to host support; results are bitwise identical either way).
    pub fn with_backend(mut self, backend: BackendImpl) -> Self {
        self.backend = dispatch::clamp(backend);
        self
    }

    /// The vektor implementation this kernel instance executes.
    pub fn backend(&self) -> BackendImpl {
        self.backend
    }

    /// Enable statistics collection.
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// Disable the fast-forward optimization (ablation).
    pub fn without_fast_forward(mut self) -> Self {
        self.fast_forward = false;
        self
    }

    /// The parameter set in use.
    pub fn params(&self) -> &TersoffParams {
        &self.params
    }
}

impl<T: Real, A: Real, const W: usize> Potential for TersoffSchemeB<T, A, W> {
    fn name(&self) -> String {
        format!("tersoff/scheme-b/w{W}")
    }

    fn cutoff(&self) -> f64 {
        self.params.max_cutoff
    }

    fn executed_backend(&self) -> Option<&'static str> {
        Some(self.backend.name())
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.prepare(atoms, sim_box, neighbors);
        out.reset(atoms.n_total());
        let mut scratch = std::mem::take(&mut self.own_scratch);
        if scratch.stats.width != W {
            scratch.stats = KernelStats::new(W);
        }
        self.range_kernel(atoms, sim_box, 0..atoms.n_local, &mut scratch, out);
        self.absorb(&mut scratch);
        self.own_scratch = scratch;
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeB<T, A, W> {
    /// Fold per-thread diagnostics back into the potential.
    fn absorb(&mut self, scratch: &mut PairSchemeScratch<A>) {
        if self.collect_stats {
            self.stats.merge(&scratch.stats);
            scratch.stats.reset();
        }
    }

    /// The actual kernel over the packed pairs of a contiguous range of
    /// central atoms (pairs of one atom are contiguous in the packed list).
    /// Allocation-free in steady state. For `A = f64` the forces accumulate
    /// directly in `out` (no scratch buffer, no fold); reduced precisions
    /// use the `A`-typed scratch buffer and fold once at the end.
    fn range_kernel(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        range: Range<usize>,
        scratch: &mut PairSchemeScratch<A>,
        out: &mut ComputeOutput,
    ) {
        let pairs = &self.prep.pairs;
        if self.collect_stats {
            scratch.stats.reset();
        }
        let pair_lo = pairs.first_pair[range.start];
        let pair_hi = pairs.first_pair[range.end];
        if pair_lo == pair_hi {
            return;
        }

        let lengths_f64 = sim_box.lengths();
        let ctx = PairKernelCtx {
            packed: &self.packed,
            positions: &self.prep.packed_x,
            types: &atoms.type_,
            filtered: &self.prep.filtered,
            lengths: [
                T::from_f64(lengths_f64[0]),
                T::from_f64(lengths_f64[1]),
                T::from_f64(lengths_f64[2]),
            ],
            periodic: sim_box.periodic,
            fast_forward: self.fast_forward,
        };

        let mut energy = A::ZERO;
        let mut virial = A::ZERO;
        let mut tensor = [A::ZERO; 6];
        if let Some(direct) = flat_f64_forces::<A>(&mut out.forces) {
            let mut acc = AccView {
                forces: direct,
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.pair_loop_dispatch(&ctx, pair_lo, pair_hi, &mut acc, &mut scratch.stats);
        } else {
            scratch.acc.reset(atoms.n_total());
            let mut acc = AccView {
                forces: scratch.acc.forces.as_mut_slice(),
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.pair_loop_dispatch(&ctx, pair_lo, pair_hi, &mut acc, &mut scratch.stats);
            scratch.acc.fold_into(out);
        }
        out.energy += energy.to_f64();
        out.virial += virial.to_f64();
        for (dst, src) in out.virial_tensor.iter_mut().zip(tensor.iter()) {
            *dst += src.to_f64();
        }
    }

    /// The pair-vector loop, writing into the borrowed accumulation target.
    /// Generic over the executing backend `B` and `#[inline(always)]` so
    /// the loop — including every [`process_pair_vector`] it drives —
    /// compiles inside the per-ISA `#[target_feature]` entries below.
    #[inline(always)]
    fn pair_loop<B: SimdBackend>(
        &self,
        ctx: &PairKernelCtx<'_, T>,
        pair_lo: usize,
        pair_hi: usize,
        acc: &mut AccView<'_, A>,
        stats: &mut KernelStats,
    ) {
        let pairs = &self.prep.pairs;
        let mut pv = pair_lo;
        while pv < pair_hi {
            let lane_count = (pair_hi - pv).min(W);
            let lane_mask = SimdM::<W>::prefix(lane_count);
            let mut i_idx = [pairs.i[pv] as usize; W];
            let mut j_idx = [pairs.j[pv] as usize; W];
            for lane in 0..lane_count {
                i_idx[lane] = pairs.i[pv + lane] as usize;
                j_idx[lane] = pairs.j[pv + lane] as usize;
            }
            let stats = if self.collect_stats {
                Some(&mut *stats)
            } else {
                None
            };
            process_pair_vector::<B, T, A, W>(ctx, &i_idx, &j_idx, lane_mask, acc, stats);
            pv += W;
        }
    }
}

impl<T: Real, A: Real, const W: usize> RangePotential for TersoffSchemeB<T, A, W> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        if self.collect_stats {
            self.stats.reset();
        }
        self.prep
            .refresh(atoms, sim_box, neighbors, self.params.max_cutoff, true);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(PairSchemeScratch::<A> {
            stats: KernelStats::new(W),
            ..Default::default()
        })
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        _neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        let scratch = scratch
            .downcast_mut::<PairSchemeScratch<A>>()
            .expect("scratch type mismatch");
        self.range_kernel(atoms, sim_box, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        let scratch = scratch
            .downcast_mut::<PairSchemeScratch<A>>()
            .expect("scratch type mismatch");
        self.absorb(scratch);
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeB<T, A, W> {
    vektor::multiversion_entries! {
        /// The per-ISA trampoline of scheme (1b): `pair_loop` is
        /// `#[inline(always)]`, so each generated `#[target_feature]`
        /// entry compiles the whole loop — including every
        /// [`process_pair_vector`] it drives — with its ISA enabled.
        fn pair_loop_dispatch / pair_loop_avx2 / pair_loop_avx512 = pair_loop(
            &self,
            ctx: &PairKernelCtx<'_, T>,
            pair_lo: usize,
            pair_hi: usize,
            acc: &mut AccView<'_, A>,
            stats: &mut KernelStats,
        );
    }
}

/// AVX-512-class mixed precision instantiation (16 × f32, f64 accumulation) —
/// the paper's `Opt-M` on the Xeon Phi uses this mapping.
pub type TersoffSchemeBPhiM = TersoffSchemeB<f32, f64, 16>;
/// AVX2-class single precision instantiation (8 × f32).
pub type TersoffSchemeBAvx2S = TersoffSchemeB<f32, f32, 8>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::TersoffRef;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn setup(perturb: f64, seed: u64) -> (SimBox, AtomData, NeighborList) {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(perturb, seed);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        (b, atoms, list)
    }

    fn run<P: Potential>(p: &mut P, b: &SimBox, a: &AtomData, l: &NeighborList) -> ComputeOutput {
        let mut out = ComputeOutput::zeros(a.n_total());
        p.compute(a, b, l, &mut out);
        out
    }

    #[test]
    fn matches_reference_in_double_precision() {
        let (b, atoms, list) = setup(0.08, 41);
        let mut reference = TersoffRef::new(TersoffParams::silicon());
        let out_ref = run(&mut reference, &b, &atoms, &list);

        macro_rules! check_width {
            ($w:expr) => {{
                let mut pot = TersoffSchemeB::<f64, f64, $w>::new(TersoffParams::silicon());
                let out = run(&mut pot, &b, &atoms, &list);
                assert!(
                    (out.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs(),
                    "W={}: energy {} vs {}",
                    $w,
                    out.energy,
                    out_ref.energy
                );
                assert!(
                    out.max_force_difference(&out_ref) < 1e-8,
                    "W={}: force diff {}",
                    $w,
                    out.max_force_difference(&out_ref)
                );
            }};
        }
        check_width!(2);
        check_width!(4);
        check_width!(8);
        check_width!(16);
    }

    #[test]
    fn fast_forward_does_not_change_results() {
        let (b, atoms, list) = setup(0.06, 2);
        let mut ff = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon()).with_stats();
        let mut naive = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon())
            .without_fast_forward()
            .with_stats();
        let out_ff = run(&mut ff, &b, &atoms, &list);
        let out_naive = run(&mut naive, &b, &atoms, &list);
        assert!((out_ff.energy - out_naive.energy).abs() < 1e-10 * out_ff.energy.abs());
        assert!(out_ff.max_force_difference(&out_naive) < 1e-10);
        // The fast-forwarded variant achieves higher occupancy in its
        // computing iterations (that is its whole point).
        assert!(
            ff.stats.k_occupancy() >= naive.stats.k_occupancy(),
            "fast-forward occupancy {} < naive occupancy {}",
            ff.stats.k_occupancy(),
            naive.stats.k_occupancy()
        );
    }

    #[test]
    fn mixed_and_single_precision_track_double() {
        let (b, atoms, list) = setup(0.05, 19);
        let mut d = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon());
        let mut s = TersoffSchemeB::<f32, f32, 16>::new(TersoffParams::silicon());
        let mut m = TersoffSchemeBPhiM::new(TersoffParams::silicon());
        let out_d = run(&mut d, &b, &atoms, &list);
        let out_s = run(&mut s, &b, &atoms, &list);
        let out_m = run(&mut m, &b, &atoms, &list);
        assert!(((out_s.energy - out_d.energy) / out_d.energy).abs() < 2e-5);
        assert!(((out_m.energy - out_d.energy) / out_d.energy).abs() < 2e-5);
        let scale = out_d.max_force_component().max(1.0);
        assert!(out_s.max_force_difference(&out_d) / scale < 1e-4);
        assert!(out_m.max_force_difference(&out_d) / scale < 1e-4);
    }

    #[test]
    fn pair_occupancy_is_high_even_with_long_vectors() {
        // The whole point of the fused scheme: pair-level lanes stay full even
        // when the per-atom neighbor list (4) is much shorter than the vector
        // width (16).
        let (b, atoms, list) = setup(0.0, 0);
        let mut pot = TersoffSchemeB::<f64, f64, 16>::new(TersoffParams::silicon()).with_stats();
        let _ = run(&mut pot, &b, &atoms, &list);
        assert!(
            pot.stats.pair_occupancy() > 0.95,
            "pair occupancy {}",
            pot.stats.pair_occupancy()
        );
    }

    #[test]
    fn multispecies_matches_reference() {
        let (b, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.04, 8);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let mut reference = TersoffRef::new(TersoffParams::silicon_carbide());
        let mut pot = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon_carbide());
        let out_ref = run(&mut reference, &b, &atoms, &list);
        let out = run(&mut pot, &b, &atoms, &list);
        assert!((out.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs());
        assert!(out.max_force_difference(&out_ref) < 1e-8);
    }

    #[test]
    fn empty_system_is_a_noop() {
        let atoms = AtomData::new();
        let b = SimBox::cubic(10.0);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let mut pot = TersoffSchemeB::<f64, f64, 8>::new(TersoffParams::silicon());
        let out = run(&mut pot, &b, &atoms, &list);
        assert_eq!(out.energy, 0.0);
    }
}
