//! The scalar-optimized Tersoff implementation (Algorithm 3 of the paper).
//!
//! Relative to the reference it applies the paper's *scalar optimizations*:
//!
//! 1. **Pre-calculating derivatives** (Sec. IV-A): the first K loop computes
//!    ζ *and* its gradients; the per-k gradients are kept in a bounded
//!    scratch list of `kmax` entries and simply scaled by δζ afterwards.
//!    Should an atom have more than `kmax` in-cutoff neighbors the
//!    implementation falls back to recomputing the overflowing terms in a
//!    second loop, "thus maintaining complete generality".
//! 2. **Reduced parameter-lookup indirection**: the parameter table is
//!    converted to the compute precision once and indexed flat.
//! 3. **Neighbor-list filtering** (Sec. IV-D): the skin-extended list is
//!    filtered by the global maximum cutoff before the main loops.
//!
//! The implementation is generic over the compute precision `T` and the
//! accumulation precision `A`, which yields the paper's `Opt-D` (f64/f64),
//! `Opt-S` (f32/f32) and `Opt-M` (f32/f64) execution modes from one body of
//! code — mirroring how the paper's vector library derives the mixed mode
//! automatically.

use crate::accumulate::array3_f64_forces;
use crate::filter::Prepared;
use crate::functions::{self, ParamT};
use crate::params::TersoffParams;
use md_core::atom::AtomData;
use md_core::force_engine::RangePotential;
use md_core::neighbor::NeighborList;
use md_core::potential::{ComputeOutput, Potential, VOIGT};
use md_core::simbox::SimBox;
use std::any::Any;
use std::ops::Range;
use vektor::dispatch::{self, BackendImpl};
use vektor::{Real, SimdBackend};

/// Default bound on the pre-computed-derivative scratch list. The silicon
/// benchmark needs 4; the default leaves generous room for liquids and
/// amorphous systems while keeping the scratch cache-resident.
pub const DEFAULT_KMAX: usize = 16;

/// Scalar-optimized Tersoff potential, generic over compute precision `T`
/// and accumulate precision `A`.
#[derive(Clone, Debug)]
pub struct TersoffScalarOpt<T: Real, A: Real> {
    params: TersoffParams,
    /// Flat table of per-triplet parameters in compute precision.
    table: Vec<ParamT<T>>,
    /// Number of species (table stride).
    nelements: usize,
    /// Scratch bound for pre-computed k gradients.
    kmax: usize,
    /// Number of times the kmax fallback path was taken (diagnostic).
    pub fallback_count: u64,
    /// Per-step shared state (filtered lists, packed positions), refreshed in
    /// place by [`RangePotential::prepare`].
    prep: Prepared<T>,
    /// Scratch for the single-threaded [`Potential::compute`] entry point.
    own_scratch: ScalarScratch<T, A>,
    /// The ISA instance this kernel executes. The scalar-optimized loop
    /// calls no explicit vector ops, but it is monomorphized into the same
    /// per-ISA `#[target_feature]` entries as the vector schemes, so on an
    /// `avx2`/`avx512` instance LLVM auto-vectorizes the loop with the
    /// wide ISA even in a baseline build.
    backend: BackendImpl,
    _acc: std::marker::PhantomData<A>,
}

impl<T: Real, A: Real> TersoffScalarOpt<T, A> {
    /// Create with the default `kmax`.
    pub fn new(params: TersoffParams) -> Self {
        Self::with_kmax(params, DEFAULT_KMAX)
    }

    /// Create with an explicit scratch bound.
    pub fn with_kmax(params: TersoffParams, kmax: usize) -> Self {
        assert!(kmax >= 1);
        let nelements = params.n_elements();
        let table = params.entries().iter().map(ParamT::from_param).collect();
        TersoffScalarOpt {
            params,
            table,
            nelements,
            kmax,
            fallback_count: 0,
            prep: Prepared::default(),
            own_scratch: ScalarScratch::default(),
            backend: dispatch::default_backend(),
            _acc: std::marker::PhantomData,
        }
    }

    /// Select the ISA instance this kernel executes (clamped to host
    /// support; results are bitwise identical either way).
    pub fn with_backend(mut self, backend: BackendImpl) -> Self {
        self.backend = dispatch::clamp(backend);
        self
    }

    /// The ISA instance this kernel executes.
    pub fn backend(&self) -> BackendImpl {
        self.backend
    }

    /// The parameter set in use.
    pub fn params(&self) -> &TersoffParams {
        &self.params
    }

    #[inline(always)]
    fn param(&self, ti: usize, tj: usize, tk: usize) -> &ParamT<T> {
        &self.table[ti * self.nelements * self.nelements + tj * self.nelements + tk]
    }
}

/// Scratch entry: the pre-computed gradient of one ζ term with respect to
/// atom k, plus k's index.
#[derive(Copy, Clone, Debug)]
struct KEntry<T: Real> {
    k: usize,
    grad_k: [T; 3],
}

/// Reusable per-thread scratch of the scalar-optimized kernel: the
/// accumulation-precision force array, the bounded ζ-gradient list, and the
/// fallback counter folded back via [`RangePotential::absorb_scratch`].
#[derive(Clone, Debug, Default)]
pub struct ScalarScratch<T: Real, A: Real> {
    forces: Vec<[A; 3]>,
    kentries: Vec<KEntry<T>>,
    fallbacks: u64,
}

impl<T: Real, A: Real> Potential for TersoffScalarOpt<T, A> {
    fn name(&self) -> String {
        format!(
            "tersoff/opt-scalar/{}",
            if T::DIGITS == A::DIGITS {
                if T::DIGITS > 10 {
                    "double"
                } else {
                    "single"
                }
            } else {
                "mixed"
            }
        )
    }

    fn cutoff(&self) -> f64 {
        self.params.max_cutoff
    }

    fn executed_backend(&self) -> Option<&'static str> {
        Some(self.backend.name())
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.prepare(atoms, sim_box, neighbors);
        out.reset(atoms.n_total());
        let mut scratch = std::mem::take(&mut self.own_scratch);
        self.range_kernel(atoms, sim_box, 0..atoms.n_local, &mut scratch, out);
        self.fallback_count += std::mem::take(&mut scratch.fallbacks);
        self.own_scratch = scratch;
    }
}

impl<T: Real, A: Real> TersoffScalarOpt<T, A> {
    /// The actual kernel over a contiguous range of central atoms, reading
    /// the prepared shared state and accumulating into `scratch`/`out`.
    /// Allocation-free in steady state. For `A = f64` the forces accumulate
    /// directly in `out` (no scratch buffer, no fold); reduced precisions
    /// use the `A`-typed scratch buffer and fold once at the end.
    fn range_kernel(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        range: Range<usize>,
        scratch: &mut ScalarScratch<T, A>,
        out: &mut ComputeOutput,
    ) {
        let mut energy = A::ZERO;
        let mut virial = A::ZERO;
        let mut tensor = [A::ZERO; 6];
        if let Some(forces) = array3_f64_forces::<A>(&mut out.forces) {
            self.atom_loop_dispatch(
                atoms,
                sim_box,
                range,
                forces,
                &mut energy,
                &mut virial,
                &mut tensor,
                &mut scratch.kentries,
                &mut scratch.fallbacks,
            );
        } else {
            scratch.forces.clear();
            scratch.forces.resize(atoms.n_total(), [A::ZERO; 3]);
            let ScalarScratch {
                forces,
                kentries,
                fallbacks,
            } = scratch;
            self.atom_loop_dispatch(
                atoms,
                sim_box,
                range,
                forces,
                &mut energy,
                &mut virial,
                &mut tensor,
                kentries,
                fallbacks,
            );
            // Fold the reduced-precision accumulators into the output.
            for (dst, src) in out.forces.iter_mut().zip(forces.iter()) {
                for d in 0..3 {
                    dst[d] += src[d].to_f64();
                }
            }
        }
        out.energy += energy.to_f64();
        out.virial += virial.to_f64();
        for (dst, src) in out.virial_tensor.iter_mut().zip(tensor.iter()) {
            *dst += src.to_f64();
        }
    }

    /// The per-atom J/K loops, writing into the given force buffer.
    ///
    /// `B` is the per-ISA instance tag: the body performs no explicit
    /// vector calls, but `#[inline(always)]` places it inside the
    /// `#[target_feature]` entry function, so the wide ISA is available to
    /// LLVM's auto-vectorizer per instance.
    #[allow(clippy::too_many_arguments)]
    // B selects the ISA instance (codegen only); the scalar body never
    // names it, which clippy would otherwise flag.
    #[allow(clippy::extra_unused_type_parameters)]
    #[inline(always)]
    fn atom_loop<B: SimdBackend>(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        range: Range<usize>,
        forces: &mut [[A; 3]],
        energy: &mut A,
        virial: &mut A,
        tensor: &mut [A; 6],
        kentries: &mut Vec<KEntry<T>>,
        fallbacks: &mut u64,
    ) {
        let filtered = &self.prep.filtered;
        let packed = &self.prep.packed_x;
        let types = &atoms.type_;
        kentries.reserve(self.kmax);

        let position =
            |idx: usize| -> [T; 3] { [packed[idx * 4], packed[idx * 4 + 1], packed[idx * 4 + 2]] };
        let acc = |x: T| A::from_f64(x.to_f64());

        // Minimum-image displacement in the compute precision. When ghost
        // atoms are present (decomposed runs) every displacement is already
        // far below half a box length and the wrap is a no-op.
        let lengths = sim_box.lengths();
        let len_t = [
            T::from_f64(lengths[0]),
            T::from_f64(lengths[1]),
            T::from_f64(lengths[2]),
        ];
        let periodic = sim_box.periodic;
        let min_image = |a: [T; 3], b: [T; 3]| -> [T; 3] {
            let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            for k in 0..3 {
                if periodic[k] {
                    let half = len_t[k] * T::HALF;
                    if d[k] > half {
                        d[k] -= len_t[k];
                    } else if d[k] < -half {
                        d[k] += len_t[k];
                    }
                }
            }
            d
        };

        for i in range {
            let xi = position(i);
            let ti = types[i];
            let jlist = filtered.neighbors_of(i);

            for (jj, &j_u32) in jlist.iter().enumerate() {
                let j = j_u32 as usize;
                let tj = types[j];
                let p_ij = self.param(ti, tj, tj);
                let xj = position(j);
                let del_ij = min_image(xi, xj);
                let rsq_ij = del_ij[0] * del_ij[0] + del_ij[1] * del_ij[1] + del_ij[2] * del_ij[2];
                // The filter used the *global* cutoff; the pair-specific
                // cutoff can be smaller in multi-species systems.
                if rsq_ij >= p_ij.cutsq {
                    continue;
                }
                let rij = rsq_ij.sqrt();

                // Single K loop: ζ, its i/j gradients (accumulated), and the
                // per-k gradients stored in the bounded scratch list.
                let mut zeta_ij = T::ZERO;
                let mut dzeta_i = [T::ZERO; 3];
                let mut dzeta_j = [T::ZERO; 3];
                kentries.clear();
                let mut overflow = false;

                for (kk, &k_u32) in jlist.iter().enumerate() {
                    if kk == jj {
                        continue;
                    }
                    let k = k_u32 as usize;
                    let tk = types[k];
                    let p_ijk = self.param(ti, tj, tk);
                    let xk = position(k);
                    let del_ik = min_image(xi, xk);
                    let rsq_ik =
                        del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2];
                    if rsq_ik >= p_ijk.cutsq {
                        continue;
                    }
                    let rik = rsq_ik.sqrt();
                    let (zeta, grad_j, grad_k) =
                        functions::zeta_term_and_gradients(p_ijk, del_ij, rij, del_ik, rik);
                    zeta_ij += zeta;
                    for d in 0..3 {
                        dzeta_j[d] += grad_j[d];
                        dzeta_i[d] -= grad_j[d] + grad_k[d];
                    }
                    if kentries.len() < self.kmax {
                        kentries.push(KEntry { k, grad_k });
                    } else {
                        overflow = true;
                    }
                }

                // Pair terms.
                let (e_rep, de_rep) = functions::repulsive(p_ij, rij);
                let (e_att, de_att, de_dzeta) = functions::force_zeta(p_ij, rij, zeta_ij);
                *energy += acc(e_rep + e_att);

                let fpair = (de_rep + de_att) / rij;
                for d in 0..3 {
                    forces[i][d] += acc(fpair * del_ij[d]);
                    forces[j][d] -= acc(fpair * del_ij[d]);
                }
                *virial -= acc(fpair * rsq_ij);
                for (c, (a, b)) in VOIGT.iter().enumerate() {
                    tensor[c] -= acc(fpair * del_ij[*a] * del_ij[*b]);
                }

                // Apply the pre-computed gradients scaled by δζ.
                let prefactor = -de_dzeta;
                for d in 0..3 {
                    forces[i][d] += acc(prefactor * dzeta_i[d]);
                    forces[j][d] += acc(prefactor * dzeta_j[d]);
                    *virial += acc(del_ij[d] * prefactor * dzeta_j[d]);
                }
                for (c, (a, b)) in VOIGT.iter().enumerate() {
                    tensor[c] += acc(del_ij[*a] * prefactor * dzeta_j[*b]);
                }
                for entry in kentries.iter() {
                    let del_ik = min_image(xi, position(entry.k));
                    for d in 0..3 {
                        let fk = prefactor * entry.grad_k[d];
                        forces[entry.k][d] += acc(fk);
                        *virial += acc(del_ik[d] * fk);
                    }
                    for (c, (a, b)) in VOIGT.iter().enumerate() {
                        tensor[c] += acc(del_ik[*a] * prefactor * entry.grad_k[*b]);
                    }
                }

                // Fallback: more in-cutoff neighbors than the scratch holds —
                // recompute the overflowing gradients in a second loop, as in
                // Algorithm 3's "revert to original approach".
                if overflow {
                    *fallbacks += 1;
                    for (kk, &k_u32) in jlist.iter().enumerate() {
                        if kk == jj {
                            continue;
                        }
                        let k = k_u32 as usize;
                        if kentries.iter().any(|e| e.k == k) {
                            continue;
                        }
                        let tk = types[k];
                        let p_ijk = self.param(ti, tj, tk);
                        let del_ik = min_image(xi, position(k));
                        let rsq_ik =
                            del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2];
                        if rsq_ik >= p_ijk.cutsq {
                            continue;
                        }
                        let rik = rsq_ik.sqrt();
                        let (_, _, grad_k) =
                            functions::zeta_term_and_gradients(p_ijk, del_ij, rij, del_ik, rik);
                        for d in 0..3 {
                            let fk = prefactor * grad_k[d];
                            forces[k][d] += acc(fk);
                            *virial += acc(del_ik[d] * fk);
                        }
                        for (c, (a, b)) in VOIGT.iter().enumerate() {
                            tensor[c] += acc(del_ik[*a] * prefactor * grad_k[*b]);
                        }
                    }
                }
            }
        }
    }
}

impl<T: Real, A: Real> RangePotential for TersoffScalarOpt<T, A> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        self.prep
            .refresh(atoms, sim_box, neighbors, self.params.max_cutoff, false);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(ScalarScratch::<T, A>::default())
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        _neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        let scratch = scratch
            .downcast_mut::<ScalarScratch<T, A>>()
            .expect("scratch type mismatch");
        self.range_kernel(atoms, sim_box, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        let scratch = scratch
            .downcast_mut::<ScalarScratch<T, A>>()
            .expect("scratch type mismatch");
        self.fallback_count += std::mem::take(&mut scratch.fallbacks);
    }
}

impl<T: Real, A: Real> TersoffScalarOpt<T, A> {
    vektor::multiversion_entries! {
        /// The per-ISA trampoline of the scalar-optimized kernel:
        /// `atom_loop` is `#[inline(always)]`, so each generated
        /// `#[target_feature]` entry hands the whole loop — with the
        /// force buffer's `noalias` attribute intact — to LLVM's
        /// auto-vectorizer under that entry's ISA.
        fn atom_loop_dispatch / atom_loop_avx2 / atom_loop_avx512 = atom_loop(
            &self,
            atoms: &AtomData,
            sim_box: &SimBox,
            range: Range<usize>,
            forces: &mut [[A; 3]],
            energy: &mut A,
            virial: &mut A,
            tensor: &mut [A; 6],
            kentries: &mut Vec<KEntry<T>>,
            fallbacks: &mut u64,
        );
    }
}

/// Convenience aliases matching the paper's execution modes.
pub type TersoffOptD = TersoffScalarOpt<f64, f64>;
/// Single precision compute and accumulate (`Opt-S`).
pub type TersoffOptS = TersoffScalarOpt<f32, f32>;
/// Single precision compute, double precision accumulate (`Opt-M`).
pub type TersoffOptM = TersoffScalarOpt<f32, f64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::TersoffRef;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn setup(cells: [usize; 3], perturb: f64, seed: u64) -> (SimBox, AtomData, NeighborList) {
        let (b, atoms) = Lattice::silicon(cells).build_perturbed(perturb, seed);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        (b, atoms, list)
    }

    fn run<P: Potential>(
        pot: &mut P,
        b: &SimBox,
        atoms: &AtomData,
        list: &NeighborList,
    ) -> ComputeOutput {
        let mut out = ComputeOutput::zeros(atoms.n_total());
        pot.compute(atoms, b, list, &mut out);
        out
    }

    #[test]
    fn double_precision_matches_reference_exactly_enough() {
        let (b, atoms, list) = setup([2, 2, 2], 0.08, 21);
        let mut reference = TersoffRef::new(TersoffParams::silicon());
        let mut optimized = TersoffOptD::new(TersoffParams::silicon());
        let out_ref = run(&mut reference, &b, &atoms, &list);
        let out_opt = run(&mut optimized, &b, &atoms, &list);

        assert!(
            (out_ref.energy - out_opt.energy).abs() < 1e-9 * out_ref.energy.abs(),
            "energy {} vs {}",
            out_ref.energy,
            out_opt.energy
        );
        assert!(
            out_ref.max_force_difference(&out_opt) < 1e-9,
            "max force diff {}",
            out_ref.max_force_difference(&out_opt)
        );
        assert!((out_ref.virial - out_opt.virial).abs() < 1e-7 * out_ref.virial.abs().max(1.0));
    }

    #[test]
    fn single_precision_tracks_double_within_tolerance() {
        let (b, atoms, list) = setup([2, 2, 2], 0.05, 4);
        let mut opt_d = TersoffOptD::new(TersoffParams::silicon());
        let mut opt_s = TersoffOptS::new(TersoffParams::silicon());
        let mut opt_m = TersoffOptM::new(TersoffParams::silicon());
        let out_d = run(&mut opt_d, &b, &atoms, &list);
        let out_s = run(&mut opt_s, &b, &atoms, &list);
        let out_m = run(&mut opt_m, &b, &atoms, &list);

        // The paper validates the reduced-precision solvers to within 0.002%
        // on the total energy (Fig. 3); a single force evaluation is far
        // tighter than a million-step accumulation.
        let rel_s = ((out_s.energy - out_d.energy) / out_d.energy).abs();
        let rel_m = ((out_m.energy - out_d.energy) / out_d.energy).abs();
        assert!(rel_s < 2e-5, "single-precision energy off by {rel_s}");
        assert!(rel_m < 2e-5, "mixed-precision energy off by {rel_m}");

        // Forces carry a few Kcal of rounding; scale tolerance to the
        // largest force component.
        let scale = out_d.max_force_component().max(1.0);
        assert!(out_s.max_force_difference(&out_d) / scale < 1e-4);
        assert!(out_m.max_force_difference(&out_d) / scale < 1e-4);
    }

    #[test]
    fn kmax_fallback_produces_identical_results() {
        let (b, atoms, list) = setup([2, 2, 2], 0.08, 13);
        // kmax = 1 forces the fallback for every silicon atom (3 in-cutoff
        // k's per (i, j) pair).
        let mut tiny = TersoffScalarOpt::<f64, f64>::with_kmax(TersoffParams::silicon(), 1);
        let mut full = TersoffOptD::new(TersoffParams::silicon());
        let out_tiny = run(&mut tiny, &b, &atoms, &list);
        let out_full = run(&mut full, &b, &atoms, &list);
        assert!(tiny.fallback_count > 0, "fallback path was not exercised");
        assert_eq!(full.fallback_count, 0);
        assert!((out_tiny.energy - out_full.energy).abs() < 1e-10 * out_full.energy.abs());
        assert!(out_tiny.max_force_difference(&out_full) < 1e-10);
    }

    #[test]
    fn multispecies_sic_matches_reference() {
        let (b, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.04, 6);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let mut reference = TersoffRef::new(TersoffParams::silicon_carbide());
        let mut optimized = TersoffOptD::new(TersoffParams::silicon_carbide());
        let out_ref = run(&mut reference, &b, &atoms, &list);
        let out_opt = run(&mut optimized, &b, &atoms, &list);
        assert!((out_ref.energy - out_opt.energy).abs() < 1e-9 * out_ref.energy.abs());
        assert!(out_ref.max_force_difference(&out_opt) < 1e-9);
    }

    #[test]
    fn names_reflect_precision_modes() {
        assert_eq!(
            TersoffOptD::new(TersoffParams::silicon()).name(),
            "tersoff/opt-scalar/double"
        );
        assert_eq!(
            TersoffOptS::new(TersoffParams::silicon()).name(),
            "tersoff/opt-scalar/single"
        );
        assert_eq!(
            TersoffOptM::new(TersoffParams::silicon()).name(),
            "tersoff/opt-scalar/mixed"
        );
    }
}
