//! Vectorization scheme (1a): I → parallel/sequential execution, J → vector
//! lanes (Fig. 1a of the paper).
//!
//! The natural scheme for short vectors (SSE single precision, AVX double
//! precision): the neighbors of one atom i occupy the lanes, so the K loop
//! traverses *the same* neighbor list in every lane, with atom i and atom k
//! uniform across lanes. That uniformity is what makes this scheme cheap —
//! the force on i and on k can be accumulated with in-register reductions
//! (building block 2) and the scatter to the j atoms never conflicts, because
//! the neighbors of one atom are pairwise distinct.
//!
//! The ζ derivatives are pre-computed in the single K loop (the Algorithm-3
//! optimization), held in a scratch list indexed by k, and scaled by δζ once
//! the bond order is known.

use crate::accumulate::{flat_f64_forces, fold_flat_forces, AccView};
use crate::filter::Prepared;
use crate::params::TersoffParams;
use crate::stats::KernelStats;
use crate::vector_kernel::{
    force_zeta_v, min_image_v, repulsive_v, zeta_term_and_gradients_v, PackedParams,
};
use md_core::atom::AtomData;
use md_core::force_engine::RangePotential;
use md_core::neighbor::NeighborList;
use md_core::potential::{ComputeOutput, Potential, VOIGT};
use md_core::simbox::SimBox;
use std::any::Any;
use std::ops::Range;
use vektor::dispatch::{self, BackendImpl};
use vektor::gather::{adjacent_gather3_in, adjacent_scatter_add3_distinct_in};
use vektor::{Real, SimdBackend, SimdF, SimdM};

/// Scheme (1a): J across the vector lanes.
#[derive(Clone, Debug)]
pub struct TersoffSchemeA<T: Real, A: Real, const W: usize> {
    params: TersoffParams,
    packed: PackedParams<T>,
    /// Lane-occupancy statistics of the last `compute` call (only filled when
    /// [`TersoffSchemeA::collect_stats`] is enabled).
    pub stats: KernelStats,
    /// Whether to collect statistics (small overhead in the inner loops).
    pub collect_stats: bool,
    /// Per-step shared state, refreshed in place by
    /// [`RangePotential::prepare`].
    prep: Prepared<T>,
    /// Scratch for the single-threaded [`Potential::compute`] entry point.
    own_scratch: SchemeAScratch<T, A, W>,
    /// The vektor implementation this kernel instance executes (selected at
    /// construction, kernel-granular — see `vektor::dispatch`).
    backend: BackendImpl,
    _acc: std::marker::PhantomData<A>,
}

/// Per-k scratch entry of the combined K loop.
#[derive(Copy, Clone, Debug)]
struct KSlot<T: Real, const W: usize> {
    k: usize,
    del_ik: [T; 3],
    grad_k: [SimdF<T, W>; 3],
    mask: SimdM<W>,
}

/// Reusable per-thread scratch of scheme (1a): the flat accumulation-
/// precision force buffer, the per-k slot list, and the per-thread kernel
/// statistics merged back via [`RangePotential::absorb_scratch`].
#[derive(Clone, Debug, Default)]
pub struct SchemeAScratch<T: Real, A: Real, const W: usize> {
    forces: Vec<A>,
    kslots: Vec<KSlot<T, W>>,
    stats: KernelStats,
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeA<T, A, W> {
    /// Create from a parameter set.
    pub fn new(params: TersoffParams) -> Self {
        let packed = PackedParams::new(&params);
        TersoffSchemeA {
            params,
            packed,
            stats: KernelStats::new(W),
            collect_stats: false,
            prep: Prepared::default(),
            own_scratch: SchemeAScratch::default(),
            backend: dispatch::default_backend(),
            _acc: std::marker::PhantomData,
        }
    }

    /// Enable lane-occupancy statistics collection.
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// Select the vektor implementation this kernel instance executes
    /// (clamped to host support; results are bitwise identical either way).
    pub fn with_backend(mut self, backend: BackendImpl) -> Self {
        self.backend = dispatch::clamp(backend);
        self
    }

    /// The vektor implementation this kernel instance executes.
    pub fn backend(&self) -> BackendImpl {
        self.backend
    }

    /// The parameter set in use.
    pub fn params(&self) -> &TersoffParams {
        &self.params
    }
}

impl<T: Real, A: Real, const W: usize> Potential for TersoffSchemeA<T, A, W> {
    fn name(&self) -> String {
        format!("tersoff/scheme-a/w{W}")
    }

    fn cutoff(&self) -> f64 {
        self.params.max_cutoff
    }

    fn executed_backend(&self) -> Option<&'static str> {
        Some(self.backend.name())
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.prepare(atoms, sim_box, neighbors);
        out.reset(atoms.n_total());
        let mut scratch = std::mem::take(&mut self.own_scratch);
        if scratch.stats.width != W {
            scratch.stats = KernelStats::new(W);
        }
        self.range_kernel(atoms, sim_box, 0..atoms.n_local, &mut scratch, out);
        self.absorb(&mut scratch);
        self.own_scratch = scratch;
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeA<T, A, W> {
    /// Fold per-thread diagnostics back into the potential.
    fn absorb(&mut self, scratch: &mut SchemeAScratch<T, A, W>) {
        if self.collect_stats {
            self.stats.merge(&scratch.stats);
            scratch.stats.reset();
        }
    }

    /// The actual kernel over a contiguous range of central atoms, reading
    /// the prepared shared state and accumulating into `scratch`/`out`.
    /// Allocation-free in steady state. For `A = f64` the forces accumulate
    /// directly in `out` (no scratch buffer, no fold); reduced precisions
    /// use the flat `A`-typed scratch buffer and fold once at the end.
    fn range_kernel(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        range: Range<usize>,
        scratch: &mut SchemeAScratch<T, A, W>,
        out: &mut ComputeOutput,
    ) {
        if self.collect_stats {
            scratch.stats.reset();
        }
        let mut energy = A::ZERO;
        let mut virial = A::ZERO;
        let mut tensor = [A::ZERO; 6];
        if let Some(direct) = flat_f64_forces::<A>(&mut out.forces) {
            let mut acc = AccView {
                forces: direct,
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.atom_loop_dispatch(
                atoms,
                range,
                &mut acc,
                &mut scratch.kslots,
                &mut scratch.stats,
                sim_box,
            );
        } else {
            scratch.forces.clear();
            scratch.forces.resize(atoms.n_total() * 3, A::ZERO);
            let SchemeAScratch {
                forces,
                kslots,
                stats,
            } = scratch;
            let mut acc = AccView {
                forces: forces.as_mut_slice(),
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.atom_loop_dispatch(atoms, range, &mut acc, kslots, stats, sim_box);
            fold_flat_forces(forces, out);
        }
        out.energy += energy.to_f64();
        out.virial += virial.to_f64();
        for (dst, src) in out.virial_tensor.iter_mut().zip(tensor.iter()) {
            *dst += src.to_f64();
        }
    }

    /// The per-atom J/K loops, writing into the borrowed accumulation
    /// target. Generic over the executing backend `B` and
    /// `#[inline(always)]` so the whole loop compiles inside the per-ISA
    /// `#[target_feature]` entries below — one monomorphized instance per
    /// ISA, wide vector code even in a baseline build.
    #[inline(always)]
    fn atom_loop<B: SimdBackend>(
        &self,
        atoms: &AtomData,
        range: Range<usize>,
        acc: &mut AccView<'_, A>,
        kslots: &mut Vec<KSlot<T, W>>,
        stats: &mut KernelStats,
        sim_box: &SimBox,
    ) {
        let filtered = &self.prep.filtered;
        let packed_x = &self.prep.packed_x;
        let types = &atoms.type_;
        let forces = &mut *acc.forces;
        let energy = &mut *acc.energy;
        let virial = &mut *acc.virial;
        let tensor = &mut *acc.tensor;

        let lengths_f64 = sim_box.lengths();
        let lengths = [
            T::from_f64(lengths_f64[0]),
            T::from_f64(lengths_f64[1]),
            T::from_f64(lengths_f64[2]),
        ];
        let periodic = sim_box.periodic;

        let pos = |idx: usize| -> [T; 3] {
            [
                packed_x[idx * 4],
                packed_x[idx * 4 + 1],
                packed_x[idx * 4 + 2],
            ]
        };
        let min_image_scalar = |a: [T; 3], b: [T; 3]| -> [T; 3] {
            let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            for c in 0..3 {
                if periodic[c] {
                    let half = lengths[c] * T::HALF;
                    if d[c] > half {
                        d[c] -= lengths[c];
                    } else if d[c] < -half {
                        d[c] += lengths[c];
                    }
                }
            }
            d
        };
        let acc = |x: T| A::from_f64(x.to_f64());

        for i in range {
            let xi = pos(i);
            let ti = types[i];
            let jlist = filtered.neighbors_of(i);
            let len = jlist.len();
            if len == 0 {
                continue;
            }
            let xi_v = [
                SimdF::<T, W>::splat(xi[0]),
                SimdF::splat(xi[1]),
                SimdF::splat(xi[2]),
            ];
            let mut fi_acc = [A::ZERO; 3];

            let mut jv = 0;
            while jv < len {
                let lane_count = (len - jv).min(W);
                let mut lane_mask = SimdM::<W>::prefix(lane_count);

                // Per-lane j indices; inactive lanes replicate the first lane
                // so their (unused) gathers stay in bounds.
                let mut j_idx = [jlist[jv] as usize; W];
                for (lane, slot) in j_idx.iter_mut().enumerate().take(lane_count) {
                    *slot = jlist[jv + lane] as usize;
                }

                let xj = adjacent_gather3_in::<B, T, W, 4>(packed_x, &j_idx, lane_mask);
                let del_ij = min_image_v::<B, T, W>(
                    [xj[0] - xi_v[0], xj[1] - xi_v[1], xj[2] - xi_v[2]],
                    lengths,
                    periodic,
                );
                let rsq = del_ij[0] * del_ij[0] + del_ij[1] * del_ij[1] + del_ij[2] * del_ij[2];

                // Per-lane (i, j, j) pair parameters.
                let mut pair_idx = [0usize; W];
                for lane in 0..W {
                    let tj = types[j_idx[lane]];
                    pair_idx[lane] = self.packed.index(ti, tj, tj);
                }
                let p_ij = self.packed.gather_in::<B, W>(&pair_idx, lane_mask);
                lane_mask &= rsq.simd_lt(p_ij.cutsq);
                if self.collect_stats {
                    stats.record_pair_vector(lane_mask.count());
                }
                if lane_mask.none() {
                    jv += W;
                    continue;
                }
                let rij = rsq.sqrt();

                // Combined K loop: ζ, its i/j gradients, per-k gradients.
                let mut zeta = SimdF::<T, W>::zero();
                let mut dzeta_i = [SimdF::<T, W>::zero(); 3];
                let mut dzeta_j = [SimdF::<T, W>::zero(); 3];
                kslots.clear();

                for &k_u32 in jlist {
                    let k = k_u32 as usize;
                    let tk = types[k];
                    let del_ik_s = min_image_scalar(xi, pos(k));
                    let rsq_ik = del_ik_s[0] * del_ik_s[0]
                        + del_ik_s[1] * del_ik_s[1]
                        + del_ik_s[2] * del_ik_s[2];

                    // Triplet parameters vary with the per-lane j type.
                    let mut trip_idx = [0usize; W];
                    for lane in 0..W {
                        trip_idx[lane] = self.packed.index(ti, types[j_idx[lane]], tk);
                    }
                    let p_ijk = self.packed.gather_in::<B, W>(&trip_idx, lane_mask);

                    // Lane is active when j ≠ k and r_ik is inside the
                    // (possibly lane-dependent) cutoff.
                    let mut k_mask = lane_mask;
                    for lane in 0..W {
                        if j_idx[lane] == k {
                            k_mask.set_lane(lane, false);
                        }
                    }
                    k_mask &= SimdF::splat(rsq_ik).simd_lt(p_ijk.cutsq);
                    if k_mask.none() {
                        if self.collect_stats {
                            stats.record_k_spin();
                        }
                        continue;
                    }
                    if self.collect_stats {
                        stats.record_k_compute(k_mask.count());
                    }

                    let rik = rsq_ik.sqrt();
                    let del_ik_v = [
                        SimdF::splat(del_ik_s[0]),
                        SimdF::splat(del_ik_s[1]),
                        SimdF::splat(del_ik_s[2]),
                    ];
                    let (z, grad_j, grad_k) = zeta_term_and_gradients_v::<B, T, W>(
                        &p_ijk,
                        del_ij,
                        rij,
                        del_ik_v,
                        SimdF::splat(rik),
                    );
                    zeta += B::masked(z, k_mask);
                    for d in 0..3 {
                        dzeta_j[d] += B::masked(grad_j[d], k_mask);
                        dzeta_i[d] -= B::masked(grad_j[d] + grad_k[d], k_mask);
                    }
                    kslots.push(KSlot {
                        k,
                        del_ik: del_ik_s,
                        grad_k,
                        mask: k_mask,
                    });
                }

                // Pair energy, force and δζ.
                let (e_rep, de_rep) = repulsive_v::<B, T, W>(&p_ij, rij);
                let (e_att, de_att, de_dzeta) = force_zeta_v::<B, T, W>(&p_ij, rij, zeta);
                *energy += acc(B::masked_sum(e_rep + e_att, lane_mask));

                let fpair = (de_rep + de_att) / rij;
                let prefactor = -de_dzeta;

                // Force on i: uniform target, in-register reduction.
                let mut fi_vec = [SimdF::<T, W>::zero(); 3];
                let mut fj_vec = [SimdF::<T, W>::zero(); 3];
                for d in 0..3 {
                    let pair_f = fpair * del_ij[d];
                    fi_vec[d] = pair_f + prefactor * dzeta_i[d];
                    fj_vec[d] = -pair_f + prefactor * dzeta_j[d];
                }
                for d in 0..3 {
                    fi_acc[d] += acc(B::masked_sum(fi_vec[d], lane_mask));
                }
                // Force on the j atoms: distinct targets, plain scatter-add
                // (hardware scatter on the AVX-512 instance).
                let fj_acc: [SimdF<A, W>; 3] = [
                    B::masked(fj_vec[0], lane_mask).convert(),
                    B::masked(fj_vec[1], lane_mask).convert(),
                    B::masked(fj_vec[2], lane_mask).convert(),
                ];
                adjacent_scatter_add3_distinct_in::<B, A, W, 3>(forces, &j_idx, lane_mask, fj_acc);

                // Virial: pair part + j-side three-body part, scalar trace
                // and tensor components side by side.
                *virial -= acc(B::masked_sum(fpair * rsq, lane_mask));
                for d in 0..3 {
                    *virial += acc(B::masked_sum(
                        del_ij[d] * (prefactor * dzeta_j[d]),
                        lane_mask,
                    ));
                }
                for (c, (a, b)) in VOIGT.iter().enumerate() {
                    tensor[c] -= acc(B::masked_sum(fpair * del_ij[*a] * del_ij[*b], lane_mask));
                    tensor[c] += acc(B::masked_sum(
                        del_ij[*a] * (prefactor * dzeta_j[*b]),
                        lane_mask,
                    ));
                }

                // Force on the k atoms: uniform target per scratch entry,
                // in-register reduction then one scalar update.
                for slot in kslots.iter() {
                    let mut fk = [T::ZERO; 3];
                    for d in 0..3 {
                        fk[d] = B::masked_sum(prefactor * slot.grad_k[d], slot.mask);
                        forces[slot.k * 3 + d] += acc(fk[d]);
                        *virial += acc(slot.del_ik[d] * fk[d]);
                    }
                    for (c, (a, b)) in VOIGT.iter().enumerate() {
                        tensor[c] += acc(slot.del_ik[*a] * fk[*b]);
                    }
                }

                jv += W;
            }

            for d in 0..3 {
                forces[i * 3 + d] += fi_acc[d];
            }
        }
    }
}

impl<T: Real, A: Real, const W: usize> RangePotential for TersoffSchemeA<T, A, W> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        if self.collect_stats {
            self.stats.reset();
        }
        self.prep
            .refresh(atoms, sim_box, neighbors, self.params.max_cutoff, false);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(SchemeAScratch::<T, A, W> {
            stats: KernelStats::new(W),
            ..Default::default()
        })
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        _neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        let scratch = scratch
            .downcast_mut::<SchemeAScratch<T, A, W>>()
            .expect("scratch type mismatch");
        self.range_kernel(atoms, sim_box, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        let scratch = scratch
            .downcast_mut::<SchemeAScratch<T, A, W>>()
            .expect("scratch type mismatch");
        self.absorb(scratch);
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeA<T, A, W> {
    vektor::multiversion_entries! {
        /// The per-ISA trampoline of scheme (1a): `atom_loop` is
        /// `#[inline(always)]`, so each generated `#[target_feature]`
        /// entry compiles the whole loop with its ISA enabled, and the
        /// full parameter list keeps every slice's `noalias` attribute.
        fn atom_loop_dispatch / atom_loop_avx2 / atom_loop_avx512 = atom_loop(
            &self,
            atoms: &AtomData,
            range: Range<usize>,
            acc: &mut AccView<'_, A>,
            kslots: &mut Vec<KSlot<T, W>>,
            stats: &mut KernelStats,
            sim_box: &SimBox,
        );
    }
}

/// AVX-class double precision instantiation (4 × f64) — the paper's Opt-D on
/// SB/HW/BW uses exactly this mapping.
pub type TersoffSchemeAAvxD = TersoffSchemeA<f64, f64, 4>;
/// SSE-class single precision instantiation (4 × f32).
pub type TersoffSchemeASseS = TersoffSchemeA<f32, f32, 4>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::TersoffRef;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn setup(perturb: f64, seed: u64) -> (SimBox, AtomData, NeighborList) {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(perturb, seed);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        (b, atoms, list)
    }

    fn run<P: Potential>(p: &mut P, b: &SimBox, a: &AtomData, l: &NeighborList) -> ComputeOutput {
        let mut out = ComputeOutput::zeros(a.n_total());
        p.compute(a, b, l, &mut out);
        out
    }

    #[test]
    fn matches_reference_in_double_precision_various_widths() {
        let (b, atoms, list) = setup(0.08, 31);
        let mut reference = TersoffRef::new(TersoffParams::silicon());
        let out_ref = run(&mut reference, &b, &atoms, &list);

        macro_rules! check_width {
            ($w:expr) => {{
                let mut vec_pot = TersoffSchemeA::<f64, f64, $w>::new(TersoffParams::silicon());
                let out_vec = run(&mut vec_pot, &b, &atoms, &list);
                assert!(
                    (out_vec.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs(),
                    "W={}: energy {} vs {}",
                    $w,
                    out_vec.energy,
                    out_ref.energy
                );
                assert!(
                    out_vec.max_force_difference(&out_ref) < 1e-8,
                    "W={}: force diff {}",
                    $w,
                    out_vec.max_force_difference(&out_ref)
                );
            }};
        }
        check_width!(1);
        check_width!(2);
        check_width!(4);
        check_width!(8);
        check_width!(16);
    }

    #[test]
    fn single_precision_energy_close_to_double() {
        let (b, atoms, list) = setup(0.05, 7);
        let mut d = TersoffSchemeA::<f64, f64, 4>::new(TersoffParams::silicon());
        let mut s = TersoffSchemeA::<f32, f32, 8>::new(TersoffParams::silicon());
        let mut m = TersoffSchemeA::<f32, f64, 8>::new(TersoffParams::silicon());
        let out_d = run(&mut d, &b, &atoms, &list);
        let out_s = run(&mut s, &b, &atoms, &list);
        let out_m = run(&mut m, &b, &atoms, &list);
        assert!(((out_s.energy - out_d.energy) / out_d.energy).abs() < 2e-5);
        assert!(((out_m.energy - out_d.energy) / out_d.energy).abs() < 2e-5);
        let scale = out_d.max_force_component().max(1.0);
        let rel = out_s.max_force_difference(&out_d) / scale;
        assert!(rel < 5e-4, "single-precision force deviation {rel}");
    }

    #[test]
    fn multispecies_matches_reference() {
        let (b, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.04, 3);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let mut reference = TersoffRef::new(TersoffParams::silicon_carbide());
        let mut vec_pot = TersoffSchemeA::<f64, f64, 4>::new(TersoffParams::silicon_carbide());
        let out_ref = run(&mut reference, &b, &atoms, &list);
        let out_vec = run(&mut vec_pot, &b, &atoms, &list);
        assert!((out_vec.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs());
        assert!(out_vec.max_force_difference(&out_ref) < 1e-8);
    }

    #[test]
    fn stats_reflect_short_neighbor_lists() {
        let (b, atoms, list) = setup(0.0, 0);
        let mut pot = TersoffSchemeA::<f64, f64, 8>::new(TersoffParams::silicon()).with_stats();
        let _ = run(&mut pot, &b, &atoms, &list);
        // Perfect silicon: 4 neighbors in a width-8 vector → 50% pair
        // occupancy, and each K iteration has at most 4 active lanes minus
        // the j==k exclusion.
        assert!(pot.stats.pair_vectors > 0);
        assert!((pot.stats.pair_occupancy() - 0.5).abs() < 1e-9);
        assert!(pot.stats.k_mean_active_lanes() <= 4.0);
        assert!(pot.stats.k_mean_active_lanes() > 0.0);
    }

    #[test]
    fn name_and_cutoff() {
        let pot = TersoffSchemeAAvxD::new(TersoffParams::silicon());
        assert_eq!(pot.name(), "tersoff/scheme-a/w4");
        assert_eq!(pot.cutoff(), 3.0);
    }
}
