//! Accumulation-precision force targets.
//!
//! Every optimized kernel accumulates forces in its accumulation precision
//! `A` and finally folds into the `f64` [`ComputeOutput`]. When `A` is a
//! reduced precision (`Opt-S`, `Opt-M`) a separate `A`-typed buffer is
//! unavoidable; but when `A = f64` (`Ref`, `Opt-D`) that buffer is a pure
//! overhead — an extra O(n) zero and an extra O(n) fold per thread per step.
//! The helpers here let kernels write **straight into** the per-thread
//! `ComputeOutput` force array in that case: [`flat_f64_forces`] /
//! [`array3_f64_forces`] produce an `A`-typed view of the output buffer iff
//! `A == f64` (checked by `TypeId`, so the branch monomorphizes away).
//!
//! The direct path is numerically identical to the buffered one: the
//! removed fold added each `A = f64` partial sum to a zeroed `f64` slot,
//! which is exact.

use md_core::potential::ComputeOutput;
use std::any::TypeId;
use vektor::Real;

/// Is the accumulation type `A` double precision?
#[inline(always)]
pub fn acc_is_f64<A: Real>() -> bool {
    TypeId::of::<A>() == TypeId::of::<f64>()
}

/// Flat (stride-3) `A`-typed view of an output force buffer, available iff
/// `A == f64`.
#[inline(always)]
pub fn flat_f64_forces<A: Real>(forces: &mut [[f64; 3]]) -> Option<&mut [A]> {
    if !acc_is_f64::<A>() {
        return None;
    }
    let flat: &mut [f64] = forces.as_flattened_mut();
    // SAFETY: A == f64 (TypeId-checked above), identical layout.
    Some(unsafe { &mut *(flat as *mut [f64] as *mut [A]) })
}

/// `[[A; 3]]` view of an output force buffer, available iff `A == f64`.
#[inline(always)]
pub fn array3_f64_forces<A: Real>(forces: &mut [[f64; 3]]) -> Option<&mut [[A; 3]]> {
    if !acc_is_f64::<A>() {
        return None;
    }
    // SAFETY: A == f64 (TypeId-checked above), identical layout.
    Some(unsafe { &mut *(forces as *mut [[f64; 3]] as *mut [[A; 3]]) })
}

/// A borrowed accumulation target: the force buffer a kernel writes (either
/// its per-thread scratch or, for `A = f64`, the output array directly) plus
/// the scalar energy/virial accumulators.
pub struct AccView<'a, A: Real> {
    /// Per-atom forces, stride 3.
    pub forces: &'a mut [A],
    /// Total energy accumulator.
    pub energy: &'a mut A,
    /// Scalar virial accumulator (the fused-trace channel — see
    /// `ComputeOutput::virial`).
    pub virial: &'a mut A,
    /// Virial-tensor accumulators in Voigt order `[xx, yy, zz, xy, xz, yz]`.
    pub tensor: &'a mut [A; 6],
}

/// Fold an `A`-precision flat force buffer into the `f64` output (the
/// buffered path for `A ≠ f64`).
pub fn fold_flat_forces<A: Real>(forces: &[A], out: &mut ComputeOutput) {
    for (idx, dst) in out.forces.iter_mut().enumerate() {
        for d in 0..3 {
            dst[d] += forces[idx * 3 + d].to_f64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_views_alias_the_output() {
        let mut forces = vec![[0.0f64; 3]; 4];
        {
            let flat = flat_f64_forces::<f64>(&mut forces).expect("f64 view");
            assert_eq!(flat.len(), 12);
            flat[3] = 7.0;
            flat[11] = -1.5;
        }
        assert_eq!(forces[1][0], 7.0);
        assert_eq!(forces[3][2], -1.5);
        {
            let arr = array3_f64_forces::<f64>(&mut forces).expect("f64 view");
            arr[0][1] = 2.0;
        }
        assert_eq!(forces[0][1], 2.0);
    }

    #[test]
    fn reduced_precision_gets_no_view() {
        let mut forces = vec![[0.0f64; 3]; 4];
        assert!(flat_f64_forces::<f32>(&mut forces).is_none());
        assert!(array3_f64_forces::<f32>(&mut forces).is_none());
        assert!(acc_is_f64::<f64>());
        assert!(!acc_is_f64::<f32>());
    }

    #[test]
    fn fold_accumulates_into_output() {
        let mut out = ComputeOutput::zeros(2);
        out.forces[1][2] = 1.0;
        let buf: Vec<f32> = (0..6).map(|i| i as f32).collect();
        fold_flat_forces(&buf, &mut out);
        assert_eq!(out.forces[0], [0.0, 1.0, 2.0]);
        assert_eq!(out.forces[1], [3.0, 4.0, 6.0]);
    }

    #[test]
    fn acc_view_carries_all_three_targets() {
        let mut f = vec![0.0f64; 6];
        let mut e = 0.0f64;
        let mut v = 0.0f64;
        let mut w = [0.0f64; 6];
        let view = AccView {
            forces: &mut f,
            energy: &mut e,
            virial: &mut v,
            tensor: &mut w,
        };
        view.forces[0] = 1.0;
        *view.energy += 2.0;
        *view.virial -= 3.0;
        view.tensor[5] += 4.0;
        assert_eq!(f[0], 1.0);
        assert_eq!(e, 2.0);
        assert_eq!(v, -3.0);
        assert_eq!(w[5], 4.0);
    }
}
