//! The "filter" component (Sec. IV-B and IV-D of the paper).
//!
//! The optimized kernels split the work into a *filter* that decides which
//! (i, j) interactions reach the numerical kernel and a *computational*
//! component that only ever sees work worth doing. Two artifacts implement
//! the filter side:
//!
//! * [`FilteredNeighbors`] — per-atom neighbor shortlists re-filtered from
//!   the skin-extended list `S_i` down to atoms within the **global maximum
//!   cutoff** (filtering with any smaller, type-dependent cutoff could drop
//!   physically interacting atoms in multi-species systems — the correctness
//!   argument of Sec. IV-D).
//! * [`PackedPairs`] — the flat list of (i, j) pairs already known to be
//!   inside the interaction cutoff, which is what vectorization scheme (1b)
//!   consumes so that every vector lane starts with real work.

use md_core::atom::AtomData;
use md_core::neighbor::NeighborList;
use md_core::simbox::SimBox;

/// Per-atom neighbor shortlists filtered by a single global cutoff.
#[derive(Clone, Debug, Default)]
pub struct FilteredNeighbors {
    /// Row offsets: neighbors of atom i are `lists[first[i]..first[i+1]]`.
    pub first: Vec<usize>,
    /// Filtered neighbor indices.
    pub lists: Vec<u32>,
    /// Number of atoms the lists were built for.
    pub n_local: usize,
}

impl FilteredNeighbors {
    /// Filter a skin-extended neighbor list down to `cutoff` (typically the
    /// potential's `max_cutoff`). Distances are measured with the
    /// minimum-image convention of `sim_box`, consistent with the kernels.
    pub fn build(
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        cutoff: f64,
    ) -> Self {
        let mut out = FilteredNeighbors::default();
        out.rebuild(atoms, sim_box, neighbors, cutoff);
        out
    }

    /// Re-filter in place, reusing the existing allocations. In steady state
    /// (stable atom count, bounded neighbor counts) this performs no heap
    /// allocation, which is what keeps the threaded force loop
    /// allocation-free.
    pub fn rebuild(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        cutoff: f64,
    ) {
        let cutsq = cutoff * cutoff;
        let n_local = neighbors.n_local;
        self.first.clear();
        self.lists.clear();
        self.first.reserve(n_local + 1);
        self.first.push(0);
        for i in 0..n_local {
            let xi = atoms.x[i];
            for &j in neighbors.neighbors_of(i) {
                let d = sim_box.min_image(xi, atoms.x[j]);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < cutsq {
                    self.lists.push(j as u32);
                }
            }
            self.first.push(self.lists.len());
        }
        self.n_local = n_local;
    }

    /// Filtered neighbors of atom `i`.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.lists[self.first[i]..self.first[i + 1]]
    }

    /// Filtered neighbor count of atom `i`.
    #[inline]
    pub fn count(&self, i: usize) -> usize {
        self.first[i + 1] - self.first[i]
    }

    /// Average filtered neighbors per atom (≈4 for the silicon benchmark —
    /// the "extremely short neighbor lists" the paper stresses).
    pub fn average_count(&self) -> f64 {
        if self.n_local == 0 {
            0.0
        } else {
            self.lists.len() as f64 / self.n_local as f64
        }
    }

    /// Largest filtered neighbor count.
    pub fn max_count(&self) -> usize {
        (0..self.n_local).map(|i| self.count(i)).max().unwrap_or(0)
    }
}

/// The flat (i, j) pair list consumed by scheme (1b): the fused I·J iteration
/// space with the out-of-cutoff pairs already removed.
#[derive(Clone, Debug, Default)]
pub struct PackedPairs {
    /// Central atom of each pair.
    pub i: Vec<u32>,
    /// Neighbor atom of each pair.
    pub j: Vec<u32>,
    /// Row offsets into the pair arrays per central atom (pairs of atom i
    /// are contiguous), handy for diagnostics.
    pub first_pair: Vec<usize>,
}

impl PackedPairs {
    /// Pack every in-cutoff (i, j) pair from the filtered lists.
    pub fn build(filtered: &FilteredNeighbors) -> Self {
        let mut out = PackedPairs::default();
        out.rebuild(filtered);
        out
    }

    /// Re-pack in place, reusing the existing allocations (allocation-free in
    /// steady state, like [`FilteredNeighbors::rebuild`]).
    pub fn rebuild(&mut self, filtered: &FilteredNeighbors) {
        self.i.clear();
        self.j.clear();
        self.first_pair.clear();
        self.first_pair.reserve(filtered.n_local + 1);
        self.first_pair.push(0);
        for i in 0..filtered.n_local {
            for &j in filtered.neighbors_of(i) {
                self.i.push(i as u32);
                self.j.push(j);
            }
            self.first_pair.push(self.i.len());
        }
    }

    /// Number of packed pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// True when no pairs were packed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }
}

/// The per-step shared read-only state every optimized kernel needs: the
/// filtered shortlists, optionally the packed (i, j) pair list (scheme 1b),
/// and the positions packed into the compute precision. Owned by each kernel
/// and refreshed in place once per step so the hot loop never allocates.
#[derive(Clone, Debug, Default)]
pub struct Prepared<T> {
    /// Filtered per-atom shortlists.
    pub filtered: FilteredNeighbors,
    /// Flat (i, j) pair list; only refreshed when `with_pairs` is set.
    pub pairs: PackedPairs,
    /// Positions packed to stride 4 in the compute precision.
    pub packed_x: Vec<T>,
}

impl<T: vektor::Real> Prepared<T> {
    /// Refresh everything from the current atoms/neighbor list, reusing all
    /// internal allocations.
    pub fn refresh(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        cutoff: f64,
        with_pairs: bool,
    ) {
        self.filtered.rebuild(atoms, sim_box, neighbors, cutoff);
        if with_pairs {
            self.pairs.rebuild(&self.filtered);
        }
        crate::vector_kernel::pack_positions_into(atoms, &mut self.packed_x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn setup() -> (SimBox, AtomData, NeighborList) {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.03, 2);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        (b, atoms, list)
    }

    #[test]
    fn filtering_removes_skin_atoms() {
        let (b, atoms, list) = setup();
        // The skin-extended list holds ~16 atoms, the filtered list only the
        // ~4 true Tersoff neighbors.
        assert!(list.average_count() > 10.0);
        let filtered = FilteredNeighbors::build(&atoms, &b, &list, 3.0);
        assert!(filtered.average_count() < 6.0);
        assert!(filtered.average_count() >= 3.5);
        assert_eq!(filtered.n_local, atoms.n_local);
    }

    #[test]
    fn filtered_lists_are_subsets_within_cutoff() {
        let (b, atoms, list) = setup();
        let cutoff = 3.0;
        let filtered = FilteredNeighbors::build(&atoms, &b, &list, cutoff);
        for i in 0..filtered.n_local {
            let full: Vec<usize> = list.neighbors_of(i).to_vec();
            for &j in filtered.neighbors_of(i) {
                assert!(full.contains(&(j as usize)));
                let d2 = b.distance_sq(atoms.x[i], atoms.x[j as usize]);
                assert!(d2 < cutoff * cutoff);
            }
            // Nothing inside the cutoff was dropped.
            let kept = filtered.count(i);
            let expected = full
                .iter()
                .filter(|&&j| b.distance_sq(atoms.x[i], atoms.x[j]) < cutoff * cutoff)
                .count();
            assert_eq!(kept, expected, "atom {i}");
        }
    }

    #[test]
    fn packed_pairs_cover_every_filtered_neighbor() {
        let (b, atoms, list) = setup();
        let filtered = FilteredNeighbors::build(&atoms, &b, &list, 3.0);
        let pairs = PackedPairs::build(&filtered);
        assert_eq!(pairs.len(), filtered.lists.len());
        assert!(!pairs.is_empty());
        // Row offsets are consistent.
        for i in 0..filtered.n_local {
            assert_eq!(
                pairs.first_pair[i + 1] - pairs.first_pair[i],
                filtered.count(i)
            );
        }
        // Every packed pair refers to the right central atom.
        for (&pi, &pj) in pairs.i.iter().zip(pairs.j.iter()) {
            assert!(filtered.neighbors_of(pi as usize).contains(&pj));
        }
    }

    #[test]
    fn empty_inputs() {
        let atoms = AtomData::new();
        let b = SimBox::cubic(10.0);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let filtered = FilteredNeighbors::build(&atoms, &b, &list, 3.0);
        assert_eq!(filtered.average_count(), 0.0);
        assert_eq!(filtered.max_count(), 0);
        let pairs = PackedPairs::build(&filtered);
        assert!(pairs.is_empty());
        assert_eq!(pairs.len(), 0);
    }
}
