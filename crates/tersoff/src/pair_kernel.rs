//! The shared per-pair-vector computational kernel used by the fused scheme
//! (1b) and the warp-style scheme (1c).
//!
//! Both schemes end up with a vector of (i, j) pairs in which the central
//! atom i *differs between lanes*; what differs between them is only how
//! those pairs are formed (pre-packed by the filter for 1b, lock-stepped over
//! the J loop for 1c). Everything downstream is identical and lives here:
//!
//! * the two K-loop passes over each lane's own neighbor list, optionally
//!   using the **fast-forward** iteration of Sec. IV-C (lanes that are ready
//!   to compute idle while the others catch up, so the expensive ζ kernel
//!   only ever runs with as many lanes active as possible);
//! * the pair-level energy/force evaluation;
//! * the force scatter with **conflict handling** (building block 3), since
//!   nothing guarantees distinct targets when i varies per lane.

use crate::accumulate::{fold_flat_forces, AccView};
use crate::filter::FilteredNeighbors;
use crate::stats::KernelStats;
use crate::vector_kernel::{
    force_zeta_v, min_image_v, repulsive_v, zeta_term_and_gradients_v, PackedParams,
};
use md_core::potential::{ComputeOutput, VOIGT};
use vektor::conflict::scatter_add3;
use vektor::gather::adjacent_gather3_in;
use vektor::{Real, SimdBackend, SimdF, SimdI, SimdM};

/// Read-only context shared by every pair vector of one `compute` call.
pub struct PairKernelCtx<'a, T: Real> {
    /// Packed parameter table.
    pub packed: &'a PackedParams<T>,
    /// Packed positions, stride 4.
    pub positions: &'a [T],
    /// Atom types.
    pub types: &'a [usize],
    /// Filtered neighbor lists (the K loop iterates these).
    pub filtered: &'a FilteredNeighbors,
    /// Box lengths in compute precision.
    pub lengths: [T; 3],
    /// Periodicity flags.
    pub periodic: [bool; 3],
    /// Use the fast-forward K iteration (true) or the naive
    /// compute-as-soon-as-any-lane-is-ready iteration (false).
    pub fast_forward: bool,
}

/// The scratch force buffer in accumulation precision `A` — used by the
/// reduced-precision modes; `A = f64` kernels bypass it and write straight
/// into the per-thread [`ComputeOutput`] (see [`crate::accumulate`]).
#[derive(Clone, Debug, Default)]
pub struct Accumulators<A: Real> {
    /// Per-atom forces, stride 3.
    pub forces: Vec<A>,
}

impl<A: Real> Accumulators<A> {
    /// Zeroed accumulators for `n` atoms.
    pub fn new(n_atoms: usize) -> Self {
        let mut acc = Accumulators::default();
        acc.reset(n_atoms);
        acc
    }

    /// Zero in place, reusing the force allocation (allocation-free once the
    /// buffer has reached the steady-state atom count).
    pub fn reset(&mut self, n_atoms: usize) {
        self.forces.clear();
        self.forces.resize(n_atoms * 3, A::ZERO);
    }

    /// Fold the force buffer into a double-precision output.
    pub fn fold_into(&self, out: &mut ComputeOutput) {
        fold_flat_forces(&self.forces, out);
    }
}

/// One step of the (possibly fast-forwarded) K iteration: decides which lanes
/// compute this round and how the per-lane cursors advance.
struct KStep<const W: usize> {
    ready: SimdM<W>,
    advance: SimdM<W>,
    spin: bool,
}

/// Process one vector of (i, j) pairs: ζ pass, pair terms, gradient pass,
/// force scatter. `lane_mask` marks lanes holding a real pair. The
/// accumulation target is a borrowed [`AccView`], so the caller decides
/// whether forces land in an `A`-precision scratch buffer or (for
/// `A = f64`) directly in the per-thread output.
///
/// Generic over the executing backend `B` and `#[inline(always)]`: the
/// schemes' loop bodies inline this into their per-ISA
/// `#[target_feature]` kernel instances, so the selects/reductions below
/// compile to wide vector instructions even in a baseline build.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn process_pair_vector<B: SimdBackend, T: Real, A: Real, const W: usize>(
    ctx: &PairKernelCtx<'_, T>,
    i_idx: &[usize; W],
    j_idx: &[usize; W],
    lane_mask_in: SimdM<W>,
    acc: &mut AccView<'_, A>,
    stats: Option<&mut KernelStats>,
) {
    let mut stats = stats;
    let to_acc = |x: T| A::from_f64(x.to_f64());

    let xi = adjacent_gather3_in::<B, T, W, 4>(ctx.positions, i_idx, lane_mask_in);
    let xj = adjacent_gather3_in::<B, T, W, 4>(ctx.positions, j_idx, lane_mask_in);
    let del_ij = min_image_v::<B, T, W>(
        [xj[0] - xi[0], xj[1] - xi[1], xj[2] - xi[2]],
        ctx.lengths,
        ctx.periodic,
    );
    let rsq = del_ij[0] * del_ij[0] + del_ij[1] * del_ij[1] + del_ij[2] * del_ij[2];

    let mut pair_idx = [0usize; W];
    for lane in 0..W {
        let ti = ctx.types[i_idx[lane]];
        let tj = ctx.types[j_idx[lane]];
        pair_idx[lane] = ctx.packed.index(ti, tj, tj);
    }
    let p_ij = ctx.packed.gather_in::<B, W>(&pair_idx, lane_mask_in);
    let lane_mask = lane_mask_in & rsq.simd_lt(p_ij.cutsq);
    if let Some(s) = stats.as_deref_mut() {
        s.record_pair_vector(lane_mask.count());
    }
    if lane_mask.none() {
        return;
    }
    // Guard inactive lanes against division by zero (i == j padding).
    let rsq_safe = B::select(lane_mask, rsq, SimdF::one());
    let rij = rsq_safe.sqrt();

    // Per-lane K-iteration bounds over the filtered list of each lane's i.
    let mut k_start = [0i64; W];
    let mut k_end = [0i64; W];
    for lane in 0..W {
        if lane_mask.lane(lane) {
            k_start[lane] = ctx.filtered.first[i_idx[lane]] as i64;
            k_end[lane] = ctx.filtered.first[i_idx[lane] + 1] as i64;
        }
    }
    let k_end_v = SimdI::from_array(k_end);

    // The K iteration driver, shared by both passes. Calls `body(ready, k_cand)`
    // whenever a set of lanes is scheduled to compute.
    #[allow(clippy::type_complexity)]
    let k_iterate = |stats: &mut Option<&mut KernelStats>,
                     body: &mut dyn FnMut(
        SimdM<W>,
        &[usize; W],
        [SimdF<T, W>; 3],
        SimdF<T, W>,
        &crate::vector_kernel::ParamV<T, W>,
    )| {
        let mut k_pos = SimdI::from_array(k_start);
        loop {
            let iterating = lane_mask & k_pos.simd_lt(k_end_v);
            if iterating.none() {
                break;
            }
            // Candidate neighbor per lane.
            let mut k_cand = [0usize; W];
            for lane in 0..W {
                if iterating.lane(lane) {
                    k_cand[lane] = ctx.filtered.lists[k_pos.lane(lane) as usize] as usize;
                }
            }
            let xk = adjacent_gather3_in::<B, T, W, 4>(ctx.positions, &k_cand, iterating);
            let del_ik = min_image_v::<B, T, W>(
                [xk[0] - xi[0], xk[1] - xi[1], xk[2] - xi[2]],
                ctx.lengths,
                ctx.periodic,
            );
            let rsq_ik = del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2];
            let mut trip_idx = [0usize; W];
            for lane in 0..W {
                trip_idx[lane] = ctx.packed.index(
                    ctx.types[i_idx[lane]],
                    ctx.types[j_idx[lane]],
                    ctx.types[k_cand[lane]],
                );
            }
            let p_ijk = ctx.packed.gather_in::<B, W>(&trip_idx, iterating);

            let mut ready = iterating & rsq_ik.simd_lt(p_ijk.cutsq);
            for lane in 0..W {
                if k_cand[lane] == j_idx[lane] {
                    ready.set_lane(lane, false);
                }
            }

            let step = if ctx.fast_forward {
                let spin = iterating.and_not(ready);
                if spin.any() {
                    // Advance only the not-ready lanes; ready lanes idle.
                    KStep {
                        ready: SimdM::all_false(),
                        advance: spin,
                        spin: true,
                    }
                } else {
                    KStep {
                        ready,
                        advance: ready,
                        spin: false,
                    }
                }
            } else {
                // Naive iteration: compute for whoever is ready, advance all.
                KStep {
                    ready,
                    advance: iterating,
                    spin: ready.none(),
                }
            };

            if step.spin {
                if let Some(s) = stats.as_deref_mut() {
                    s.record_k_spin();
                }
            } else if step.ready.any() {
                if let Some(s) = stats.as_deref_mut() {
                    s.record_k_compute(step.ready.count());
                }
                let rik = B::select(step.ready, rsq_ik, SimdF::one()).sqrt();
                body(step.ready, &k_cand, del_ik, rik, &p_ijk);
            }
            k_pos = k_pos.masked_increment(step.advance);
        }
    };

    // ---- Pass 1: accumulate ζ. ----
    let mut zeta = SimdF::<T, W>::zero();
    k_iterate(&mut stats, &mut |ready, _k, del_ik, rik, p_ijk| {
        let (z, _, _) = zeta_term_and_gradients_v::<B, T, W>(p_ijk, del_ij, rij, del_ik, rik);
        zeta += B::masked(z, ready);
    });

    // ---- Pair terms. ----
    let (e_rep, de_rep) = repulsive_v::<B, T, W>(&p_ij, rij);
    let (e_att, de_att, de_dzeta) = force_zeta_v::<B, T, W>(&p_ij, rij, zeta);
    *acc.energy += to_acc(B::masked_sum(e_rep + e_att, lane_mask));
    let fpair = (de_rep + de_att) / rij;
    let prefactor = -de_dzeta;

    let mut fi_vec = [SimdF::<T, W>::zero(); 3];
    let mut fj_vec = [SimdF::<T, W>::zero(); 3];
    for d in 0..3 {
        fi_vec[d] = fpair * del_ij[d];
        fj_vec[d] = -(fpair * del_ij[d]);
    }
    *acc.virial -= to_acc(B::masked_sum(fpair * rsq, lane_mask));
    for (c, (a, b)) in VOIGT.iter().enumerate() {
        acc.tensor[c] -= to_acc(B::masked_sum(fpair * del_ij[*a] * del_ij[*b], lane_mask));
    }

    // ---- Pass 2: ζ gradients → forces. ----
    let mut virial_k = T::ZERO;
    let mut tensor_k = [T::ZERO; 6];
    {
        let forces = &mut *acc.forces;
        let virial_k_ref = &mut virial_k;
        let tensor_k_ref = &mut tensor_k;
        k_iterate(&mut stats, &mut |ready, k_cand, del_ik, rik, p_ijk| {
            let (_, grad_j, grad_k) =
                zeta_term_and_gradients_v::<B, T, W>(p_ijk, del_ij, rij, del_ik, rik);
            let mut fk = [SimdF::<A, W>::zero(); 3];
            let mut gk_vec = [SimdF::<T, W>::zero(); 3];
            for d in 0..3 {
                let gj = B::masked(prefactor * grad_j[d], ready);
                let gk = B::masked(prefactor * grad_k[d], ready);
                fj_vec[d] += gj;
                fi_vec[d] = fi_vec[d] - gj - gk;
                fk[d] = gk.convert();
                gk_vec[d] = gk;
                *virial_k_ref += B::masked_sum(del_ik[d] * gk, ready);
            }
            for (c, (a, b)) in VOIGT.iter().enumerate() {
                tensor_k_ref[c] += B::masked_sum(del_ik[*a] * gk_vec[*b], ready);
            }
            // Force on k: lanes may collide with each other (and with i/j of
            // other lanes), so the accumulation is conflict-handled.
            scatter_add3::<A, W, 3>(forces, k_cand, ready, fk);
        });
    }
    *acc.virial += to_acc(virial_k);
    for (c, v) in tensor_k.iter().enumerate() {
        acc.tensor[c] += to_acc(*v);
    }

    // Virial contribution of the j-side three-body force (pair part already
    // tallied above): Σ del_ij · (F_j − pair part).
    for d in 0..3 {
        let three_body_j = fj_vec[d] + fpair * del_ij[d];
        *acc.virial += to_acc(B::masked_sum(del_ij[d] * three_body_j, lane_mask));
    }
    for (c, (a, b)) in VOIGT.iter().enumerate() {
        let three_body_j = fj_vec[*b] + fpair * del_ij[*b];
        acc.tensor[c] += to_acc(B::masked_sum(del_ij[*a] * three_body_j, lane_mask));
    }

    // ---- Scatter the i / j forces (conflicts possible in both). ----
    let fi_acc: [SimdF<A, W>; 3] = [
        B::masked(fi_vec[0], lane_mask).convert(),
        B::masked(fi_vec[1], lane_mask).convert(),
        B::masked(fi_vec[2], lane_mask).convert(),
    ];
    let fj_acc: [SimdF<A, W>; 3] = [
        B::masked(fj_vec[0], lane_mask).convert(),
        B::masked(fj_vec[1], lane_mask).convert(),
        B::masked(fj_vec[2], lane_mask).convert(),
    ];
    scatter_add3::<A, W, 3>(acc.forces, i_idx, lane_mask, fi_acc);
    scatter_add3::<A, W, 3>(acc.forces, j_idx, lane_mask, fj_acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TersoffParams;

    /// The kernel context builder used by unit tests of this module only;
    /// the integration-level equivalence against the reference implementation
    /// lives in the scheme_b / scheme_c tests.
    #[test]
    fn accumulators_start_zeroed() {
        let acc = Accumulators::<f64>::new(5);
        assert_eq!(acc.forces.len(), 15);
        assert!(acc.forces.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn packed_params_available_for_kernel() {
        let packed = PackedParams::<f32>::new(&TersoffParams::silicon());
        assert_eq!(packed.nelements, 1);
    }
}
