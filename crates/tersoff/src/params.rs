//! Tersoff potential parameters.
//!
//! A Tersoff parameterization is a table of entries indexed by an *ordered
//! triplet* of element types (i, j, k): the two-body constants (A, B, λ₁, λ₂,
//! R, D) are read from the (i, j, j) entry and the three-body constants
//! (γ, λ₃, c, d, h, β, n, m) from the (i, j, k) entry — exactly the layout of
//! LAMMPS' `pair_style tersoff` and its `*.tersoff` files, which this module
//! can also parse. Well-known published parameter sets for Si, C and Ge are
//! provided as constructors, plus the Tersoff-1989 mixing rules used to build
//! the multi-element Si/C table for the SiC examples.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One parameter entry (for one ordered (i, j, k) element triplet).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TersoffParam {
    /// Exponent selector of the ζ exponential: 3 or 1 (LAMMPS `m`).
    pub powerm: f64,
    /// Angular prefactor γ.
    pub gamma: f64,
    /// λ₃ of the ζ exponential (1/Å).
    pub lam3: f64,
    /// Angular strength c.
    pub c: f64,
    /// Angular width d.
    pub d: f64,
    /// cos θ₀ (called `h` in the formulas).
    pub h: f64,
    /// Bond-order exponent n.
    pub powern: f64,
    /// Bond-order prefactor β.
    pub beta: f64,
    /// Attractive decay λ₂ (1/Å).
    pub lam2: f64,
    /// Attractive prefactor B (eV).
    pub bigb: f64,
    /// Cutoff centre R (Å).
    pub bigr: f64,
    /// Cutoff half-width D (Å).
    pub bigd: f64,
    /// Repulsive decay λ₁ (1/Å).
    pub lam1: f64,
    /// Repulsive prefactor A (eV).
    pub biga: f64,

    // Derived quantities (precomputed once; part of the paper's "reduce
    // indirection / redundant computation" scalar optimizations).
    /// Full cutoff R + D.
    pub cut: f64,
    /// Squared cutoff.
    pub cutsq: f64,
    /// c², precomputed.
    pub c2: f64,
    /// d², precomputed.
    pub d2: f64,
    /// c²/d², precomputed.
    pub c2_over_d2: f64,
    /// Threshold above which b_ij ≈ (βζ)^(-1/2).
    pub ca1: f64,
    /// Threshold above which the first-order correction suffices.
    pub ca2: f64,
    /// Threshold below which b_ij ≈ 1 − (βζ)ⁿ/(2n).
    pub ca3: f64,
    /// Threshold below which b_ij ≈ 1.
    pub ca4: f64,
}

impl TersoffParam {
    /// Build an entry from the 14 published constants (in the LAMMPS file
    /// order `m γ λ₃ c d h n β λ₂ B R D λ₁ A`), computing the derived
    /// quantities.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        powerm: f64,
        gamma: f64,
        lam3: f64,
        c: f64,
        d: f64,
        h: f64,
        powern: f64,
        beta: f64,
        lam2: f64,
        bigb: f64,
        bigr: f64,
        bigd: f64,
        lam1: f64,
        biga: f64,
    ) -> Self {
        assert!(
            (powerm - 3.0).abs() < 1e-12 || (powerm - 1.0).abs() < 1e-12,
            "powerm (m) must be 1 or 3, got {powerm}"
        );
        assert!(
            bigr > 0.0 && bigd > 0.0 && bigd < bigr,
            "invalid cutoff R={bigr} D={bigd}"
        );
        assert!(powern > 0.0 && beta >= 0.0 && d != 0.0);
        let cut = bigr + bigd;
        let n = powern;
        TersoffParam {
            powerm,
            gamma,
            lam3,
            c,
            d,
            h,
            powern,
            beta,
            lam2,
            bigb,
            bigr,
            bigd,
            lam1,
            biga,
            cut,
            cutsq: cut * cut,
            c2: c * c,
            d2: d * d,
            c2_over_d2: (c * c) / (d * d),
            ca1: (2.0 * n * 1.0e-16).powf(-1.0 / n),
            ca2: (2.0 * n * 1.0e-8).powf(-1.0 / n),
            ca3: 1.0 / (2.0 * n * 1.0e-8).powf(-1.0 / n),
            ca4: 1.0 / (2.0 * n * 1.0e-16).powf(-1.0 / n),
        }
    }

    /// Is the ζ exponential cubic (`m = 3`)?
    #[inline]
    pub fn cubic_exponent(&self) -> bool {
        (self.powerm - 3.0).abs() < 0.5
    }
}

/// A full parameter set for a system with `n_elements` species.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TersoffParams {
    /// Element names, index = atom type.
    pub elements: Vec<String>,
    /// Entries indexed `[i * n² + j * n + k]`.
    entries: Vec<TersoffParam>,
    /// Largest cutoff over all entries (the global cutoff used to size
    /// neighbor lists and to filter them, Sec. IV-D of the paper).
    pub max_cutoff: f64,
}

impl TersoffParams {
    /// Build from a map of `(element_i, element_j, element_k) → entry`.
    /// Every ordered triplet over the element list must be present.
    pub fn from_entries(
        elements: Vec<String>,
        map: &HashMap<(String, String, String), TersoffParam>,
    ) -> Self {
        let n = elements.len();
        assert!(n > 0, "at least one element required");
        let mut entries = Vec::with_capacity(n * n * n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let key = (
                        elements[i].clone(),
                        elements[j].clone(),
                        elements[k].clone(),
                    );
                    let entry = map
                        .get(&key)
                        .unwrap_or_else(|| panic!("missing Tersoff entry for triplet {key:?}"));
                    entries.push(*entry);
                }
            }
        }
        let max_cutoff = entries.iter().map(|e| e.cut).fold(0.0, f64::max);
        TersoffParams {
            elements,
            entries,
            max_cutoff,
        }
    }

    /// Single-element parameter set.
    pub fn single_element(element: &str, entry: TersoffParam) -> Self {
        let mut map = HashMap::new();
        map.insert(
            (
                element.to_string(),
                element.to_string(),
                element.to_string(),
            ),
            entry,
        );
        Self::from_entries(vec![element.to_string()], &map)
    }

    /// Number of species.
    #[inline]
    pub fn n_elements(&self) -> usize {
        self.elements.len()
    }

    /// The entry for the ordered triplet of atom types (i, j, k).
    #[inline]
    pub fn triplet(&self, ti: usize, tj: usize, tk: usize) -> &TersoffParam {
        let n = self.n_elements();
        &self.entries[ti * n * n + tj * n + tk]
    }

    /// The entry used for the two-body part of the (i, j) pair — the
    /// (i, j, j) triplet, as in LAMMPS.
    #[inline]
    pub fn pair(&self, ti: usize, tj: usize) -> &TersoffParam {
        self.triplet(ti, tj, tj)
    }

    /// Flat access to all entries (used by the vector kernels to build their
    /// packed parameter tables).
    pub fn entries(&self) -> &[TersoffParam] {
        &self.entries
    }

    /// Index of an entry in [`TersoffParams::entries`] for (i, j, k).
    #[inline]
    pub fn triplet_index(&self, ti: usize, tj: usize, tk: usize) -> usize {
        let n = self.n_elements();
        ti * n * n + tj * n + tk
    }

    /// The Tersoff-1988 Si parameterization "Si(B)"
    /// (J. Tersoff, Phys. Rev. B 37, 6991 (1988)).
    pub fn silicon_b() -> Self {
        Self::single_element(
            "Si",
            TersoffParam::new(
                3.0, 1.0, 1.3258, 4.8381, 2.0417, 0.0, 22.956, 0.33675, 1.3258, 95.373, 3.0, 0.2,
                3.2394, 3264.7,
            ),
        )
    }

    /// The Tersoff-1988 Si parameterization "Si(C)"
    /// (J. Tersoff, Phys. Rev. B 38, 9902 (1988)) — the parameter set shipped
    /// as LAMMPS' `Si.tersoff` and therefore the one the paper's silicon
    /// benchmark uses. This is the default for the benchmarks here as well.
    pub fn silicon() -> Self {
        Self::single_element(
            "Si",
            TersoffParam::new(
                3.0, 1.0, 0.0, 100390.0, 16.217, -0.59825, 0.78734, 1.1e-6, 1.73222, 471.18, 2.85,
                0.15, 2.4799, 1830.8,
            ),
        )
    }

    /// Carbon (Tersoff, Phys. Rev. Lett. 61, 2879 (1988)).
    pub fn carbon() -> Self {
        Self::single_element(
            "C",
            TersoffParam::new(
                3.0, 1.0, 0.0, 38049.0, 4.3484, -0.57058, 0.72751, 1.5724e-7, 2.2119, 346.74, 1.95,
                0.15, 3.4879, 1393.6,
            ),
        )
    }

    /// Germanium (Tersoff, Phys. Rev. B 39, 5566 (1989)).
    pub fn germanium() -> Self {
        Self::single_element(
            "Ge",
            TersoffParam::new(
                3.0, 1.0, 0.0, 106430.0, 15.652, -0.43884, 0.75627, 9.0166e-7, 1.7047, 419.23,
                2.95, 0.15, 2.4451, 1769.0,
            ),
        )
    }

    /// Two-element Si/C parameter set built with the Tersoff-1989 mixing
    /// rules (Phys. Rev. B 39, 5566 (1989)) from the elemental Si and C
    /// entries, with the published χ(Si,C) = 0.9776 scaling of the mixed
    /// attractive term. Atom type 0 is Si, type 1 is C — matching the
    /// zincblende lattice builder.
    pub fn silicon_carbide() -> Self {
        let si = *Self::silicon().pair(0, 0);
        let c = *Self::carbon().pair(0, 0);
        Self::mixed_two_element(("Si", si), ("C", c), 0.9776)
    }

    /// Two-element Si/Ge parameter set: the same 1989 mixing rules with the
    /// published χ(Si,Ge) = 1.00061. Atom type 0 is Si, type 1 is Ge —
    /// matching the alloy lattice builder's species mix.
    pub fn silicon_germanium() -> Self {
        let si = *Self::silicon().pair(0, 0);
        let ge = *Self::germanium().pair(0, 0);
        Self::mixed_two_element(("Si", si), ("Ge", ge), 1.00061)
    }

    /// Tersoff-1989 interpolation of two elemental parameter sets into the
    /// full 8-entry two-element table, with the χ scaling applied to the
    /// mixed attractive term.
    fn mixed_two_element(
        (name0, p0): (&str, TersoffParam),
        (name1, p1): (&str, TersoffParam),
        chi_mixed: f64,
    ) -> Self {
        let elements = vec![name0.to_string(), name1.to_string()];
        let elem_entry = |t: usize| if t == 0 { p0 } else { p1 };

        let mut map = HashMap::new();
        for i in 0..2usize {
            for j in 0..2usize {
                for k in 0..2usize {
                    let pi = elem_entry(i);
                    let pj = elem_entry(j);
                    let pk = elem_entry(k);
                    let chi = if i != j { chi_mixed } else { 1.0 };
                    // Two-body constants mix over (i, j); the cutoff of the
                    // (i, k) leg of the ζ term mixes over (i, k), which is
                    // what the (i, j, k) entry's R/D are used for in LAMMPS.
                    let entry = TersoffParam::new(
                        pi.powerm,
                        pi.gamma,
                        pi.lam3,
                        pi.c,
                        pi.d,
                        pi.h,
                        pi.powern,
                        pi.beta,
                        0.5 * (pi.lam2 + pj.lam2),
                        chi * (pi.bigb * pj.bigb).sqrt(),
                        (pi.bigr * pk.bigr).sqrt(),
                        (pi.bigd * pk.bigd).sqrt(),
                        0.5 * (pi.lam1 + pj.lam1),
                        (pi.biga * pj.biga).sqrt(),
                    );
                    map.insert(
                        (
                            elements[i].clone(),
                            elements[j].clone(),
                            elements[k].clone(),
                        ),
                        entry,
                    );
                }
            }
        }
        Self::from_entries(elements, &map)
    }

    /// Parse a LAMMPS-format `*.tersoff` file: blank lines and `#` comments
    /// ignored; each entry is 3 element names followed by 14 numbers
    /// (`m γ λ₃ c d h n β λ₂ B R D λ₁ A`), possibly wrapped over multiple
    /// lines. `elements` gives the mapping from atom type to element name
    /// (the LAMMPS `pair_coeff * * file El1 El2 ...` argument).
    pub fn parse_lammps(content: &str, elements: &[&str]) -> Result<Self, String> {
        let tokens: Vec<String> = content
            .lines()
            .map(|l| l.split('#').next().unwrap_or(""))
            .flat_map(|l| {
                l.split_whitespace()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        if !tokens.len().is_multiple_of(17) {
            return Err(format!(
                "malformed tersoff file: {} tokens is not a multiple of 17",
                tokens.len()
            ));
        }
        let mut map = HashMap::new();
        for chunk in tokens.chunks(17) {
            let e1 = chunk[0].clone();
            let e2 = chunk[1].clone();
            let e3 = chunk[2].clone();
            let nums: Result<Vec<f64>, _> = chunk[3..].iter().map(|s| s.parse::<f64>()).collect();
            let nums = nums.map_err(|e| format!("bad number in entry {e1} {e2} {e3}: {e}"))?;
            let p = TersoffParam::new(
                nums[0], nums[1], nums[2], nums[3], nums[4], nums[5], nums[6], nums[7], nums[8],
                nums[9], nums[10], nums[11], nums[12], nums[13],
            );
            map.insert((e1, e2, e3), p);
        }
        let element_names: Vec<String> = elements.iter().map(|s| s.to_string()).collect();
        // Verify completeness before delegating (from_entries panics).
        for i in &element_names {
            for j in &element_names {
                for k in &element_names {
                    if !map.contains_key(&(i.clone(), j.clone(), k.clone())) {
                        return Err(format!("missing entry for triplet {i} {j} {k}"));
                    }
                }
            }
        }
        Ok(Self::from_entries(element_names, &map))
    }

    /// Serialize back to the LAMMPS file format (round-trip support).
    pub fn to_lammps(&self) -> String {
        let mut out = String::from("# Tersoff parameters (generated)\n# el1 el2 el3 m gamma lam3 c d h n beta lam2 B R D lam1 A\n");
        let n = self.n_elements();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let p = self.triplet(i, j, k);
                    out.push_str(&format!(
                        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                        self.elements[i],
                        self.elements[j],
                        self.elements[k],
                        p.powerm,
                        p.gamma,
                        p.lam3,
                        p.c,
                        p.d,
                        p.h,
                        p.powern,
                        p.beta,
                        p.lam2,
                        p.bigb,
                        p.bigr,
                        p.bigd,
                        p.lam1,
                        p.biga
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_are_computed() {
        let p = *TersoffParams::silicon().pair(0, 0);
        assert!((p.cut - 3.0).abs() < 1e-12);
        assert!((p.cutsq - 9.0).abs() < 1e-12);
        assert!((p.c2 - p.c * p.c).abs() < 1e-6);
        assert!(p.ca1 > p.ca2 && p.ca2 > p.ca3 && p.ca3 > p.ca4);
    }

    #[test]
    fn silicon_b_and_c_differ() {
        let b = *TersoffParams::silicon_b().pair(0, 0);
        let c = *TersoffParams::silicon().pair(0, 0);
        assert_ne!(b.biga, c.biga);
        assert!(b.lam3 > 0.0);
        assert_eq!(c.lam3, 0.0);
    }

    #[test]
    fn sige_mixing_rules_follow_tersoff_1989() {
        let params = TersoffParams::silicon_germanium();
        let si = *TersoffParams::silicon().pair(0, 0);
        let ge = *TersoffParams::germanium().pair(0, 0);
        // Pure diagonal entries are the elemental ones, bit for bit.
        assert_eq!(*params.pair(0, 0), si);
        assert_eq!(*params.pair(1, 1), ge);
        // Mixed pair entries: geometric/arithmetic means with the published
        // χ(Si,Ge) = 1.00061 scaling on the attractive prefactor only.
        let chi = 1.00061;
        for (i, j) in [(0usize, 1usize), (1, 0)] {
            let m = params.pair(i, j);
            assert_eq!(m.bigb, chi * (si.bigb * ge.bigb).sqrt());
            assert_eq!(m.biga, (si.biga * ge.biga).sqrt());
            assert_eq!(m.lam1, 0.5 * (si.lam1 + ge.lam1));
            assert_eq!(m.lam2, 0.5 * (si.lam2 + ge.lam2));
            assert_eq!(m.bigr, (si.bigr * ge.bigr).sqrt());
        }
        // Three-body constants come from the center atom i alone: the
        // (i, j, k) entry's angular/bond-order block matches element i.
        for j in 0..2 {
            for k in 0..2 {
                let t = params.triplet(0, j, k);
                assert_eq!(
                    (t.c, t.d, t.h, t.powern, t.beta),
                    (si.c, si.d, si.h, si.powern, si.beta)
                );
                let t = params.triplet(1, j, k);
                assert_eq!(
                    (t.c, t.d, t.h, t.powern, t.beta),
                    (ge.c, ge.d, ge.h, ge.powern, ge.beta)
                );
            }
        }
        // The ζ-leg cutoff mixes over (i, k): the (0, 0, 1) entry reaches
        // the geometric-mean R/D even though its pair block is pure Si.
        let t = params.triplet(0, 0, 1);
        assert_eq!(t.bigr, (si.bigr * ge.bigr).sqrt());
        assert_eq!(params.max_cutoff, ge.cut);
    }

    #[test]
    fn single_element_indexing() {
        let params = TersoffParams::silicon();
        assert_eq!(params.n_elements(), 1);
        assert_eq!(params.pair(0, 0), params.triplet(0, 0, 0));
        assert_eq!(params.max_cutoff, 3.0);
        assert_eq!(params.entries().len(), 1);
    }

    #[test]
    fn sic_mixing_produces_symmetric_two_body_terms() {
        let sic = TersoffParams::silicon_carbide();
        assert_eq!(sic.n_elements(), 2);
        let si_c = sic.pair(0, 1);
        let c_si = sic.pair(1, 0);
        // Geometric/arithmetic mixing is symmetric in the two-body constants.
        assert!((si_c.biga - c_si.biga).abs() < 1e-9);
        assert!((si_c.bigb - c_si.bigb).abs() < 1e-9);
        assert!((si_c.lam1 - c_si.lam1).abs() < 1e-9);
        // Pure entries keep their elemental values.
        let si = TersoffParams::silicon();
        assert!((sic.pair(0, 0).biga - si.pair(0, 0).biga).abs() < 1e-12);
        // The mixed attractive term carries the chi factor.
        let unmixed = (si.pair(0, 0).bigb * TersoffParams::carbon().pair(0, 0).bigb).sqrt();
        assert!((si_c.bigb - 0.9776 * unmixed).abs() < 1e-9);
        // Max cutoff comes from the largest R + D in the table.
        assert!(sic.max_cutoff >= 3.0);
    }

    #[test]
    fn three_body_constants_follow_first_element() {
        let sic = TersoffParams::silicon_carbide();
        let si = *TersoffParams::silicon().pair(0, 0);
        let c = *TersoffParams::carbon().pair(0, 0);
        assert_eq!(sic.triplet(0, 1, 1).c, si.c);
        assert_eq!(sic.triplet(1, 0, 0).c, c.c);
        assert_eq!(sic.triplet(0, 1, 0).h, si.h);
    }

    #[test]
    fn lammps_round_trip() {
        let sic = TersoffParams::silicon_carbide();
        let text = sic.to_lammps();
        let parsed = TersoffParams::parse_lammps(&text, &["Si", "C"]).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    let a = sic.triplet(i, j, k);
                    let b = parsed.triplet(i, j, k);
                    assert!((a.biga - b.biga).abs() < 1e-9);
                    assert!((a.c - b.c).abs() < 1e-9);
                    assert!((a.bigr - b.bigr).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TersoffParams::parse_lammps("Si Si Si 1 2 3", &["Si"]).is_err());
        let missing = TersoffParams::silicon().to_lammps();
        assert!(TersoffParams::parse_lammps(&missing, &["Si", "C"]).is_err());
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let text = format!(
            "# a comment line\n\n{}\n# trailing comment",
            TersoffParams::silicon().to_lammps()
        );
        let parsed = TersoffParams::parse_lammps(&text, &["Si"]).unwrap();
        assert_eq!(parsed.n_elements(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid cutoff")]
    fn bad_cutoff_rejected() {
        TersoffParam::new(
            3.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.1, 0.2, 1.0, 1.0,
        );
    }

    #[test]
    #[should_panic(expected = "powerm")]
    fn bad_powerm_rejected() {
        TersoffParam::new(
            2.0, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 3.0, 0.2, 1.0, 1.0,
        );
    }

    #[test]
    #[should_panic(expected = "missing Tersoff entry")]
    fn incomplete_entry_map_panics() {
        let mut map = HashMap::new();
        map.insert(
            ("Si".to_string(), "Si".to_string(), "Si".to_string()),
            *TersoffParams::silicon().pair(0, 0),
        );
        TersoffParams::from_entries(vec!["Si".to_string(), "C".to_string()], &map);
    }
}
