//! The vectorized "computational component": the Tersoff potential functions
//! evaluated on `W` lanes at once.
//!
//! These are straight-line, mask-based translations of the scalar functions
//! in [`crate::functions`]; every branch of the scalar code becomes a
//! lane-wise `select`. The parameter lookup is expressed as gathers from a
//! packed structure-of-arrays table ([`PackedParams`]), with a fast uniform
//! path for single-species systems where every lane shares the same entry
//! (the silicon benchmark).
//!
//! Every function that touches a dispatched vector operation (select,
//! gather, masked reductions) is generic over the executing
//! `B: SimdBackend`, so the whole evaluation monomorphizes into the
//! per-ISA kernel instances the `vektor::dispatch::run_kernel` trampoline
//! launches — the backend threads through the call tree as a type
//! parameter instead of any process-global state.

use crate::functions::EXP_CLAMP;
use crate::params::TersoffParams;
use md_core::atom::AtomData;
use vektor::{PortableBackend, Real, SimdBackend, SimdF, SimdM};

/// Pack atom positions (local + ghost) into a flat stride-4 buffer of the
/// compute precision — the USER-INTEL-style packing step shared by every
/// optimized kernel in this crate.
pub fn pack_positions<T: Real>(atoms: &AtomData) -> Vec<T> {
    let mut out = Vec::new();
    pack_positions_into(atoms, &mut out);
    out
}

/// In-place variant of [`pack_positions`]: reuses the buffer's allocation so
/// the steady-state force loop stays allocation-free.
pub fn pack_positions_into<T: Real>(atoms: &AtomData, out: &mut Vec<T>) {
    out.clear();
    out.reserve(atoms.n_total() * 4);
    for p in &atoms.x {
        out.push(T::from_f64(p[0]));
        out.push(T::from_f64(p[1]));
        out.push(T::from_f64(p[2]));
        out.push(T::ZERO);
    }
}

/// Structure-of-arrays parameter table in compute precision: one flat array
/// per field, indexed by the (i, j, k) triplet index.
#[derive(Clone, Debug)]
pub struct PackedParams<T: Real> {
    /// Number of species.
    pub nelements: usize,
    /// True when the ζ exponential is cubic (`m = 3`); uniform across the
    /// table in every published parameterization, asserted at build time.
    pub cubic: bool,
    gamma: Vec<T>,
    lam3: Vec<T>,
    c2: Vec<T>,
    d2: Vec<T>,
    c2_over_d2: Vec<T>,
    h: Vec<T>,
    powern: Vec<T>,
    beta: Vec<T>,
    lam2: Vec<T>,
    bigb: Vec<T>,
    bigr: Vec<T>,
    bigd: Vec<T>,
    lam1: Vec<T>,
    biga: Vec<T>,
    cut: Vec<T>,
    cutsq: Vec<T>,
    ca1: Vec<T>,
    ca2: Vec<T>,
    ca3: Vec<T>,
    ca4: Vec<T>,
}

impl<T: Real> PackedParams<T> {
    /// Pack a parameter set.
    pub fn new(params: &TersoffParams) -> Self {
        let entries = params.entries();
        let cubic = entries[0].cubic_exponent();
        assert!(
            entries.iter().all(|e| e.cubic_exponent() == cubic),
            "mixed m=1/m=3 parameterizations are not supported by the vector kernels"
        );
        let field = |f: fn(&crate::params::TersoffParam) -> f64| -> Vec<T> {
            entries.iter().map(|e| T::from_f64(f(e))).collect()
        };
        PackedParams {
            nelements: params.n_elements(),
            cubic,
            gamma: field(|e| e.gamma),
            lam3: field(|e| e.lam3),
            c2: field(|e| e.c2),
            d2: field(|e| e.d2),
            c2_over_d2: field(|e| e.c2_over_d2),
            h: field(|e| e.h),
            powern: field(|e| e.powern),
            beta: field(|e| e.beta),
            lam2: field(|e| e.lam2),
            bigb: field(|e| e.bigb),
            bigr: field(|e| e.bigr),
            bigd: field(|e| e.bigd),
            lam1: field(|e| e.lam1),
            biga: field(|e| e.biga),
            cut: field(|e| e.cut),
            cutsq: field(|e| e.cutsq),
            ca1: field(|e| e.ca1),
            ca2: field(|e| e.ca2),
            ca3: field(|e| e.ca3),
            ca4: field(|e| e.ca4),
        }
    }

    /// Flat triplet index.
    #[inline(always)]
    pub fn index(&self, ti: usize, tj: usize, tk: usize) -> usize {
        ti * self.nelements * self.nelements + tj * self.nelements + tk
    }

    /// Gather a vector of parameter entries for per-lane triplet indices
    /// (portable form of [`PackedParams::gather_in`]).
    #[inline(always)]
    pub fn gather<const W: usize>(&self, idx: &[usize; W], mask: SimdM<W>) -> ParamV<T, W> {
        self.gather_in::<PortableBackend, W>(idx, mask)
    }

    /// Gather a vector of parameter entries for per-lane triplet indices on
    /// an explicit backend — one (hardware, on the intrinsic
    /// implementations) masked gather per field.
    #[inline(always)]
    pub fn gather_in<B: SimdBackend, const W: usize>(
        &self,
        idx: &[usize; W],
        mask: SimdM<W>,
    ) -> ParamV<T, W> {
        if self.nelements == 1 {
            // Uniform fast path: all lanes share entry 0.
            return self.splat(0);
        }
        let g = |v: &Vec<T>| B::gather_masked(v, idx, mask, v[0]);
        ParamV {
            cubic: self.cubic,
            gamma: g(&self.gamma),
            lam3: g(&self.lam3),
            c2: g(&self.c2),
            d2: g(&self.d2),
            c2_over_d2: g(&self.c2_over_d2),
            h: g(&self.h),
            powern: g(&self.powern),
            beta: g(&self.beta),
            lam2: g(&self.lam2),
            bigb: g(&self.bigb),
            bigr: g(&self.bigr),
            bigd: g(&self.bigd),
            lam1: g(&self.lam1),
            biga: g(&self.biga),
            cut: g(&self.cut),
            cutsq: g(&self.cutsq),
            ca1: g(&self.ca1),
            ca2: g(&self.ca2),
            ca3: g(&self.ca3),
            ca4: g(&self.ca4),
        }
    }

    /// Broadcast one entry to all lanes.
    #[inline(always)]
    pub fn splat<const W: usize>(&self, idx: usize) -> ParamV<T, W> {
        ParamV {
            cubic: self.cubic,
            gamma: SimdF::splat(self.gamma[idx]),
            lam3: SimdF::splat(self.lam3[idx]),
            c2: SimdF::splat(self.c2[idx]),
            d2: SimdF::splat(self.d2[idx]),
            c2_over_d2: SimdF::splat(self.c2_over_d2[idx]),
            h: SimdF::splat(self.h[idx]),
            powern: SimdF::splat(self.powern[idx]),
            beta: SimdF::splat(self.beta[idx]),
            lam2: SimdF::splat(self.lam2[idx]),
            bigb: SimdF::splat(self.bigb[idx]),
            bigr: SimdF::splat(self.bigr[idx]),
            bigd: SimdF::splat(self.bigd[idx]),
            lam1: SimdF::splat(self.lam1[idx]),
            biga: SimdF::splat(self.biga[idx]),
            cut: SimdF::splat(self.cut[idx]),
            cutsq: SimdF::splat(self.cutsq[idx]),
            ca1: SimdF::splat(self.ca1[idx]),
            ca2: SimdF::splat(self.ca2[idx]),
            ca3: SimdF::splat(self.ca3[idx]),
            ca4: SimdF::splat(self.ca4[idx]),
        }
    }

    /// Scalar cutoff-squared lookup (used by the filter side).
    #[inline(always)]
    pub fn cutsq_scalar(&self, ti: usize, tj: usize, tk: usize) -> T {
        self.cutsq[self.index(ti, tj, tk)]
    }
}

/// A vector of parameter entries (one per lane).
#[derive(Copy, Clone, Debug)]
pub struct ParamV<T: Real, const W: usize> {
    /// Cubic ζ exponential flag (uniform).
    pub cubic: bool,
    /// γ.
    pub gamma: SimdF<T, W>,
    /// λ₃.
    pub lam3: SimdF<T, W>,
    /// c².
    pub c2: SimdF<T, W>,
    /// d².
    pub d2: SimdF<T, W>,
    /// c²/d².
    pub c2_over_d2: SimdF<T, W>,
    /// h.
    pub h: SimdF<T, W>,
    /// n.
    pub powern: SimdF<T, W>,
    /// β.
    pub beta: SimdF<T, W>,
    /// λ₂.
    pub lam2: SimdF<T, W>,
    /// B.
    pub bigb: SimdF<T, W>,
    /// R.
    pub bigr: SimdF<T, W>,
    /// D.
    pub bigd: SimdF<T, W>,
    /// λ₁.
    pub lam1: SimdF<T, W>,
    /// A.
    pub biga: SimdF<T, W>,
    /// R + D.
    pub cut: SimdF<T, W>,
    /// (R + D)².
    pub cutsq: SimdF<T, W>,
    /// b_ij asymptotic thresholds.
    pub ca1: SimdF<T, W>,
    /// See `ca1`.
    pub ca2: SimdF<T, W>,
    /// See `ca1`.
    pub ca3: SimdF<T, W>,
    /// See `ca1`.
    pub ca4: SimdF<T, W>,
}

/// Lane-wise `powf` with per-lane exponents.
#[inline(always)]
fn powf_v<T: Real, const W: usize>(x: SimdF<T, W>, e: SimdF<T, W>) -> SimdF<T, W> {
    x.zip_map(e, |x, e| x.powf(e))
}

/// Lane-wise sine.
#[inline(always)]
fn sin_v<T: Real, const W: usize>(x: SimdF<T, W>) -> SimdF<T, W> {
    x.map(|v| v.sin())
}

/// Lane-wise cosine.
#[inline(always)]
fn cos_v<T: Real, const W: usize>(x: SimdF<T, W>) -> SimdF<T, W> {
    x.map(|v| v.cos())
}

/// Lane-wise exponential.
#[inline(always)]
fn exp_v<T: Real, const W: usize>(x: SimdF<T, W>) -> SimdF<T, W> {
    x.map(|v| v.exp())
}

/// Vectorized cutoff function `f_C(r)`.
#[inline(always)]
pub fn fc_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    r: SimdF<T, W>,
) -> SimdF<T, W> {
    let lower = p.bigr - p.bigd;
    let upper = p.bigr + p.bigd;
    let arg = (r - p.bigr) / p.bigd * T::from_f64(std::f64::consts::FRAC_PI_2);
    let mid = (SimdF::one() - sin_v(arg)) * T::HALF;
    let below = r.simd_lt(lower);
    let above = r.simd_gt(upper);
    B::select(below, SimdF::one(), B::select(above, SimdF::zero(), mid))
}

/// Vectorized cutoff derivative `f_C'(r)`.
#[inline(always)]
pub fn fc_d_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    r: SimdF<T, W>,
) -> SimdF<T, W> {
    let lower = p.bigr - p.bigd;
    let upper = p.bigr + p.bigd;
    let arg = (r - p.bigr) / p.bigd * T::from_f64(std::f64::consts::FRAC_PI_2);
    let mid = -(cos_v(arg) / p.bigd) * T::from_f64(std::f64::consts::FRAC_PI_4);
    let inside = r.simd_ge(lower) & r.simd_le(upper);
    B::masked(mid, inside)
}

/// Vectorized repulsive term of one ordered pair: `(energy, dE/dr)` of
/// `½ f_C A e^{−λ₁ r}`.
#[inline(always)]
pub fn repulsive_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    r: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>) {
    let exp1 = exp_v(-(p.lam1 * r));
    let f_c = fc_v::<B, T, W>(p, r);
    let f_c_d = fc_d_v::<B, T, W>(p, r);
    let energy = f_c * p.biga * exp1 * T::HALF;
    let de_dr = p.biga * exp1 * (f_c_d - f_c * p.lam1) * T::HALF;
    (energy, de_dr)
}

/// Vectorized attractive term `f_A(r)` and its derivative.
#[inline(always)]
pub fn fa_and_deriv_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    r: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>) {
    let inside = r.simd_le(p.cut);
    let exp2 = exp_v(-(p.lam2 * r));
    let f_c = fc_v::<B, T, W>(p, r);
    let f_c_d = fc_d_v::<B, T, W>(p, r);
    let fa = B::masked(-(p.bigb) * exp2 * f_c, inside);
    let fa_d = B::masked(p.bigb * exp2 * (p.lam2 * f_c - f_c_d), inside);
    (fa, fa_d)
}

/// Vectorized bond order `b_ij(ζ)` and derivative `db/dζ`, with the same
/// asymptotic regions as the scalar code implemented through lane selects.
#[inline(always)]
pub fn bij_and_deriv_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    zeta: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>) {
    let tmp = p.beta * zeta;
    let n = p.powern;
    let one = SimdF::<T, W>::one();
    let half = SimdF::<T, W>::splat(T::HALF);
    let two_n = n * T::TWO;

    // Clamp the argument of the central-region pow so extreme lanes (which
    // will be overridden by the asymptotic selects) cannot generate inf/NaN.
    let tmp_clamped = tmp.max(p.ca4).min(p.ca1);
    let tmp_n_clamped = powf_v(tmp_clamped, n);

    let central_b = powf_v(one + tmp_n_clamped, -(half / n));
    let central_b_d = -(powf_v(one + tmp_n_clamped, -(one + half / n)) * tmp_n_clamped
        / tmp_clamped)
        * p.beta
        * half;

    // Large-ζ asymptotics: for tmp > ca1 / ca2 the unclamped tmp is what the
    // asymptotic formula needs; powers of large tmp with negative exponents
    // are safe.
    let tmp_safe = tmp.max(SimdF::splat(T::EPSILON));
    let pow_m15 = powf_v(tmp_safe, SimdF::splat(T::from_f64(-1.5)));
    let pow_mn = powf_v(tmp_safe, -n);
    let b_hi1 = powf_v(tmp_safe, SimdF::splat(T::from_f64(-0.5)));
    let b_hi1_d = -(pow_m15 * half) * p.beta;
    let b_hi2 = (one - pow_mn / two_n) * powf_v(tmp_safe, SimdF::splat(T::from_f64(-0.5)));
    let b_hi2_d = -(pow_m15 * half) * (one - (one + half / n) * pow_mn) * p.beta;

    // Small-ζ asymptotics (cap at ca3 so unselected large-ζ lanes cannot
    // overflow; selected lanes are below ca3 and therefore exact).
    let tmp_small = tmp.min(p.ca3);
    let pow_n_small = powf_v(tmp_small, n);
    let b_lo2 = one - pow_n_small / two_n;
    let b_lo2_d = -(powf_v(tmp_small, n - T::ONE) * half) * p.beta;

    let m_hi1 = tmp.simd_gt(p.ca1);
    let m_hi2 = tmp.simd_gt(p.ca2);
    let m_lo1 = tmp.simd_lt(p.ca4);
    let m_lo2 = tmp.simd_lt(p.ca3);

    let mut b = central_b;
    let mut b_d = central_b_d;
    b = B::select(m_lo2, b_lo2, b);
    b_d = B::select(m_lo2, b_lo2_d, b_d);
    b = B::select(m_lo1, one, b);
    b_d = B::select(m_lo1, SimdF::zero(), b_d);
    b = B::select(m_hi2, b_hi2, b);
    b_d = B::select(m_hi2, b_hi2_d, b_d);
    b = B::select(m_hi1, b_hi1, b);
    b_d = B::select(m_hi1, b_hi1_d, b_d);
    (b, b_d)
}

/// Vectorized angular term `g(cosθ)` and derivative.
#[inline(always)]
pub fn gijk_and_deriv_v<T: Real, const W: usize>(
    p: &ParamV<T, W>,
    cos_theta: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>) {
    let hcth = p.h - cos_theta;
    let denom = p.d2 + hcth * hcth;
    let g = p.gamma * (SimdF::one() + p.c2_over_d2 - p.c2 / denom);
    let g_d = -(p.c2 * hcth * T::TWO) / (denom * denom) * p.gamma;
    (g, g_d)
}

/// Vectorized ζ exponential and its derivative with respect to `r_ij`.
#[inline(always)]
pub fn ex_delr_v<T: Real, const W: usize>(
    p: &ParamV<T, W>,
    rij: SimdF<T, W>,
    rik: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>) {
    let dr = rij - rik;
    let clamp = T::from_f64(EXP_CLAMP);
    if p.cubic {
        let arg = p.lam3 * dr;
        let t = (arg * arg * arg).clamp(-clamp, clamp);
        let e = exp_v(t);
        let e_d = p.lam3 * p.lam3 * p.lam3 * dr * dr * e * T::from_f64(3.0);
        (e, e_d)
    } else {
        let t = (p.lam3 * dr).clamp(-clamp, clamp);
        let e = exp_v(t);
        (e, p.lam3 * e)
    }
}

/// Vectorized attractive/bond-order pair evaluation: `(energy, dE/dr, ∂E/∂ζ)`
/// for `E = ½ b_ij(ζ) f_A(r)`.
#[inline(always)]
pub fn force_zeta_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    r: SimdF<T, W>,
    zeta: SimdF<T, W>,
) -> (SimdF<T, W>, SimdF<T, W>, SimdF<T, W>) {
    let (fa, fa_d) = fa_and_deriv_v::<B, T, W>(p, r);
    let (b, b_d) = bij_and_deriv_v::<B, T, W>(p, zeta);
    let energy = b * fa * T::HALF;
    let de_dr = b * fa_d * T::HALF;
    let de_dzeta = fa * b_d * T::HALF;
    (energy, de_dr, de_dzeta)
}

/// Vectorized ζ term and its gradients with respect to atoms j and k.
///
/// All displacement inputs are per-lane; returns `(ζ, ∇_j ζ, ∇_k ζ)`.
#[inline(always)]
#[allow(clippy::type_complexity)]
pub fn zeta_term_and_gradients_v<B: SimdBackend, T: Real, const W: usize>(
    p: &ParamV<T, W>,
    del_ij: [SimdF<T, W>; 3],
    rij: SimdF<T, W>,
    del_ik: [SimdF<T, W>; 3],
    rik: SimdF<T, W>,
) -> (SimdF<T, W>, [SimdF<T, W>; 3], [SimdF<T, W>; 3]) {
    let inv_rij = rij.recip();
    let inv_rik = rik.recip();
    let hat_ij = [
        del_ij[0] * inv_rij,
        del_ij[1] * inv_rij,
        del_ij[2] * inv_rij,
    ];
    let hat_ik = [
        del_ik[0] * inv_rik,
        del_ik[1] * inv_rik,
        del_ik[2] * inv_rik,
    ];
    let cos_theta = hat_ij[0] * hat_ik[0] + hat_ij[1] * hat_ik[1] + hat_ij[2] * hat_ik[2];

    let f_c = fc_v::<B, T, W>(p, rik);
    let f_c_d = fc_d_v::<B, T, W>(p, rik);
    let (g, g_d) = gijk_and_deriv_v(p, cos_theta);
    let (e, e_d) = ex_delr_v(p, rij, rik);

    let zeta = f_c * g * e;

    let a_cos = f_c * g_d * e;
    let a_rij = f_c * g * e_d;
    let a_rik_cut = f_c_d * g * e;

    let mut grad_j = [SimdF::zero(); 3];
    let mut grad_k = [SimdF::zero(); 3];
    for d in 0..3 {
        let dcos_j = (hat_ik[d] - cos_theta * hat_ij[d]) * inv_rij;
        let dcos_k = (hat_ij[d] - cos_theta * hat_ik[d]) * inv_rik;
        grad_j[d] = a_cos * dcos_j + a_rij * hat_ij[d];
        grad_k[d] = a_rik_cut * hat_ik[d] + a_cos * dcos_k - a_rij * hat_ik[d];
    }
    (zeta, grad_j, grad_k)
}

/// Minimum-image displacement applied per lane (each component wrapped by at
/// most one box length — sufficient because displacements between neighbors
/// are always far below 1.5 box lengths).
#[inline(always)]
pub fn min_image_v<B: SimdBackend, T: Real, const W: usize>(
    mut del: [SimdF<T, W>; 3],
    lengths: [T; 3],
    periodic: [bool; 3],
) -> [SimdF<T, W>; 3] {
    for d in 0..3 {
        if periodic[d] {
            let l = SimdF::splat(lengths[d]);
            let half = SimdF::splat(lengths[d] * T::HALF);
            let too_high = del[d].simd_gt(half);
            let too_low = del[d].simd_lt(-half);
            del[d] = B::select(too_high, del[d] - l, del[d]);
            del[d] = B::select(too_low, del[d] + l, del[d]);
        }
    }
    del
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{self, ParamT};
    use vektor::PortableBackend as PB;

    const W: usize = 8;

    fn packed() -> PackedParams<f64> {
        PackedParams::new(&TersoffParams::silicon())
    }

    fn packed_b() -> PackedParams<f64> {
        PackedParams::new(&TersoffParams::silicon_b())
    }

    fn scalar_param(params: &TersoffParams) -> ParamT<f64> {
        ParamT::from_param(params.pair(0, 0))
    }

    fn sample_radii() -> SimdF<f64, W> {
        SimdF::from_array([2.0, 2.3, 2.5, 2.72, 2.85, 2.95, 3.05, 3.4])
    }

    #[test]
    fn fc_matches_scalar_per_lane() {
        let pp = packed();
        let pv = pp.splat::<W>(0);
        let ps = scalar_param(&TersoffParams::silicon());
        let r = sample_radii();
        let v = fc_v::<PB, _, W>(&pv, r);
        let vd = fc_d_v::<PB, _, W>(&pv, r);
        for lane in 0..W {
            assert!((v.lane(lane) - functions::fc(&ps, r.lane(lane))).abs() < 1e-14);
            assert!((vd.lane(lane) - functions::fc_d(&ps, r.lane(lane))).abs() < 1e-14);
        }
    }

    #[test]
    fn repulsive_and_attractive_match_scalar() {
        let pp = packed();
        let pv = pp.splat::<W>(0);
        let ps = scalar_param(&TersoffParams::silicon());
        let r = sample_radii();
        let (e, de) = repulsive_v::<PB, _, W>(&pv, r);
        let (fa, fad) = fa_and_deriv_v::<PB, _, W>(&pv, r);
        for lane in 0..W {
            let (es, des) = functions::repulsive(&ps, r.lane(lane));
            assert!((e.lane(lane) - es).abs() < 1e-12);
            assert!((de.lane(lane) - des).abs() < 1e-12);
            assert!((fa.lane(lane) - functions::fa(&ps, r.lane(lane))).abs() < 1e-12);
            assert!((fad.lane(lane) - functions::fa_d(&ps, r.lane(lane))).abs() < 1e-12);
        }
    }

    #[test]
    fn bond_order_matches_scalar_across_regimes() {
        for (pp, params) in [
            (packed(), TersoffParams::silicon()),
            (packed_b(), TersoffParams::silicon_b()),
        ] {
            let pv = pp.splat::<W>(0);
            let ps = scalar_param(&params);
            let zeta = SimdF::from_array([0.0, 1e-12, 1e-6, 0.01, 0.5, 2.0, 50.0, 1e8]);
            let (b, bd) = bij_and_deriv_v::<PB, _, W>(&pv, zeta);
            for lane in 0..W {
                let bs = functions::bij(&ps, zeta.lane(lane));
                let bds = functions::bij_d(&ps, zeta.lane(lane));
                assert!(
                    (b.lane(lane) - bs).abs() < 1e-10 * (1.0 + bs.abs()),
                    "lane {lane}: {} vs {}",
                    b.lane(lane),
                    bs
                );
                assert!(
                    (bd.lane(lane) - bds).abs() < 1e-10 * (1.0 + bds.abs()),
                    "lane {lane} derivative: {} vs {}",
                    bd.lane(lane),
                    bds
                );
            }
        }
    }

    #[test]
    fn angular_and_exponential_match_scalar() {
        let pp = packed_b();
        let pv = pp.splat::<W>(0);
        let ps = scalar_param(&TersoffParams::silicon_b());
        let cos = SimdF::from_array([-1.0, -0.6, -1.0 / 3.0, -0.1, 0.0, 0.3, 0.8, 1.0]);
        let (g, gd) = gijk_and_deriv_v(&pv, cos);
        for lane in 0..W {
            assert!((g.lane(lane) - functions::gijk(&ps, cos.lane(lane))).abs() < 1e-10);
            assert!((gd.lane(lane) - functions::gijk_d(&ps, cos.lane(lane))).abs() < 1e-10);
        }
        let rij = sample_radii();
        let rik = SimdF::splat(2.35);
        let (e, ed) = ex_delr_v(&pv, rij, rik);
        for lane in 0..W {
            let (es, eds) = functions::ex_delr(&ps, rij.lane(lane), rik.lane(lane));
            assert!((e.lane(lane) - es).abs() < 1e-10 * (1.0 + es));
            assert!((ed.lane(lane) - eds).abs() < 1e-10 * (1.0 + eds.abs()));
        }
    }

    #[test]
    fn force_zeta_matches_scalar() {
        let pp = packed();
        let pv = pp.splat::<W>(0);
        let ps = scalar_param(&TersoffParams::silicon());
        let r = sample_radii();
        let zeta = SimdF::from_array([0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]);
        let (e, der, dez) = force_zeta_v::<PB, _, W>(&pv, r, zeta);
        for lane in 0..W {
            let (es, ders, dezs) = functions::force_zeta(&ps, r.lane(lane), zeta.lane(lane));
            assert!((e.lane(lane) - es).abs() < 1e-12);
            assert!((der.lane(lane) - ders).abs() < 1e-12);
            assert!((dez.lane(lane) - dezs).abs() < 1e-12);
        }
    }

    #[test]
    fn zeta_gradients_match_scalar() {
        for (pp, params) in [
            (packed(), TersoffParams::silicon()),
            (packed_b(), TersoffParams::silicon_b()),
        ] {
            let pv = pp.splat::<4>(0);
            let ps = scalar_param(&params);
            // Four different (j, k) geometries in the four lanes.
            let del_ij = [
                SimdF::from_array([2.3, 2.2, 2.4, 1.9]),
                SimdF::from_array([0.3, -0.4, 0.0, 0.8]),
                SimdF::from_array([-0.2, 0.1, 0.5, -0.3]),
            ];
            let del_ik = [
                SimdF::from_array([0.4, -0.5, 0.3, 0.2]),
                SimdF::from_array([2.2, 2.1, 2.6, 2.0]),
                SimdF::from_array([0.5, 0.2, -0.4, 0.6]),
            ];
            let rij =
                (del_ij[0] * del_ij[0] + del_ij[1] * del_ij[1] + del_ij[2] * del_ij[2]).sqrt();
            let rik =
                (del_ik[0] * del_ik[0] + del_ik[1] * del_ik[1] + del_ik[2] * del_ik[2]).sqrt();
            let (z, gj, gk) = zeta_term_and_gradients_v::<PB, _, 4>(&pv, del_ij, rij, del_ik, rik);
            for lane in 0..4 {
                let dij = [
                    del_ij[0].lane(lane),
                    del_ij[1].lane(lane),
                    del_ij[2].lane(lane),
                ];
                let dik = [
                    del_ik[0].lane(lane),
                    del_ik[1].lane(lane),
                    del_ik[2].lane(lane),
                ];
                let (zs, gjs, gks) = functions::zeta_term_and_gradients(
                    &ps,
                    dij,
                    rij.lane(lane),
                    dik,
                    rik.lane(lane),
                );
                assert!((z.lane(lane) - zs).abs() < 1e-12);
                for d in 0..3 {
                    assert!((gj[d].lane(lane) - gjs[d]).abs() < 1e-12);
                    assert!((gk[d].lane(lane) - gks[d]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn min_image_wraps_per_lane() {
        let del = [
            SimdF::<f64, 4>::from_array([9.0, -9.0, 1.0, 0.0]),
            SimdF::splat(0.0),
            SimdF::from_array([4.9, 5.1, -5.1, 2.0]),
        ];
        let wrapped = min_image_v::<PB, _, 4>(del, [10.0, 10.0, 10.0], [true, true, true]);
        assert_eq!(wrapped[0].to_array(), [-1.0, 1.0, 1.0, 0.0]);
        assert_eq!(wrapped[2].to_array(), [4.9, -4.9, 4.9, 2.0]);
        // Non-periodic dimensions pass through.
        let unwrapped = min_image_v::<PB, _, 4>(del, [10.0, 10.0, 10.0], [false, false, false]);
        assert_eq!(unwrapped[0].to_array(), [9.0, -9.0, 1.0, 0.0]);
    }

    #[test]
    fn multi_element_gather_matches_individual_entries() {
        let sic = TersoffParams::silicon_carbide();
        let pp = PackedParams::<f64>::new(&sic);
        assert_eq!(pp.nelements, 2);
        // Triplet indices for lanes: (0,0,0), (0,1,1), (1,0,1), (1,1,0).
        let idx = [
            pp.index(0, 0, 0),
            pp.index(0, 1, 1),
            pp.index(1, 0, 1),
            pp.index(1, 1, 0),
        ];
        let pv = pp.gather::<4>(&idx, SimdM::all_true());
        assert!((pv.biga.lane(0) - sic.triplet(0, 0, 0).biga).abs() < 1e-12);
        assert!((pv.biga.lane(1) - sic.triplet(0, 1, 1).biga).abs() < 1e-12);
        assert!((pv.c2.lane(2) - sic.triplet(1, 0, 1).c2).abs() < 1e-9);
        assert!((pv.cutsq.lane(3) - sic.triplet(1, 1, 0).cutsq).abs() < 1e-12);
        assert!((pp.cutsq_scalar(0, 1, 1) - sic.triplet(0, 1, 1).cutsq).abs() < 1e-12);
    }
}
