//! The Tersoff potential functions and their analytic derivatives, generic
//! over the compute precision `T: Real`.
//!
//! Everything in this module is a pure function of distances, angles and the
//! parameter entry; the loop structure lives in the implementations
//! (`reference`, `scalar_opt`, `scheme_*`). The formulas follow Eq. 5–7 of
//! the paper (equivalently LAMMPS' `pair_tersoff.cpp`):
//!
//! * `f_C` — smooth cutoff,
//! * `f_R = A·exp(−λ₁ r)`, `f_A = −B·exp(−λ₂ r)` — repulsive / attractive
//!   pair terms,
//! * `g(θ) = γ(1 + c²/d² − c²/(d² + (h − cosθ)²))` — angular term,
//! * `ζ_ij = Σ_k f_C(r_ik)·g(θ_ijk)·exp(λ₃^m (r_ij − r_ik)^m)`,
//! * `b_ij = (1 + (βζ)ⁿ)^(−1/2n)` — bond order.
//!
//! Energy convention: each *ordered* pair (i, j) contributes
//! `½·f_C(r_ij)[f_R(r_ij) + b_ij·f_A(r_ij)]`, so summing over the full
//! neighbor list counts every physical bond exactly once.

use crate::params::TersoffParam;
use vektor::Real;

/// Clamp applied to the ζ exponential argument, following LAMMPS (exp(69) is
/// still finite in f32 after the clamp).
pub const EXP_CLAMP: f64 = 69.0776;

/// A parameter entry converted to the compute precision `T`, with only the
/// fields the kernels read. Pre-converting the whole table once (instead of
/// converting field-by-field inside the inner loops) is one of the paper's
/// scalar optimizations ("improve parameter lookup by reducing indirection").
#[derive(Copy, Clone, Debug)]
pub struct ParamT<T: Real> {
    /// See [`TersoffParam::powerm`] (stored as a flag: true = cubic).
    pub cubic: bool,
    /// γ.
    pub gamma: T,
    /// λ₃.
    pub lam3: T,
    /// c².
    pub c2: T,
    /// d².
    pub d2: T,
    /// c²/d².
    pub c2_over_d2: T,
    /// h = cos θ₀.
    pub h: T,
    /// n.
    pub powern: T,
    /// β.
    pub beta: T,
    /// λ₂.
    pub lam2: T,
    /// B.
    pub bigb: T,
    /// R.
    pub bigr: T,
    /// D.
    pub bigd: T,
    /// λ₁.
    pub lam1: T,
    /// A.
    pub biga: T,
    /// R + D.
    pub cut: T,
    /// (R + D)².
    pub cutsq: T,
    /// b_ij asymptotic thresholds (LAMMPS c1..c4).
    pub ca1: T,
    /// See `ca1`.
    pub ca2: T,
    /// See `ca1`.
    pub ca3: T,
    /// See `ca1`.
    pub ca4: T,
}

impl<T: Real> ParamT<T> {
    /// Convert a double-precision entry to the compute precision.
    pub fn from_param(p: &TersoffParam) -> Self {
        ParamT {
            cubic: p.cubic_exponent(),
            gamma: T::from_f64(p.gamma),
            lam3: T::from_f64(p.lam3),
            c2: T::from_f64(p.c2),
            d2: T::from_f64(p.d2),
            c2_over_d2: T::from_f64(p.c2_over_d2),
            h: T::from_f64(p.h),
            powern: T::from_f64(p.powern),
            beta: T::from_f64(p.beta),
            lam2: T::from_f64(p.lam2),
            bigb: T::from_f64(p.bigb),
            bigr: T::from_f64(p.bigr),
            bigd: T::from_f64(p.bigd),
            lam1: T::from_f64(p.lam1),
            biga: T::from_f64(p.biga),
            cut: T::from_f64(p.cut),
            cutsq: T::from_f64(p.cutsq),
            ca1: T::from_f64(p.ca1),
            ca2: T::from_f64(p.ca2),
            ca3: T::from_f64(p.ca3),
            ca4: T::from_f64(p.ca4),
        }
    }
}

/// Smooth cutoff `f_C(r)`.
#[inline(always)]
pub fn fc<T: Real>(p: &ParamT<T>, r: T) -> T {
    if r < p.bigr - p.bigd {
        T::ONE
    } else if r > p.bigr + p.bigd {
        T::ZERO
    } else {
        let arg = T::from_f64(std::f64::consts::FRAC_PI_2) * (r - p.bigr) / p.bigd;
        T::HALF * (T::ONE - arg.sin())
    }
}

/// Derivative `f_C'(r)`.
#[inline(always)]
pub fn fc_d<T: Real>(p: &ParamT<T>, r: T) -> T {
    if r < p.bigr - p.bigd || r > p.bigr + p.bigd {
        T::ZERO
    } else {
        let arg = T::from_f64(std::f64::consts::FRAC_PI_2) * (r - p.bigr) / p.bigd;
        -(T::from_f64(std::f64::consts::FRAC_PI_4) / p.bigd) * arg.cos()
    }
}

/// Repulsive pair term: returns `(energy, dE/dr)` of
/// `E = ½ f_C(r)·A·exp(−λ₁ r)` for one ordered pair.
#[inline(always)]
pub fn repulsive<T: Real>(p: &ParamT<T>, r: T) -> (T, T) {
    let exp1 = (-p.lam1 * r).exp();
    let f_c = fc(p, r);
    let f_c_d = fc_d(p, r);
    let energy = T::HALF * f_c * p.biga * exp1;
    let de_dr = T::HALF * p.biga * exp1 * (f_c_d - f_c * p.lam1);
    (energy, de_dr)
}

/// Attractive term `f_A(r) = −B·exp(−λ₂ r)·f_C(r)` (the cutoff is folded in,
/// as in LAMMPS).
#[inline(always)]
pub fn fa<T: Real>(p: &ParamT<T>, r: T) -> T {
    if r > p.cut {
        T::ZERO
    } else {
        -p.bigb * (-p.lam2 * r).exp() * fc(p, r)
    }
}

/// Derivative `d f_A / dr`.
#[inline(always)]
pub fn fa_d<T: Real>(p: &ParamT<T>, r: T) -> T {
    if r > p.cut {
        T::ZERO
    } else {
        p.bigb * (-p.lam2 * r).exp() * (p.lam2 * fc(p, r) - fc_d(p, r))
    }
}

/// Bond order `b_ij(ζ)`, with the same asymptotic short-cuts as LAMMPS to
/// avoid overflow / needless `pow` calls at extreme arguments.
#[inline(always)]
pub fn bij<T: Real>(p: &ParamT<T>, zeta: T) -> T {
    let tmp = p.beta * zeta;
    let n = p.powern;
    let half = T::HALF;
    if tmp > p.ca1 {
        T::ONE / tmp.sqrt()
    } else if tmp > p.ca2 {
        (T::ONE - tmp.powf(-n) / (T::TWO * n)) / tmp.sqrt()
    } else if tmp < p.ca4 {
        T::ONE
    } else if tmp < p.ca3 {
        T::ONE - tmp.powf(n) / (T::TWO * n)
    } else {
        (T::ONE + tmp.powf(n)).powf(-half / n)
    }
}

/// Derivative `d b_ij / dζ`.
#[inline(always)]
pub fn bij_d<T: Real>(p: &ParamT<T>, zeta: T) -> T {
    let tmp = p.beta * zeta;
    let n = p.powern;
    let half = T::HALF;
    if tmp > p.ca1 {
        p.beta * (-half * tmp.powf(-T::from_f64(1.5)))
    } else if tmp > p.ca2 {
        p.beta
            * (-half
                * tmp.powf(-T::from_f64(1.5))
                * (T::ONE - (T::ONE + T::ONE / (T::TWO * n)) * tmp.powf(-n)))
    } else if tmp < p.ca4 {
        T::ZERO
    } else if tmp < p.ca3 {
        -half * p.beta * tmp.powf(n - T::ONE)
    } else {
        let tmp_n = tmp.powf(n);
        -half * (T::ONE + tmp_n).powf(-T::ONE - half / n) * tmp_n / tmp * p.beta
    }
}

/// Angular term `g(cosθ)`.
#[inline(always)]
pub fn gijk<T: Real>(p: &ParamT<T>, cos_theta: T) -> T {
    let hcth = p.h - cos_theta;
    p.gamma * (T::ONE + p.c2_over_d2 - p.c2 / (p.d2 + hcth * hcth))
}

/// Derivative `d g / d cosθ`.
#[inline(always)]
pub fn gijk_d<T: Real>(p: &ParamT<T>, cos_theta: T) -> T {
    let hcth = p.h - cos_theta;
    let denom = p.d2 + hcth * hcth;
    -(T::TWO) * p.c2 * hcth / (denom * denom) * p.gamma
}

/// The ζ exponential `exp(λ₃^m (r_ij − r_ik)^m)` and its derivative with
/// respect to `r_ij` (the derivative with respect to `r_ik` is the negative).
#[inline(always)]
pub fn ex_delr<T: Real>(p: &ParamT<T>, rij: T, rik: T) -> (T, T) {
    let dr = rij - rik;
    if p.cubic {
        let arg = p.lam3 * dr;
        let mut t = arg * arg * arg;
        let clamp = T::from_f64(EXP_CLAMP);
        t = t.max(-clamp).min(clamp);
        let e = t.exp();
        let e_d = T::from_f64(3.0) * p.lam3 * p.lam3 * p.lam3 * dr * dr * e;
        (e, e_d)
    } else {
        let mut t = p.lam3 * dr;
        let clamp = T::from_f64(EXP_CLAMP);
        t = t.max(-clamp).min(clamp);
        let e = t.exp();
        (e, p.lam3 * e)
    }
}

/// One ζ term: `ζ(i,j,k) = f_C(r_ik)·g(θ_ijk)·exp(λ₃^m (r_ij − r_ik)^m)`.
///
/// `cos_theta` is the angle at atom i between the bonds to j and k.
#[inline(always)]
pub fn zeta_term<T: Real>(p: &ParamT<T>, rij: T, rik: T, cos_theta: T) -> T {
    let (e, _) = ex_delr(p, rij, rik);
    fc(p, rik) * gijk(p, cos_theta) * e
}

/// The attractive part of the pair interaction, evaluated once ζ is known:
/// returns `(energy, dE/dr_ij at fixed ζ, ∂E/∂ζ)` of
/// `E = ½·b_ij(ζ)·f_A(r_ij)` for one ordered pair.
#[inline(always)]
pub fn force_zeta<T: Real>(p: &ParamT<T>, r: T, zeta: T) -> (T, T, T) {
    let f_a = fa(p, r);
    let f_a_d = fa_d(p, r);
    let b = bij(p, zeta);
    let b_d = bij_d(p, zeta);
    let energy = T::HALF * b * f_a;
    let de_dr = T::HALF * b * f_a_d;
    let de_dzeta = T::HALF * f_a * b_d;
    (energy, de_dr, de_dzeta)
}

/// Gradients of one ζ term with respect to the positions of atoms j and k
/// (the gradient with respect to i is `−(∇_j + ∇_k)` by translational
/// invariance, which the callers exploit).
///
/// Inputs: `del_ij = x_j − x_i`, `del_ik = x_k − x_i` and their lengths.
/// Returns `(ζ term, ∇_j ζ, ∇_k ζ)`.
#[inline(always)]
pub fn zeta_term_and_gradients<T: Real>(
    p: &ParamT<T>,
    del_ij: [T; 3],
    rij: T,
    del_ik: [T; 3],
    rik: T,
) -> (T, [T; 3], [T; 3]) {
    let inv_rij = T::ONE / rij;
    let inv_rik = T::ONE / rik;
    let hat_ij = [
        del_ij[0] * inv_rij,
        del_ij[1] * inv_rij,
        del_ij[2] * inv_rij,
    ];
    let hat_ik = [
        del_ik[0] * inv_rik,
        del_ik[1] * inv_rik,
        del_ik[2] * inv_rik,
    ];
    let cos_theta = hat_ij[0] * hat_ik[0] + hat_ij[1] * hat_ik[1] + hat_ij[2] * hat_ik[2];

    let f_c = fc(p, rik);
    let f_c_d = fc_d(p, rik);
    let g = gijk(p, cos_theta);
    let g_d = gijk_d(p, cos_theta);
    let (e, e_d) = ex_delr(p, rij, rik);

    let zeta = f_c * g * e;

    // dcosθ/dx_j and dcosθ/dx_k.
    let mut dcos_j = [T::ZERO; 3];
    let mut dcos_k = [T::ZERO; 3];
    for d in 0..3 {
        dcos_j[d] = (hat_ik[d] - cos_theta * hat_ij[d]) * inv_rij;
        dcos_k[d] = (hat_ij[d] - cos_theta * hat_ik[d]) * inv_rik;
    }

    // ∇_j ζ = f_C·g'·e·∇_j cosθ + f_C·g·(de/dr_ij)·r̂_ij
    // ∇_k ζ = f_C'·g·e·r̂_ik + f_C·g'·e·∇_k cosθ − f_C·g·(de/dr_ij)·r̂_ik
    let mut grad_j = [T::ZERO; 3];
    let mut grad_k = [T::ZERO; 3];
    let a_cos = f_c * g_d * e;
    let a_rij = f_c * g * e_d;
    let a_rik_cut = f_c_d * g * e;
    for d in 0..3 {
        grad_j[d] = a_cos * dcos_j[d] + a_rij * hat_ij[d];
        grad_k[d] = a_rik_cut * hat_ik[d] + a_cos * dcos_k[d] - a_rij * hat_ik[d];
    }

    (zeta, grad_j, grad_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TersoffParams;

    fn si_param() -> ParamT<f64> {
        ParamT::from_param(TersoffParams::silicon().pair(0, 0))
    }

    fn si_b_param() -> ParamT<f64> {
        ParamT::from_param(TersoffParams::silicon_b().pair(0, 0))
    }

    /// Central-difference derivative helper.
    fn numdiff(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn cutoff_function_limits() {
        let p = si_param();
        assert_eq!(fc(&p, 1.0), 1.0);
        assert_eq!(fc(&p, 5.0), 0.0);
        // Continuity at the edges and midpoint value ½ at R.
        assert!((fc(&p, p.bigr) - 0.5).abs() < 1e-12);
        assert!((fc(&p, p.bigr - p.bigd) - 1.0).abs() < 1e-9);
        assert!((fc(&p, p.bigr + p.bigd)).abs() < 1e-9);
    }

    #[test]
    fn cutoff_derivative_matches_numerical() {
        let p = si_param();
        for r in [2.72, 2.85, 2.95, 2.99] {
            let analytic = fc_d(&p, r);
            let numeric = numdiff(|x| fc(&p, x), r);
            assert!(
                (analytic - numeric).abs() < 1e-6,
                "r={r}: {analytic} vs {numeric}"
            );
        }
        assert_eq!(fc_d(&p, 1.0), 0.0);
        assert_eq!(fc_d(&p, 4.0), 0.0);
    }

    #[test]
    fn repulsive_energy_and_derivative() {
        let p = si_param();
        for r in [2.0, 2.4, 2.8, 2.95] {
            let (e, de) = repulsive(&p, r);
            assert!(e > 0.0);
            let numeric = numdiff(|x| repulsive(&p, x).0, r);
            assert!(
                (de - numeric).abs() < 1e-5 * (1.0 + de.abs()),
                "r={r}: {de} vs {numeric}"
            );
        }
    }

    #[test]
    fn attractive_term_and_derivative() {
        let p = si_param();
        for r in [2.0, 2.4, 2.8, 2.95] {
            assert!(fa(&p, r) < 0.0);
            let numeric = numdiff(|x| fa(&p, x), r);
            assert!((fa_d(&p, r) - numeric).abs() < 1e-5);
        }
        assert_eq!(fa(&p, 3.5), 0.0);
        assert_eq!(fa_d(&p, 3.5), 0.0);
    }

    #[test]
    fn bond_order_limits_and_derivative() {
        for p in [si_param(), si_b_param()] {
            // ζ = 0 → perfect bond order 1.
            assert!((bij(&p, 0.0) - 1.0).abs() < 1e-9);
            // Monotonically decreasing in ζ.
            let mut prev = bij(&p, 1e-8);
            for &z in &[0.01, 0.1, 0.5, 1.0, 2.0, 4.0, 10.0] {
                let b = bij(&p, z);
                assert!(b <= prev + 1e-12, "bij not monotone at ζ={z}");
                assert!(b > 0.0 && b <= 1.0 + 1e-12);
                prev = b;
            }
            // Derivative matches numerics over the physically relevant range.
            for &z in &[0.05, 0.3, 1.0, 3.0, 8.0] {
                let analytic = bij_d(&p, z);
                let numeric = numdiff(|x| bij(&p, x), z);
                assert!(
                    (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "ζ={z}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn bond_order_asymptotics_are_continuousish() {
        // Crossing the LAMMPS c1..c4 thresholds must not introduce jumps
        // larger than the approximation error they bound (1e-8 relative).
        let p = si_b_param();
        for &threshold in &[p.ca1, p.ca2, p.ca3, p.ca4] {
            let z = threshold / p.beta;
            let below = bij(&p, z * 0.999_999);
            let above = bij(&p, z * 1.000_001);
            assert!(
                (below - above).abs() < 1e-6 * below.abs().max(1e-30),
                "jump at threshold {threshold}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn angular_term_and_derivative() {
        let p = si_param();
        // Tetrahedral angle: cosθ = −1/3 is near the minimum for silicon.
        for cos_theta in [-1.0, -0.59825, -1.0 / 3.0, 0.0, 0.7, 1.0] {
            let g = gijk(&p, cos_theta);
            assert!(g > 0.0);
            let numeric = numdiff(|x| gijk(&p, x), cos_theta);
            assert!((gijk_d(&p, cos_theta) - numeric).abs() < 1e-5 * (1.0 + numeric.abs()));
        }
        // g is minimal at cosθ = h.
        let at_h = gijk(&p, p.h);
        assert!(at_h <= gijk(&p, p.h + 0.3));
        assert!(at_h <= gijk(&p, p.h - 0.3));
        assert!((gijk_d(&p, p.h)).abs() < 1e-12);
    }

    #[test]
    fn ex_delr_cubic_and_linear() {
        // Si(C) has λ₃ = 0 → exponential is identically 1.
        let p = si_param();
        let (e, ed) = ex_delr(&p, 2.5, 2.3);
        assert_eq!(e, 1.0);
        assert_eq!(ed, 0.0);

        // Si(B) has λ₃ > 0 and m = 3.
        let pb = si_b_param();
        for (rij, rik) in [(2.4, 2.3), (2.3, 2.4), (2.8, 2.2)] {
            let (_, ed) = ex_delr(&pb, rij, rik);
            let numeric = numdiff(|x| ex_delr(&pb, x, rik).0, rij);
            assert!(
                (ed - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "rij={rij} rik={rik}: {ed} vs {numeric}"
            );
        }
    }

    #[test]
    fn ex_delr_clamps_instead_of_overflowing() {
        let pb = si_b_param();
        let (e, _) = ex_delr(&pb, 100.0, 0.1);
        assert!(e.is_finite());
        let (e, _) = ex_delr(&pb, 0.1, 100.0);
        assert!((0.0..1e-25).contains(&e));
    }

    #[test]
    fn force_zeta_consistency() {
        let p = si_param();
        let r = 2.4;
        let zeta = 2.0;
        let (energy, de_dr, de_dzeta) = force_zeta(&p, r, zeta);
        assert!(energy < 0.0, "attractive energy must be negative");
        let numeric_r = numdiff(|x| force_zeta(&p, x, zeta).0, r);
        let numeric_z = numdiff(|z| force_zeta(&p, r, z).0, zeta);
        assert!((de_dr - numeric_r).abs() < 1e-5 * (1.0 + numeric_r.abs()));
        assert!((de_dzeta - numeric_z).abs() < 1e-6 * (1.0 + numeric_z.abs()));
    }

    #[test]
    fn zeta_gradients_match_numerical_gradients() {
        for p in [si_param(), si_b_param()] {
            let xi = [0.0, 0.0, 0.0];
            let xj = [2.3, 0.3, -0.2];
            let xk = [0.4, 2.2, 0.5];

            let zeta_of = |xi: [f64; 3], xj: [f64; 3], xk: [f64; 3]| {
                let del_ij = [xj[0] - xi[0], xj[1] - xi[1], xj[2] - xi[2]];
                let del_ik = [xk[0] - xi[0], xk[1] - xi[1], xk[2] - xi[2]];
                let rij = (del_ij.iter().map(|x| x * x).sum::<f64>()).sqrt();
                let rik = (del_ik.iter().map(|x| x * x).sum::<f64>()).sqrt();
                let cos = (del_ij[0] * del_ik[0] + del_ij[1] * del_ik[1] + del_ij[2] * del_ik[2])
                    / (rij * rik);
                zeta_term(&p, rij, rik, cos)
            };

            let del_ij = [xj[0], xj[1], xj[2]];
            let del_ik = [xk[0], xk[1], xk[2]];
            let rij = (del_ij.iter().map(|x| x * x).sum::<f64>()).sqrt();
            let rik = (del_ik.iter().map(|x| x * x).sum::<f64>()).sqrt();
            let (zeta, grad_j, grad_k) = zeta_term_and_gradients(&p, del_ij, rij, del_ik, rik);
            assert!((zeta - zeta_of(xi, xj, xk)).abs() < 1e-12);

            let h = 1e-6;
            for d in 0..3 {
                let mut xp = xj;
                let mut xm = xj;
                xp[d] += h;
                xm[d] -= h;
                let num = (zeta_of(xi, xp, xk) - zeta_of(xi, xm, xk)) / (2.0 * h);
                assert!(
                    (grad_j[d] - num).abs() < 1e-5 * (1.0 + num.abs()),
                    "grad_j[{d}]: {} vs {num}",
                    grad_j[d]
                );

                let mut xp = xk;
                let mut xm = xk;
                xp[d] += h;
                xm[d] -= h;
                let num = (zeta_of(xi, xj, xp) - zeta_of(xi, xj, xm)) / (2.0 * h);
                assert!(
                    (grad_k[d] - num).abs() < 1e-5 * (1.0 + num.abs()),
                    "grad_k[{d}]: {} vs {num}",
                    grad_k[d]
                );

                // Gradient w.r.t. x_i is −(∇_j + ∇_k).
                let mut xp = xi;
                let mut xm = xi;
                xp[d] += h;
                xm[d] -= h;
                let num = (zeta_of(xp, xj, xk) - zeta_of(xm, xj, xk)) / (2.0 * h);
                let grad_i = -(grad_j[d] + grad_k[d]);
                assert!(
                    (grad_i - num).abs() < 1e-5 * (1.0 + num.abs()),
                    "grad_i[{d}]: {grad_i} vs {num}"
                );
            }
        }
    }

    #[test]
    fn single_precision_matches_double_to_expected_accuracy() {
        let pd = si_param();
        let ps: ParamT<f32> = ParamT::from_param(TersoffParams::silicon().pair(0, 0));
        for r in [2.0f64, 2.4, 2.8] {
            let (ed, _) = repulsive(&pd, r);
            let (es, _) = repulsive(&ps, r as f32);
            assert!(((es as f64 - ed) / ed).abs() < 1e-5);
            let bd = bij(&pd, 1.3);
            let bs = bij(&ps, 1.3f32);
            assert!(((bs as f64 - bd) / bd).abs() < 1e-5);
        }
    }
}
