//! Vectorization scheme (1c): I across the vector lanes, J sequential
//! (Fig. 1c of the paper) — the GPU / warp model.
//!
//! Each lane plays the role of one GPU thread that owns one atom i and walks
//! its own neighbor list sequentially. Lanes proceed through the J loop in
//! lock-step; when an atom runs out of neighbors its lane simply idles until
//! the whole block of `W` atoms is done — the warp-divergence effect the
//! paper describes ("95% of the threads in a warp might be inactive").
//! Vector-wide conditionals correspond to warp votes. Everything below the
//! pair level (the K passes, conflict-handled scatters) is shared with scheme
//! (1b) via [`crate::pair_kernel`].

use crate::accumulate::{flat_f64_forces, AccView};
use crate::filter::Prepared;
use crate::pair_kernel::{process_pair_vector, PairKernelCtx};
use crate::params::TersoffParams;
use crate::scheme_b::PairSchemeScratch;
use crate::stats::KernelStats;
use crate::vector_kernel::PackedParams;
use md_core::atom::AtomData;
use md_core::force_engine::RangePotential;
use md_core::neighbor::NeighborList;
use md_core::potential::{ComputeOutput, Potential};
use md_core::simbox::SimBox;
use std::any::Any;
use std::ops::Range;
use vektor::dispatch::{self, BackendImpl};
use vektor::{Real, SimdBackend, SimdM};

/// Scheme (1c): I across the vector lanes (warp model).
#[derive(Clone, Debug)]
pub struct TersoffSchemeC<T: Real, A: Real, const W: usize> {
    params: TersoffParams,
    packed: PackedParams<T>,
    /// Lane-occupancy statistics of the last `compute` call.
    pub stats: KernelStats,
    /// Whether to collect statistics.
    pub collect_stats: bool,
    /// Use the fast-forward K iteration (warp votes make this nearly free on
    /// real GPUs; kept here for parity with scheme 1b).
    pub fast_forward: bool,
    /// Per-step shared state, refreshed in place by
    /// [`RangePotential::prepare`].
    prep: Prepared<T>,
    /// Scratch for the single-threaded [`Potential::compute`] entry point.
    own_scratch: PairSchemeScratch<A>,
    /// The vektor implementation this kernel instance executes (selected at
    /// construction, kernel-granular — see `vektor::dispatch`).
    backend: BackendImpl,
    _acc: std::marker::PhantomData<A>,
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeC<T, A, W> {
    /// Create from a parameter set.
    pub fn new(params: TersoffParams) -> Self {
        let packed = PackedParams::new(&params);
        TersoffSchemeC {
            params,
            packed,
            stats: KernelStats::new(W),
            collect_stats: false,
            fast_forward: true,
            prep: Prepared::default(),
            own_scratch: PairSchemeScratch::default(),
            backend: dispatch::default_backend(),
            _acc: std::marker::PhantomData,
        }
    }

    /// Select the vektor implementation this kernel instance executes
    /// (clamped to host support; results are bitwise identical either way).
    pub fn with_backend(mut self, backend: BackendImpl) -> Self {
        self.backend = dispatch::clamp(backend);
        self
    }

    /// The vektor implementation this kernel instance executes.
    pub fn backend(&self) -> BackendImpl {
        self.backend
    }

    /// Enable statistics collection.
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// The parameter set in use.
    pub fn params(&self) -> &TersoffParams {
        &self.params
    }
}

impl<T: Real, A: Real, const W: usize> Potential for TersoffSchemeC<T, A, W> {
    fn name(&self) -> String {
        format!("tersoff/scheme-c/w{W}")
    }

    fn cutoff(&self) -> f64 {
        self.params.max_cutoff
    }

    fn executed_backend(&self) -> Option<&'static str> {
        Some(self.backend.name())
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.prepare(atoms, sim_box, neighbors);
        out.reset(atoms.n_total());
        let mut scratch = std::mem::take(&mut self.own_scratch);
        if scratch.stats.width != W {
            scratch.stats = KernelStats::new(W);
        }
        self.range_kernel(atoms, sim_box, 0..atoms.n_local, &mut scratch, out);
        self.absorb(&mut scratch);
        self.own_scratch = scratch;
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeC<T, A, W> {
    /// Fold per-thread diagnostics back into the potential.
    fn absorb(&mut self, scratch: &mut PairSchemeScratch<A>) {
        if self.collect_stats {
            self.stats.merge(&scratch.stats);
            scratch.stats.reset();
        }
    }

    /// The actual kernel over a contiguous range of central atoms (warp
    /// blocks of `W` atoms within the range). Allocation-free in steady
    /// state.
    fn range_kernel(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        range: Range<usize>,
        scratch: &mut PairSchemeScratch<A>,
        out: &mut ComputeOutput,
    ) {
        if self.collect_stats {
            scratch.stats.reset();
        }
        let lengths_f64 = sim_box.lengths();
        let ctx = PairKernelCtx {
            packed: &self.packed,
            positions: &self.prep.packed_x,
            types: &atoms.type_,
            filtered: &self.prep.filtered,
            lengths: [
                T::from_f64(lengths_f64[0]),
                T::from_f64(lengths_f64[1]),
                T::from_f64(lengths_f64[2]),
            ],
            periodic: sim_box.periodic,
            fast_forward: self.fast_forward,
        };

        let mut energy = A::ZERO;
        let mut virial = A::ZERO;
        let mut tensor = [A::ZERO; 6];
        if let Some(direct) = flat_f64_forces::<A>(&mut out.forces) {
            let mut acc = AccView {
                forces: direct,
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.warp_loop_dispatch(&ctx, range, &mut acc, &mut scratch.stats);
        } else {
            scratch.acc.reset(atoms.n_total());
            let mut acc = AccView {
                forces: scratch.acc.forces.as_mut_slice(),
                energy: &mut energy,
                virial: &mut virial,
                tensor: &mut tensor,
            };
            self.warp_loop_dispatch(&ctx, range, &mut acc, &mut scratch.stats);
            scratch.acc.fold_into(out);
        }
        out.energy += energy.to_f64();
        out.virial += virial.to_f64();
        for (dst, src) in out.virial_tensor.iter_mut().zip(tensor.iter()) {
            *dst += src.to_f64();
        }
    }

    /// The warp-block loop, writing into the borrowed accumulation target.
    /// Generic over the executing backend `B` and `#[inline(always)]` so
    /// the lock-step J loop — including every [`process_pair_vector`] it
    /// drives — compiles inside the per-ISA `#[target_feature]` entries
    /// below.
    #[inline(always)]
    fn warp_loop<B: SimdBackend>(
        &self,
        ctx: &PairKernelCtx<'_, T>,
        range: Range<usize>,
        acc: &mut AccView<'_, A>,
        stats: &mut KernelStats,
    ) {
        let filtered = &self.prep.filtered;
        // Blocks of W atoms; each lane owns one atom ("thread per atom").
        let end = range.end;
        let mut block = range.start;
        while block < end {
            let lane_count = (end - block).min(W);
            let block_mask = SimdM::<W>::prefix(lane_count);
            let mut i_idx = [block.min(end - 1); W];
            let mut counts = [0usize; W];
            for lane in 0..lane_count {
                i_idx[lane] = block + lane;
                counts[lane] = filtered.count(block + lane);
            }
            let max_count = counts.iter().copied().max().unwrap_or(0);

            // Lock-step J loop: lanes whose atom has fewer neighbors idle
            // (warp divergence).
            for jj in 0..max_count {
                let mut lane_mask = block_mask;
                let mut j_idx = [0usize; W];
                for lane in 0..W {
                    if lane < lane_count && jj < counts[lane] {
                        j_idx[lane] = filtered.neighbors_of(i_idx[lane])[jj] as usize;
                    } else {
                        lane_mask.set_lane(lane, false);
                        // Point idle lanes at their own atom; the pair-cutoff
                        // mask keeps them out of the computation.
                        j_idx[lane] = i_idx[lane];
                    }
                }
                if lane_mask.none() {
                    continue;
                }
                let stats = if self.collect_stats {
                    Some(&mut *stats)
                } else {
                    None
                };
                process_pair_vector::<B, T, A, W>(ctx, &i_idx, &j_idx, lane_mask, acc, stats);
            }
            block += W;
        }
    }
}

impl<T: Real, A: Real, const W: usize> RangePotential for TersoffSchemeC<T, A, W> {
    fn prepare(&mut self, atoms: &AtomData, sim_box: &SimBox, neighbors: &NeighborList) {
        if self.collect_stats {
            self.stats.reset();
        }
        self.prep
            .refresh(atoms, sim_box, neighbors, self.params.max_cutoff, false);
    }

    fn make_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(PairSchemeScratch::<A> {
            stats: KernelStats::new(W),
            ..Default::default()
        })
    }

    fn compute_range(
        &self,
        atoms: &AtomData,
        sim_box: &SimBox,
        _neighbors: &NeighborList,
        range: Range<usize>,
        scratch: &mut (dyn Any + Send),
        out: &mut ComputeOutput,
    ) {
        let scratch = scratch
            .downcast_mut::<PairSchemeScratch<A>>()
            .expect("scratch type mismatch");
        self.range_kernel(atoms, sim_box, range, scratch, out);
    }

    fn absorb_scratch(&mut self, scratch: &mut (dyn Any + Send)) {
        let scratch = scratch
            .downcast_mut::<PairSchemeScratch<A>>()
            .expect("scratch type mismatch");
        self.absorb(scratch);
    }
}

impl<T: Real, A: Real, const W: usize> TersoffSchemeC<T, A, W> {
    vektor::multiversion_entries! {
        /// The per-ISA trampoline of scheme (1c): `warp_loop` is
        /// `#[inline(always)]`, so each generated `#[target_feature]`
        /// entry compiles the whole lock-step loop — including every
        /// [`process_pair_vector`] it drives — with its ISA enabled.
        fn warp_loop_dispatch / warp_loop_avx2 / warp_loop_avx512 = warp_loop(
            &self,
            ctx: &PairKernelCtx<'_, T>,
            range: Range<usize>,
            acc: &mut AccView<'_, A>,
            stats: &mut KernelStats,
        );
    }
}

/// Warp-style double precision instantiation (32 lanes) — the analog of the
/// paper's Opt-KK-D GPU implementation.
pub type TersoffSchemeCWarpD = TersoffSchemeC<f64, f64, 32>;
/// Warp-style single precision instantiation (the hypothetical Opt-KK-S the
/// paper projects at ≈5 ns/s).
pub type TersoffSchemeCWarpS = TersoffSchemeC<f32, f32, 32>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::TersoffRef;
    use md_core::lattice::Lattice;
    use md_core::neighbor::NeighborSettings;

    fn setup(perturb: f64, seed: u64) -> (SimBox, AtomData, NeighborList) {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(perturb, seed);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        (b, atoms, list)
    }

    fn run<P: Potential>(p: &mut P, b: &SimBox, a: &AtomData, l: &NeighborList) -> ComputeOutput {
        let mut out = ComputeOutput::zeros(a.n_total());
        p.compute(a, b, l, &mut out);
        out
    }

    #[test]
    fn matches_reference_in_double_precision() {
        let (b, atoms, list) = setup(0.08, 51);
        let mut reference = TersoffRef::new(TersoffParams::silicon());
        let out_ref = run(&mut reference, &b, &atoms, &list);

        macro_rules! check_width {
            ($w:expr) => {{
                let mut pot = TersoffSchemeC::<f64, f64, $w>::new(TersoffParams::silicon());
                let out = run(&mut pot, &b, &atoms, &list);
                assert!(
                    (out.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs(),
                    "W={}: energy {} vs {}",
                    $w,
                    out.energy,
                    out_ref.energy
                );
                assert!(
                    out.max_force_difference(&out_ref) < 1e-8,
                    "W={}: force diff {}",
                    $w,
                    out.max_force_difference(&out_ref)
                );
            }};
        }
        check_width!(4);
        check_width!(8);
        check_width!(32);
    }

    #[test]
    fn warp_single_precision_tracks_double() {
        let (b, atoms, list) = setup(0.05, 23);
        let mut d = TersoffSchemeCWarpD::new(TersoffParams::silicon());
        let mut s = TersoffSchemeCWarpS::new(TersoffParams::silicon());
        let out_d = run(&mut d, &b, &atoms, &list);
        let out_s = run(&mut s, &b, &atoms, &list);
        assert!(((out_s.energy - out_d.energy) / out_d.energy).abs() < 2e-5);
    }

    #[test]
    fn stats_are_collected_for_the_warp_scheme() {
        // Perfect silicon has uniform 4-neighbor lists, so there is no warp
        // divergence at the pair level on a 64-atom / 32-lane split; the
        // interesting signal is that the K loop spends iterations spinning
        // past the j == k exclusion while computing iterations stay full.
        let (b, atoms, list) = setup(0.0, 0);
        let mut pot = TersoffSchemeCWarpD::new(TersoffParams::silicon()).with_stats();
        let _ = run(&mut pot, &b, &atoms, &list);
        assert!(pot.stats.pair_vectors > 0);
        assert!(pot.stats.pair_occupancy() > 0.9);
        assert!(pot.stats.k_total_iterations() > 0);
        assert!(pot.stats.k_spin_iterations > 0);
        assert!(pot.stats.k_occupancy() > 0.5);
    }

    #[test]
    fn multispecies_matches_reference() {
        let (b, atoms) = Lattice::silicon_carbide([2, 2, 2]).build_perturbed(0.04, 12);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));
        let mut reference = TersoffRef::new(TersoffParams::silicon_carbide());
        let mut pot = TersoffSchemeC::<f64, f64, 8>::new(TersoffParams::silicon_carbide());
        let out_ref = run(&mut reference, &b, &atoms, &list);
        let out = run(&mut pot, &b, &atoms, &list);
        assert!((out.energy - out_ref.energy).abs() < 1e-9 * out_ref.energy.abs());
        assert!(out.max_force_difference(&out_ref) < 1e-8);
    }

    #[test]
    fn name_and_cutoff() {
        let pot = TersoffSchemeCWarpD::new(TersoffParams::silicon());
        assert_eq!(pot.name(), "tersoff/scheme-c/w32");
        assert!((pot.cutoff() - 3.0).abs() < 1e-12);
    }
}
