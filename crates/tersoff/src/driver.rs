//! Execution-mode driver: the paper's `Ref` / `Opt-D` / `Opt-S` / `Opt-M`
//! codes (Sec. V-E) as ready-made [`Potential`] trait objects.
//!
//! The driver maps an [`ExecutionMode`] × [`Scheme`] choice onto a concrete
//! monomorphization: the precision mode fixes the compute/accumulate types
//! and the scheme + ISA class fix the vector width, following the paper's own
//! choices (scheme 1a for short vectors, 1b for 8/16-lane vectors, 1c with a
//! 32-lane warp for the GPU).

use crate::params::TersoffParams;
use crate::reference::TersoffRef;
use crate::scalar_opt::TersoffScalarOpt;
use crate::scheme_a::TersoffSchemeA;
use crate::scheme_b::TersoffSchemeB;
use crate::scheme_c::TersoffSchemeC;
use md_core::force_engine::{ForceEngine, RangePotential};
use md_core::potential::Potential;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
pub use vektor::dispatch::BackendImpl;

/// Error from parsing an [`ExecutionMode`] or [`Scheme`] name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseEnumError {
    /// What kind of value was being parsed ("execution mode", "scheme").
    pub what: &'static str,
    /// The rejected input.
    pub input: String,
    /// The accepted canonical names.
    pub expected: &'static str,
}

impl fmt::Display for ParseEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} {:?} (expected one of: {})",
            self.what, self.input, self.expected
        )
    }
}

impl std::error::Error for ParseEnumError {}

/// The four codes evaluated in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// The LAMMPS-equivalent reference (double precision, Algorithm 2).
    Ref,
    /// Optimized, double precision.
    OptD,
    /// Optimized, single precision.
    OptS,
    /// Optimized, mixed precision (single compute, double accumulate).
    OptM,
}

impl ExecutionMode {
    /// All modes in reporting order.
    pub const ALL: [ExecutionMode; 4] = [
        ExecutionMode::Ref,
        ExecutionMode::OptD,
        ExecutionMode::OptS,
        ExecutionMode::OptM,
    ];

    /// Display label matching the paper ("Ref", "Opt-D", ...). Equal to the
    /// `Display` rendering; `label().parse()` round-trips.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionMode::Ref => "Ref",
            ExecutionMode::OptD => "Opt-D",
            ExecutionMode::OptS => "Opt-S",
            ExecutionMode::OptM => "Opt-M",
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ExecutionMode {
    type Err = ParseEnumError;

    /// Case-insensitive; accepts the paper labels ("Ref", "Opt-M") and the
    /// punctuation-free forms ("optm", "opt_m").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .trim()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "ref" | "reference" => Ok(ExecutionMode::Ref),
            "optd" => Ok(ExecutionMode::OptD),
            "opts" => Ok(ExecutionMode::OptS),
            "optm" => Ok(ExecutionMode::OptM),
            _ => Err(ParseEnumError {
                what: "execution mode",
                input: s.to_string(),
                expected: "Ref, Opt-D, Opt-S, Opt-M",
            }),
        }
    }
}

/// The mapping of the iteration space onto lanes (Fig. 1), plus the
/// scalar-optimized variant that does not vectorize at all.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Optimized scalar code (Algorithm 3, no vectorization) — what `Opt-D`
    /// falls back to on ISAs without suitable vectors (NEON double, SSE
    /// double).
    Scalar,
    /// Scheme (1a): J across lanes.
    JLanes,
    /// Scheme (1b): fused I·J across lanes.
    FusedLanes,
    /// Scheme (1c): I across lanes (warp model).
    ILanes,
}

impl Scheme {
    /// All schemes in reporting order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Scalar,
        Scheme::JLanes,
        Scheme::FusedLanes,
        Scheme::ILanes,
    ];

    /// Display label ("scalar", "1a", "1b", "1c"). Equal to the `Display`
    /// rendering; `label().parse()` round-trips.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Scalar => "scalar",
            Scheme::JLanes => "1a",
            Scheme::FusedLanes => "1b",
            Scheme::ILanes => "1c",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Scheme {
    type Err = ParseEnumError;

    /// Case-insensitive; accepts the figure labels ("1a"/"1b"/"1c"),
    /// "scalar", and the descriptive names ("jlanes", "fused", "ilanes",
    /// "warp").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Scheme::Scalar),
            "1a" | "a" | "j" | "jlanes" | "j-lanes" => Ok(Scheme::JLanes),
            "1b" | "b" | "ij" | "fused" | "fusedlanes" | "fused-lanes" => Ok(Scheme::FusedLanes),
            "1c" | "c" | "i" | "ilanes" | "i-lanes" | "warp" => Ok(Scheme::ILanes),
            _ => Err(ParseEnumError {
                what: "scheme",
                input: s.to_string(),
                expected: "scalar, 1a, 1b, 1c",
            }),
        }
    }
}

/// Options describing which Tersoff implementation to build.
#[derive(Copy, Clone, Debug)]
pub struct TersoffOptions {
    /// Execution mode (precision + optimized or reference).
    pub mode: ExecutionMode,
    /// Vectorization scheme (ignored for `Ref`).
    pub scheme: Scheme,
    /// Vector width; 0 selects the paper's default width for the
    /// scheme/precision combination. Supported explicit widths: 1, 2, 4, 8,
    /// 16, 32.
    pub width: usize,
    /// Worker threads for the force engine: 1 runs single-threaded (no
    /// engine overhead), 0 uses one thread per available CPU, any other
    /// value is taken literally — the OpenMP-threads axis of the paper's
    /// single-node runs (Fig. 5).
    pub threads: usize,
    /// The `vektor` implementation executing the kernel: `None` resolves
    /// automatically (the `VEKTOR_BACKEND` environment variable, else
    /// runtime detection of the widest supported ISA — see
    /// `vektor::dispatch::default_backend`); `Some(_)` forces an
    /// implementation, clamped to what the host supports.
    ///
    /// Dispatch is **kernel-granular**: [`make_range_potential`] resolves
    /// the request once and stores it in the kernel instance, which then
    /// executes its whole `compute_range` body as a per-ISA
    /// monomorphization (`vektor::dispatch::run_kernel`). Two coexisting
    /// potentials can run different backends; there is no process-global
    /// state. Since all implementations are bitwise-equivalent, the choice
    /// changes speed only, never results.
    pub backend: Option<BackendImpl>,
}

impl Default for TersoffOptions {
    fn default() -> Self {
        TersoffOptions {
            mode: ExecutionMode::OptM,
            scheme: Scheme::FusedLanes,
            width: 0,
            threads: 1,
            backend: None,
        }
    }
}

impl TersoffOptions {
    /// The paper's default width for this scheme and precision: 4 f64 / 8 f32
    /// lanes for scheme (1a) (AVX/AVX2-class), 8 f64 / 16 f32 for scheme (1b)
    /// (AVX-512-class), 32 for the warp scheme.
    pub fn effective_width(&self) -> usize {
        if self.width != 0 {
            return self.width;
        }
        let double = matches!(self.mode, ExecutionMode::Ref | ExecutionMode::OptD);
        match self.scheme {
            Scheme::Scalar => 1,
            Scheme::JLanes => {
                if double {
                    4
                } else {
                    8
                }
            }
            Scheme::FusedLanes => {
                if double {
                    8
                } else {
                    16
                }
            }
            Scheme::ILanes => 32,
        }
    }

    /// A short human-readable description ("Opt-M/1b/w16", with a "/tN"
    /// suffix when the threaded engine is enabled).
    pub fn label(&self) -> String {
        let base = match self.mode {
            ExecutionMode::Ref => "Ref".to_string(),
            _ => format!(
                "{}/{}/w{}",
                self.mode.label(),
                self.scheme.label(),
                self.effective_width()
            ),
        };
        if self.threads == 1 {
            base
        } else {
            format!("{base}/t{}", self.threads)
        }
    }

    /// Convenience: the same options with a different thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Convenience: the same options with a forced vektor backend (stored
    /// per kernel instance — see [`TersoffOptions::backend`]).
    pub fn with_backend(mut self, backend: BackendImpl) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The vektor implementation these options resolve to on this host
    /// (the instance [`make_potential`] will build): the explicit request
    /// if supported, else the `VEKTOR_BACKEND`/auto-detected default.
    pub fn resolved_backend(&self) -> BackendImpl {
        vektor::dispatch::resolve(self.backend)
    }
}

macro_rules! build_vector_potential {
    ($ctor:ident, $t:ty, $a:ty, $width:expr, $params:expr, $backend:expr) => {
        match $width {
            1 => Box::new($ctor::<$t, $a, 1>::new($params).with_backend($backend))
                as Box<dyn RangePotential>,
            2 => Box::new($ctor::<$t, $a, 2>::new($params).with_backend($backend)),
            4 => Box::new($ctor::<$t, $a, 4>::new($params).with_backend($backend)),
            8 => Box::new($ctor::<$t, $a, 8>::new($params).with_backend($backend)),
            16 => Box::new($ctor::<$t, $a, 16>::new($params).with_backend($backend)),
            32 => Box::new($ctor::<$t, $a, 32>::new($params).with_backend($backend)),
            other => panic!("unsupported vector width {other} (use 1, 2, 4, 8, 16 or 32)"),
        }
    };
}

/// Build the Tersoff implementation described by `options`.
///
/// The kernel is always wrapped in a [`ForceEngine`] over a
/// [`md_core::runtime::ParallelRuntime`] of `options.threads` participants:
/// the engine's fixed-chunk partition and ordered merges make the forces
/// **bitwise identical for every thread count**, so a single-threaded build
/// runs exactly the same summation order as an 8-thread one. The
/// `SimulationBuilder` can later re-bind the engine onto its own runtime so
/// the whole timestep shares one worker team.
pub fn make_potential(params: TersoffParams, options: TersoffOptions) -> Box<dyn Potential> {
    let inner = make_range_potential(params, options);
    Box::new(ForceEngine::new(inner, options.threads))
}

/// Build the kernel described by `options` as a range-computable potential
/// (the form the [`ForceEngine`] drives; also usable directly).
pub fn make_range_potential(
    params: TersoffParams,
    options: TersoffOptions,
) -> Box<dyn RangePotential> {
    // Resolve the vektor implementation once and hand it to the kernel
    // instance: dispatch is kernel-granular, so the choice lives in the
    // potential being built (no process-global state, and coexisting
    // potentials may run different backends). The reference implementation
    // is deliberately left out of the multiversioning — it is the
    // unoptimized yardstick the paper compares against.
    let backend = options.resolved_backend();
    let width = options.effective_width();
    match (options.mode, options.scheme) {
        (ExecutionMode::Ref, _) => Box::new(TersoffRef::new(params)),
        (ExecutionMode::OptD, Scheme::Scalar) => {
            Box::new(TersoffScalarOpt::<f64, f64>::new(params).with_backend(backend))
        }
        (ExecutionMode::OptS, Scheme::Scalar) => {
            Box::new(TersoffScalarOpt::<f32, f32>::new(params).with_backend(backend))
        }
        (ExecutionMode::OptM, Scheme::Scalar) => {
            Box::new(TersoffScalarOpt::<f32, f64>::new(params).with_backend(backend))
        }
        (ExecutionMode::OptD, Scheme::JLanes) => {
            build_vector_potential!(TersoffSchemeA, f64, f64, width, params, backend)
        }
        (ExecutionMode::OptS, Scheme::JLanes) => {
            build_vector_potential!(TersoffSchemeA, f32, f32, width, params, backend)
        }
        (ExecutionMode::OptM, Scheme::JLanes) => {
            build_vector_potential!(TersoffSchemeA, f32, f64, width, params, backend)
        }
        (ExecutionMode::OptD, Scheme::FusedLanes) => {
            build_vector_potential!(TersoffSchemeB, f64, f64, width, params, backend)
        }
        (ExecutionMode::OptS, Scheme::FusedLanes) => {
            build_vector_potential!(TersoffSchemeB, f32, f32, width, params, backend)
        }
        (ExecutionMode::OptM, Scheme::FusedLanes) => {
            build_vector_potential!(TersoffSchemeB, f32, f64, width, params, backend)
        }
        (ExecutionMode::OptD, Scheme::ILanes) => {
            build_vector_potential!(TersoffSchemeC, f64, f64, width, params, backend)
        }
        (ExecutionMode::OptS, Scheme::ILanes) => {
            build_vector_potential!(TersoffSchemeC, f32, f32, width, params, backend)
        }
        (ExecutionMode::OptM, Scheme::ILanes) => {
            build_vector_potential!(TersoffSchemeC, f32, f64, width, params, backend)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::lattice::Lattice;
    use md_core::neighbor::{NeighborList, NeighborSettings};
    use md_core::potential::ComputeOutput;

    #[test]
    fn default_widths_follow_the_paper() {
        let mk = |mode, scheme| TersoffOptions {
            mode,
            scheme,
            width: 0,
            threads: 1,
            backend: None,
        };
        assert_eq!(mk(ExecutionMode::OptD, Scheme::JLanes).effective_width(), 4);
        assert_eq!(mk(ExecutionMode::OptS, Scheme::JLanes).effective_width(), 8);
        assert_eq!(
            mk(ExecutionMode::OptD, Scheme::FusedLanes).effective_width(),
            8
        );
        assert_eq!(
            mk(ExecutionMode::OptM, Scheme::FusedLanes).effective_width(),
            16
        );
        assert_eq!(
            mk(ExecutionMode::OptM, Scheme::ILanes).effective_width(),
            32
        );
        assert_eq!(mk(ExecutionMode::OptD, Scheme::Scalar).effective_width(), 1);
        let explicit = TersoffOptions {
            mode: ExecutionMode::OptD,
            scheme: Scheme::FusedLanes,
            width: 2,
            threads: 1,
            backend: None,
        };
        assert_eq!(explicit.effective_width(), 2);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            TersoffOptions {
                mode: ExecutionMode::Ref,
                scheme: Scheme::FusedLanes,
                width: 0,
                threads: 1,
                backend: None,
            }
            .label(),
            "Ref"
        );
        assert_eq!(TersoffOptions::default().label(), "Opt-M/1b/w16");
        assert_eq!(ExecutionMode::OptS.label(), "Opt-S");
        assert_eq!(Scheme::ILanes.label(), "1c");
    }

    #[test]
    fn every_mode_scheme_combination_builds_and_agrees() {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.05, 77);
        let list = NeighborList::build_binned(&atoms, &b, NeighborSettings::new(3.0, 1.0));

        let mut reference = make_potential(
            TersoffParams::silicon(),
            TersoffOptions {
                mode: ExecutionMode::Ref,
                scheme: Scheme::Scalar,
                width: 0,
                threads: 1,
                backend: None,
            },
        );
        let mut out_ref = ComputeOutput::zeros(atoms.n_total());
        reference.compute(&atoms, &b, &list, &mut out_ref);

        for mode in [
            ExecutionMode::OptD,
            ExecutionMode::OptS,
            ExecutionMode::OptM,
        ] {
            for scheme in [
                Scheme::Scalar,
                Scheme::JLanes,
                Scheme::FusedLanes,
                Scheme::ILanes,
            ] {
                let mut pot = make_potential(
                    TersoffParams::silicon(),
                    TersoffOptions {
                        mode,
                        scheme,
                        width: 0,
                        threads: 1,
                        backend: None,
                    },
                );
                let mut out = ComputeOutput::zeros(atoms.n_total());
                pot.compute(&atoms, &b, &list, &mut out);
                let tol = if mode == ExecutionMode::OptD {
                    1e-9
                } else {
                    2e-5
                };
                let rel = ((out.energy - out_ref.energy) / out_ref.energy).abs();
                assert!(
                    rel < tol,
                    "{:?}/{:?}: relative energy error {rel}",
                    mode,
                    scheme
                );
            }
        }
    }

    #[test]
    fn mode_and_scheme_labels_round_trip_through_from_str() {
        for mode in ExecutionMode::ALL {
            assert_eq!(mode.label().parse::<ExecutionMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.label());
        }
        for scheme in Scheme::ALL {
            assert_eq!(scheme.label().parse::<Scheme>().unwrap(), scheme);
            assert_eq!(scheme.to_string(), scheme.label());
        }
        // Forgiving spellings.
        assert_eq!(
            "opt_m".parse::<ExecutionMode>().unwrap(),
            ExecutionMode::OptM
        );
        assert_eq!(
            "OPTD".parse::<ExecutionMode>().unwrap(),
            ExecutionMode::OptD
        );
        assert_eq!("warp".parse::<Scheme>().unwrap(), Scheme::ILanes);
        // Rejections carry a useful message.
        let err = "opt-x".parse::<ExecutionMode>().unwrap_err();
        assert!(err.to_string().contains("execution mode"));
        assert!("1d".parse::<Scheme>().is_err());
    }

    #[test]
    #[should_panic(expected = "unsupported vector width")]
    fn unsupported_width_panics() {
        make_potential(
            TersoffParams::silicon(),
            TersoffOptions {
                mode: ExecutionMode::OptD,
                scheme: Scheme::FusedLanes,
                width: 7,
                threads: 1,
                backend: None,
            },
        );
    }
}
