//! LAMMPS `*.tersoff` file I/O: bitwise round-trips for every shipped
//! parameter table, tolerant parsing (comments, wrapped entries), and the
//! error paths for malformed files.

use tersoff::params::TersoffParams;

/// Every shipped table with the `pair_coeff`-style element mapping it uses.
fn shipped_tables() -> Vec<(&'static str, TersoffParams, Vec<&'static str>)> {
    vec![
        ("silicon", TersoffParams::silicon(), vec!["Si"]),
        ("silicon_b", TersoffParams::silicon_b(), vec!["Si"]),
        ("carbon", TersoffParams::carbon(), vec!["C"]),
        ("germanium", TersoffParams::germanium(), vec!["Ge"]),
        (
            "silicon_carbide",
            TersoffParams::silicon_carbide(),
            vec!["Si", "C"],
        ),
        (
            "silicon_germanium",
            TersoffParams::silicon_germanium(),
            vec!["Si", "Ge"],
        ),
    ]
}

#[test]
fn to_lammps_parse_lammps_round_trips_bitwise() {
    // Rust's f64 Display prints the shortest string that reparses to the
    // same bits, so write → parse must reproduce every entry exactly, for
    // all 14 published constants AND the precomputed derived quantities
    // (f64 PartialEq is bitwise for the finite values in these tables).
    for (name, params, elements) in shipped_tables() {
        let text = params.to_lammps();
        let reparsed = TersoffParams::parse_lammps(&text, &elements)
            .unwrap_or_else(|e| panic!("{name}: round-trip parse failed: {e}"));
        assert_eq!(reparsed.elements, params.elements, "{name}: element order");
        assert_eq!(
            reparsed.entries(),
            params.entries(),
            "{name}: entries differ after round-trip"
        );
        assert_eq!(reparsed.max_cutoff, params.max_cutoff, "{name}: max_cutoff");
        // A second generation from the reparsed set must be byte-identical:
        // the fixed point is reached after one trip.
        assert_eq!(reparsed.to_lammps(), text, "{name}: second trip differs");
    }
}

#[test]
fn round_trip_covers_every_triplet_of_the_mixed_tables() {
    // The 1989-mixed two-element tables have 8 distinct (i, j, k) entries;
    // make sure the file format preserves the ordered-triplet layout and
    // not just the (i, i, i) diagonal.
    let params = TersoffParams::silicon_germanium();
    let reparsed = TersoffParams::parse_lammps(&params.to_lammps(), &["Si", "Ge"]).unwrap();
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                assert_eq!(
                    reparsed.triplet(i, j, k),
                    params.triplet(i, j, k),
                    "triplet ({i}, {j}, {k})"
                );
            }
        }
    }
    // χ(Si,Ge) = 1.00061 only scales the MIXED attractive prefactor; the
    // pure Si and pure Ge pair entries must survive the trip untouched.
    assert_eq!(reparsed.pair(0, 0), TersoffParams::silicon().pair(0, 0));
    assert_eq!(reparsed.pair(1, 1), TersoffParams::germanium().pair(0, 0));
}

#[test]
fn parser_ignores_comments_and_blank_lines() {
    let text = "\
# full-line comment
   # indented comment

Si Si Si 3.0 1.0 0.0 100390.0 16.217 -0.59825 0.78734 1.1e-6 1.73222 471.18 2.85 0.15 2.4799 1830.8  # trailing comment
";
    let parsed = TersoffParams::parse_lammps(text, &["Si"]).unwrap();
    assert_eq!(parsed.pair(0, 0), TersoffParams::silicon().pair(0, 0));
}

#[test]
fn parser_accepts_entries_wrapped_over_multiple_lines() {
    // LAMMPS files conventionally wrap each entry after the first few
    // columns; the parser tokenizes across newlines, so any wrapping of the
    // same 17 tokens must parse identically.
    let wrapped = "\
Si Si Si 3.0 1.0 0.0
         100390.0 16.217 -0.59825   # c d h
         0.78734 1.1e-6 1.73222 471.18
         2.85 0.15 2.4799 1830.8
";
    let parsed = TersoffParams::parse_lammps(wrapped, &["Si"]).unwrap();
    assert_eq!(parsed.pair(0, 0), TersoffParams::silicon().pair(0, 0));
}

#[test]
fn parser_rejects_wrong_token_count() {
    // 16 tokens: one number short of a full entry.
    let text = "Si Si Si 3.0 1.0 0.0 100390.0 16.217 -0.59825 0.78734 1.1e-6 1.73222 471.18 2.85 0.15 2.4799";
    let err = TersoffParams::parse_lammps(text, &["Si"]).unwrap_err();
    assert!(
        err.contains("not a multiple of 17"),
        "unexpected error: {err}"
    );
}

#[test]
fn parser_rejects_bad_numeric_token() {
    let text = "Si Si Si 3.0 1.0 0.0 100390.0 16.217 -0.59825 0.78734 1.1e-6 1.73222 471.18 2.85 0.15 2.4799 oops";
    let err = TersoffParams::parse_lammps(text, &["Si"]).unwrap_err();
    assert!(
        err.contains("bad number in entry Si Si Si"),
        "unexpected error: {err}"
    );
}

#[test]
fn parser_rejects_missing_triplets() {
    // A two-element mapping needs all 8 ordered triplets; supplying only
    // the Si entry must name a missing mixed triplet, not panic.
    let text = TersoffParams::silicon().to_lammps();
    let err = TersoffParams::parse_lammps(&text, &["Si", "Ge"]).unwrap_err();
    assert!(
        err.contains("missing entry for triplet"),
        "unexpected error: {err}"
    );
    assert!(
        err.contains("Ge"),
        "error should name the absent element: {err}"
    );
}

#[test]
fn parser_rejects_mapping_to_an_unknown_element() {
    // Element names request a species the file never defines.
    let text = TersoffParams::carbon().to_lammps();
    let err = TersoffParams::parse_lammps(&text, &["Si"]).unwrap_err();
    assert!(
        err.contains("missing entry for triplet Si Si Si"),
        "unexpected error: {err}"
    );
}
