//! Offline shim for `rand`: the subset of the API this workspace uses.
//!
//! Provides the [`Rng`] and [`SeedableRng`] traits with `gen_range` over
//! `f64`/`usize`/`i64` ranges. The concrete generator lives in the sibling
//! `rand_chacha` shim. Determinism-in-seed is the only property the workspace
//! relies on; no cryptographic claims are made, and the bit stream does not
//! match the real `rand` crate.

use std::ops::Range;

/// Minimal mirror of `rand::Rng`.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of resolution.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range)
    }

    /// Bernoulli sample with probability `p`, mirroring `rand::Rng::gen_bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen_f64() < p
    }
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleRange: Sized + PartialOrd {
    /// Draw one sample in `[range.start, range.end)`.
    fn sample_from<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample_from<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample_from<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for i64 {
    fn sample_from<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as i64
    }
}

/// Minimal mirror of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}
