//! Offline shim for `criterion`: the API surface the workspace's benches use,
//! backed by a simple warm-up + fixed-window timing loop.
//!
//! Statistics are cruder than real criterion (mean / min / max over samples,
//! no bootstrapping), but results are emitted both human-readably and as
//! machine-readable JSON so the perf trajectory can be tracked across PRs:
//! every benchmark group writes `BENCH_criterion_<group>.json` into the
//! directory named by `BENCH_JSON_DIR` (default: current directory, i.e. the
//! workspace root under `cargo bench`).

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark id within the group.
    pub name: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample (seconds per iteration).
    pub min_s: f64,
    /// Slowest sample (seconds per iteration).
    pub max_s: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            results: Vec::new(),
            finished: false,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<Sample>,
    finished: bool,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement window split across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose iterations per sample so the whole measurement fits the
        // requested window.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / est_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<44} {:>12.3} us/iter  (min {:.3}, max {:.3}, {} samples x {} iters)",
            name,
            mean * 1e6,
            min * 1e6,
            max * 1e6,
            self.sample_size,
            iters
        );
        self.results.push(Sample {
            name: name.to_string(),
            mean_s: mean,
            min_s: min,
            max_s: max,
            samples: self.sample_size,
            iters_per_sample: iters,
        });
        self
    }

    /// Write the group's JSON report. Called automatically on drop if missed.
    pub fn finish(&mut self) {
        if self.finished || self.results.is_empty() {
            self.finished = true;
            return;
        }
        self.finished = true;
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
        let path = format!("{}/BENCH_criterion_{}.json", dir, self.name);
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        json.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_s\": {:.9e}, \"min_s\": {:.9e}, \"max_s\": {:.9e}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.name,
                r.mean_s,
                r.min_s,
                r.max_s,
                r.samples,
                r.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

impl Drop for BenchmarkGroup {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Per-benchmark timing handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
