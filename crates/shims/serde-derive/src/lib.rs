//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal stand-in. Types annotated `#[derive(Serialize, Deserialize)]`
//! keep the annotation (so switching back to real serde is a one-line change
//! in the workspace manifest) but gain no serialization code.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
