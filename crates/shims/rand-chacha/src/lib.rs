//! Offline shim for `rand_chacha`: a genuine ChaCha8 block generator.
//!
//! Implements the ChaCha quarter-round/block function (RFC 8439 structure, 8
//! rounds) so the statistical quality matches the real crate, but seeding and
//! word extraction order are this shim's own — streams are deterministic in
//! the seed yet not bit-compatible with the upstream `rand_chacha` crate.

use rand::{Rng, SeedableRng};

/// ChaCha with 8 rounds behind the [`rand::Rng`] trait.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed to the block function.
    state: [u32; 16],
    /// Buffered output of the last block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step used to expand the 64-bit seed into the 256-bit key.
#[inline(always)]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12/13) and nonce (14/15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen_f64()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }
}
