//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal stand-in. `#[derive(Serialize, Deserialize)]` annotations
//! compile (and mark intent) but generate no serialization code. Replace the
//! `serde = { path = ... }` entry in the root manifest with the real crate to
//! restore full functionality — no source changes needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
