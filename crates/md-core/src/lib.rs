//! # md-core — the molecular-dynamics substrate
//!
//! The Tersoff vectorization paper evaluates its kernels inside LAMMPS. This
//! crate is the equivalent substrate built from scratch: everything the force
//! kernels need around them to run a realistic simulation —
//!
//! * the shared [`runtime::ParallelRuntime`] — the **one thread owner** in
//!   the system, which every phase of the timestep dispatches through, with
//!   fixed (thread-count-independent) chunk boundaries and ordered merges
//!   that make results **bitwise identical across thread counts**
//!   ([`runtime`]),
//! * structure-of-arrays atom storage with packing helpers
//!   ([`atom`]),
//! * an orthogonal periodic simulation box with minimum-image convention
//!   ([`simbox`]),
//! * crystal-lattice builders for the silicon benchmark and the SiC
//!   multi-species examples ([`lattice`]),
//! * Maxwell–Boltzmann velocity initialization ([`velocity`]),
//! * binned (cell-list) neighbor lists with a skin distance, rebuild
//!   heuristics and in-place runtime-parallel rebuilds, plus an O(N²)
//!   reference builder for testing ([`neighbor`]),
//! * velocity-Verlet time integration — serial and runtime-parallel forms
//!   ([`integrate`]) — and thermodynamic output ([`thermo`]),
//! * the [`potential::Potential`] trait that force fields implement (now
//!   carrying the runtime-binding hooks), the chunked thread-parallel
//!   [`force_engine::ForceEngine`] that *borrows* the runtime, and a
//!   Lennard-Jones pair potential as the contrasting baseline ([`pair_lj`]),
//! * a simulation driver built through [`simulation::SimulationBuilder`]
//!   (whose `.threads(n)` creates the runtime the whole step runs on),
//!   reporting through [`observer::Observer`] hooks, XYZ and LAMMPS-format
//!   trajectory writers ([`dump`]) and LAMMPS-style per-stage timers with a
//!   separate integration phase ([`simulation`], [`observer`], [`timer`]),
//! * a rank-parallel spatial domain decomposition running a complete
//!   distributed timestep — per-rank integration and neighbor builds, atom
//!   migration, ghost exchange as serializable halo messages — **bitwise
//!   identical** to the single-domain driver for any grid ([`domain`]),
//! * a submission-first job engine — pooled runtimes draining a bounded,
//!   backpressured queue of typed jobs, with an event stream and an
//!   artifact cache keyed by spec hash ([`jobs`]),
//! * a fault-tolerance layer: worker panics surface as typed
//!   [`runtime::RuntimeError`]s from a self-healing pool, numerical
//!   divergence is caught by the [`health::HealthGuard`] observer and
//!   reported as [`simulation::RunError::Diverged`], runs checkpoint and
//!   resume **bitwise identically** ([`checkpoint`]), and test-only fault
//!   injection proves the isolation contract ([`fault`]).
//!
//! See `README.md` in this directory for the runtime-owns-threads
//! architecture in detail. Units follow LAMMPS' `metal` convention: lengths
//! in Å, time in ps, energies in eV, masses in g/mol, temperature in K
//! ([`units`]).

// Kernel-style code indexes the three spatial components and per-lane slots
// with explicit `for d in 0..3` loops; the iterator rewrites clippy suggests
// obscure the stencil structure, so the lint is opted out crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod atom;
pub mod checkpoint;
pub mod domain;
pub mod dump;
pub mod elastic;
pub mod fault;
pub mod force_engine;
pub mod health;
pub mod integrate;
pub mod jobs;
pub mod lattice;
pub mod neighbor;
pub mod observer;
pub mod pair_lj;
pub mod potential;
pub mod properties;
pub mod runtime;
pub mod simbox;
pub mod simulation;
pub mod thermo;
pub mod timer;
pub mod units;
pub mod velocity;

pub use atom::AtomData;
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointWriter};
pub use domain::{DomainBuildError, DomainGrid, DomainSimulation, GridError, HaloMsg};
pub use dump::{LammpsDump, XyzDump};
pub use elastic::{ElasticReport, ElasticSettings};
pub use fault::{FaultKind, FaultPlan};
pub use force_engine::{ForceEngine, RangePotential};
pub use health::{HealthGuard, HealthSettings};
pub use jobs::{
    ArtifactCache, ArtifactKey, CacheStats, EngineConfig, EngineStats, EventBus, JobContext,
    JobEngine, JobEvent, JobHandle, JobId, JobOutcome, JobSpec, JobStatus, SubmitError,
};
pub use lattice::{Lattice, LatticeKind, SpeciesMix};
pub use neighbor::{NeighborList, NeighborSettings};
pub use observer::{
    EnergyDrift, Observer, RunFault, RunPlan, RunReport, RunStatus, StepContext, ThermoLog,
    ThermoPrinter, TimingPrinter,
};
pub use potential::{ComputeOutput, Potential};
pub use properties::{RadialDistribution, StressTensor};
pub use runtime::{ParallelRuntime, RuntimeError, WorkerPool};
pub use simbox::SimBox;
pub use simulation::{BuildError, RunError, Simulation, SimulationBuilder};
pub use timer::{Stage, Timers};

/// Commonly used items.
pub mod prelude {
    pub use crate::atom::AtomData;
    pub use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointWriter};
    pub use crate::domain::{DomainBuildError, DomainGrid, DomainSimulation, GridError};
    pub use crate::dump::{LammpsDump, XyzDump};
    pub use crate::elastic::{ElasticReport, ElasticSettings};
    pub use crate::fault::{FaultKind, FaultPlan};
    pub use crate::force_engine::{ForceEngine, RangePotential};
    pub use crate::health::{HealthGuard, HealthSettings};
    pub use crate::integrate::VelocityVerlet;
    pub use crate::jobs::{
        ArtifactCache, ArtifactKey, EngineConfig, EngineStats, JobContext, JobEngine, JobEvent,
        JobHandle, JobOutcome, JobSpec, JobStatus,
    };
    pub use crate::lattice::{Lattice, LatticeKind, SpeciesMix};
    pub use crate::neighbor::{NeighborList, NeighborSettings};
    pub use crate::observer::{
        EnergyDrift, Observer, RunFault, RunPlan, RunReport, RunStatus, StepContext, ThermoLog,
        ThermoPrinter, TimingPrinter,
    };
    pub use crate::pair_lj::LennardJones;
    pub use crate::potential::{ComputeOutput, Potential};
    pub use crate::properties::{RadialDistribution, StressTensor};
    pub use crate::runtime::{ParallelRuntime, RuntimeError};
    pub use crate::simbox::SimBox;
    pub use crate::simulation::{BuildError, RunError, Simulation, SimulationBuilder};
    pub use crate::thermo::ThermoState;
    pub use crate::timer::{Stage, Timers};
    pub use crate::units;
    pub use crate::velocity::init_velocities;
}
