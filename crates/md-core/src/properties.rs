//! Materials-property observers: the stress tensor and the radial
//! distribution function.
//!
//! The per-interaction virial tensor that PR 10 threads through every kernel
//! surfaces here as physics: [`StressTensor`] combines it with the kinetic
//! tensor into the full 3×3 pressure tensor (time-averaged at a sampling
//! cadence), and [`RadialDistribution`] bins the neighbor-list pair
//! distances into g(r). Both follow the observer contract of this crate:
//! buffers are sized at construction / `on_run_start`, so a steady-state
//! sampled step performs zero heap allocations.
//!
//! Voigt component order everywhere: `[xx, yy, zz, xy, xz, yz]`, matching
//! [`crate::potential::VOIGT`].

use crate::observer::{Observer, StepContext};
use crate::units;
use std::any::Any;

/// Accumulates the full pressure tensor `P_ab = (Σᵢ mᵢ v_a v_b · mvv2e
/// + W_ab) / V · nktv2p` (bar) every `every` steps and reports the time
/// average. The trace/3 of a sample reproduces the scalar thermo pressure up
/// to floating-point association — the scalar pressure itself still flows
/// from the fused trace channel (`StepContext::virial`), which stays bitwise
///   identical to the pre-tensor code.
#[derive(Clone, Debug)]
pub struct StressTensor {
    every: u64,
    samples: u64,
    sum: [f64; 6],
    last: [f64; 6],
}

impl StressTensor {
    /// Sample every `every` steps (min 1).
    pub fn new(every: u64) -> Self {
        StressTensor {
            every: every.max(1),
            samples: 0,
            sum: [0.0; 6],
            last: [0.0; 6],
        }
    }

    /// Number of samples accumulated so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The sampling cadence.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Most recent instantaneous pressure tensor in bar (Voigt order).
    pub fn last(&self) -> [f64; 6] {
        self.last
    }

    /// Time-averaged pressure tensor in bar (Voigt order); zeros before the
    /// first sample.
    pub fn time_averaged(&self) -> [f64; 6] {
        if self.samples == 0 {
            return [0.0; 6];
        }
        let inv = 1.0 / self.samples as f64;
        let mut avg = [0.0; 6];
        for c in 0..6 {
            avg[c] = self.sum[c] * inv;
        }
        avg
    }

    /// Scalar pressure (bar): trace/3 of the time-averaged tensor.
    pub fn pressure(&self) -> f64 {
        let avg = self.time_averaged();
        (avg[0] + avg[1] + avg[2]) / 3.0
    }
}

impl Observer for StressTensor {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        if !ctx.step.is_multiple_of(self.every) {
            return;
        }
        // Kinetic part of the tensor: Σᵢ mᵢ v_a v_b (eV after mvv2e). Its
        // trace is 2·KE, so trace/3 matches the N·kB·T term of the scalar
        // pressure.
        let mut kinetic = [0.0; 6];
        for i in 0..ctx.atoms.n_local {
            let m = ctx.masses[ctx.atoms.type_[i]];
            let v = ctx.atoms.v[i];
            for (c, (a, b)) in crate::potential::VOIGT.iter().enumerate() {
                kinetic[c] += m * v[*a] * v[*b];
            }
        }
        let scale = units::NKTV2P / ctx.sim_box.volume();
        for c in 0..6 {
            self.last[c] = scale * (units::MVV2E * kinetic[c] + ctx.virial_tensor[c]);
            self.sum[c] += self.last[c];
        }
        self.samples += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Bins neighbor-list pair distances into a radial distribution function
/// g(r), sampled every `every` steps. The histogram is pre-sized at
/// construction, so sampling never allocates; the normalized g(r) is
/// computed on read-out.
///
/// The neighbor list only holds pairs out to `cutoff + skin`, so `r_max`
/// must not exceed that — the scenario layer clamps it.
#[derive(Clone, Debug)]
pub struct RadialDistribution {
    every: u64,
    r_max: f64,
    dr: f64,
    counts: Vec<u64>,
    samples: u64,
    n_atoms: usize,
    volume: f64,
}

impl RadialDistribution {
    /// Histogram of `bins` bins over `[0, r_max]`, sampled every `every`
    /// steps (min 1 bin, min cadence 1).
    pub fn new(every: u64, bins: usize, r_max: f64) -> Self {
        let bins = bins.max(1);
        assert!(r_max > 0.0, "g(r) needs a positive r_max");
        RadialDistribution {
            every: every.max(1),
            r_max,
            dr: r_max / bins as f64,
            counts: vec![0; bins],
            samples: 0,
            n_atoms: 0,
            volume: 0.0,
        }
    }

    /// Number of samples accumulated so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The histogram extent in Å.
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// Number of histogram bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw ordered-pair counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center radius of bin `b` in Å.
    pub fn bin_center(&self, b: usize) -> f64 {
        (b as f64 + 0.5) * self.dr
    }

    /// The normalized g(r): pair counts divided by the ideal-gas expectation
    /// `N · ρ · 4π r² dr` per sample. Full neighbor lists count every pair
    /// twice (once from each side), which is exactly the ordered-pair count
    /// this normalization expects. Empty before the first sample.
    pub fn g(&self) -> Vec<f64> {
        if self.samples == 0 || self.n_atoms == 0 || self.volume <= 0.0 {
            return vec![0.0; self.counts.len()];
        }
        let rho = self.n_atoms as f64 / self.volume;
        let norm = self.samples as f64 * self.n_atoms as f64 * rho;
        self.counts
            .iter()
            .enumerate()
            .map(|(b, &count)| {
                let r = self.bin_center(b);
                let shell = 4.0 * std::f64::consts::PI * r * r * self.dr;
                count as f64 / (norm * shell)
            })
            .collect()
    }
}

impl Observer for RadialDistribution {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        if !ctx.step.is_multiple_of(self.every) {
            return;
        }
        self.n_atoms = ctx.atoms.n_local;
        self.volume = ctx.sim_box.volume();
        let r_max_sq = self.r_max * self.r_max;
        let inv_dr = 1.0 / self.dr;
        for i in 0..ctx.atoms.n_local {
            let xi = ctx.atoms.x[i];
            for &j in ctx.neighbors.neighbors_of(i) {
                let del = ctx.sim_box.min_image(xi, ctx.atoms.x[j]);
                let r2 = del[0] * del[0] + del[1] * del[1] + del[2] * del[2];
                if r2 >= r_max_sq || r2 == 0.0 {
                    continue;
                }
                let bin = (r2.sqrt() * inv_dr) as usize;
                if bin < self.counts.len() {
                    self.counts[bin] += 1;
                }
            }
        }
        self.samples += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::neighbor::{NeighborList, NeighborSettings};
    use crate::simbox::SimBox;

    fn step_ctx<'a>(
        step: u64,
        atoms: &'a AtomData,
        sim_box: &'a SimBox,
        masses: &'a [f64],
        neighbors: &'a NeighborList,
        virial_tensor: &'a [f64; 6],
    ) -> StepContext<'a> {
        StepContext {
            step,
            atoms,
            sim_box,
            masses,
            neighbors,
            n_rebuilds: 0,
            potential_energy: 0.0,
            virial: 0.0,
            virial_tensor,
        }
    }

    #[test]
    fn stress_trace_matches_ideal_gas_pressure() {
        // One atom with velocity only along x in a unit-density box: the
        // tensor must be purely xx and its trace/3 the scalar pressure.
        let sim_box = SimBox::cubic(10.0);
        let mut atoms = AtomData::new();
        atoms.push_local([5.0, 5.0, 5.0], [3.0, 0.0, 0.0], 0, 1);
        let masses = [10.0];
        let neighbors =
            NeighborList::build_naive(&atoms, &sim_box, NeighborSettings::new(2.0, 0.5));
        let tensor = [0.0; 6];
        let mut stress = StressTensor::new(1);
        stress.on_step(&step_ctx(0, &atoms, &sim_box, &masses, &neighbors, &tensor));
        let avg = stress.time_averaged();
        let expect_xx = units::NKTV2P * units::MVV2E * 10.0 * 9.0 / 1000.0;
        assert!((avg[0] - expect_xx).abs() < 1e-9);
        assert_eq!(avg[1], 0.0);
        assert_eq!(avg[5], 0.0);
        assert!((stress.pressure() - expect_xx / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stress_respects_cadence_and_averages() {
        let sim_box = SimBox::cubic(10.0);
        let mut atoms = AtomData::new();
        atoms.push_local([5.0, 5.0, 5.0], [0.0; 3], 0, 1);
        let masses = [1.0];
        let neighbors =
            NeighborList::build_naive(&atoms, &sim_box, NeighborSettings::new(2.0, 0.5));
        let mut stress = StressTensor::new(5);
        for step in 0..=10u64 {
            // Virial-only samples: 2 eV at sampled steps.
            let tensor = [2.0, 0.0, 0.0, 0.0, 0.0, 0.0];
            stress.on_step(&step_ctx(
                step, &atoms, &sim_box, &masses, &neighbors, &tensor,
            ));
        }
        assert_eq!(stress.samples(), 3); // steps 0, 5, 10
        let avg = stress.time_averaged();
        assert!((avg[0] - units::NKTV2P * 2.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn rdf_of_an_isolated_pair_lands_in_one_bin() {
        let sim_box = SimBox::cubic(20.0);
        let mut atoms = AtomData::new();
        atoms.push_local([5.0, 5.0, 5.0], [0.0; 3], 0, 1);
        atoms.push_local([6.5, 5.0, 5.0], [0.0; 3], 0, 2);
        let masses = [1.0];
        let neighbors =
            NeighborList::build_naive(&atoms, &sim_box, NeighborSettings::new(3.0, 0.5));
        let mut rdf = RadialDistribution::new(1, 20, 2.0);
        let tensor = [0.0; 6];
        rdf.on_step(&step_ctx(0, &atoms, &sim_box, &masses, &neighbors, &tensor));
        assert_eq!(rdf.samples(), 1);
        // r = 1.5 with dr = 0.1 → bin 15, counted once from each side.
        assert_eq!(rdf.counts()[15], 2);
        assert_eq!(rdf.counts().iter().sum::<u64>(), 2);
        let g = rdf.g();
        let r = rdf.bin_center(15);
        let shell = 4.0 * std::f64::consts::PI * r * r * 0.1;
        let rho = 2.0 / sim_box.volume();
        let expected = 2.0 / (2.0 * rho * shell);
        assert!((g[15] - expected).abs() < 1e-9 * expected);
        assert!(g[0] == 0.0 && g[19] == 0.0);
    }

    #[test]
    fn rdf_never_allocates_after_construction() {
        // The histogram is fully sized up front; sampling touches only the
        // preallocated counts.
        let rdf = RadialDistribution::new(10, 64, 3.0);
        assert_eq!(rdf.bins(), 64);
        assert_eq!(rdf.counts().len(), 64);
        assert!(rdf.g().iter().all(|&g| g == 0.0));
    }
}
