//! Velocity-Verlet time integration (NVE ensemble).
//!
//! LAMMPS integrates with the two half-kick velocity-Verlet scheme; the
//! timings in the paper include this "time integration" stage, so it is part
//! of the substrate rather than being mocked.
//!
//! Both half steps also come in `*_on` variants that run on the shared
//! [`ParallelRuntime`] — each participant updates a disjoint slice of the
//! atom arrays. Every atom's update is independent of the partition, so the
//! parallel paths are bitwise identical to the serial ones (and to each
//! other at any thread count).

use crate::atom::AtomData;
use crate::runtime::{DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use crate::units;

/// Velocity-Verlet integrator.
#[derive(Copy, Clone, Debug)]
pub struct VelocityVerlet {
    /// Timestep in ps.
    pub dt: f64,
}

impl Default for VelocityVerlet {
    fn default() -> Self {
        VelocityVerlet {
            dt: units::DEFAULT_TIMESTEP,
        }
    }
}

impl VelocityVerlet {
    /// New integrator with the given timestep (ps).
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0, "timestep must be positive");
        VelocityVerlet { dt }
    }

    /// First half of the step: half velocity kick from the current forces,
    /// then a full position drift. Positions are wrapped back into the box.
    pub fn initial_integrate(&self, atoms: &mut AtomData, masses: &[f64], sim_box: &SimBox) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        for i in 0..atoms.n_local {
            let inv_m = 1.0 / masses[atoms.type_[i]];
            for d in 0..3 {
                atoms.v[i][d] += dtf * atoms.f[i][d] * inv_m;
            }
            let mut x = atoms.x[i];
            for d in 0..3 {
                x[d] += self.dt * atoms.v[i][d];
            }
            atoms.x[i] = sim_box.wrap(x);
        }
    }

    /// Second half of the step: half velocity kick from the *new* forces.
    pub fn final_integrate(&self, atoms: &mut AtomData, masses: &[f64]) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        for i in 0..atoms.n_local {
            let inv_m = 1.0 / masses[atoms.type_[i]];
            for d in 0..3 {
                atoms.v[i][d] += dtf * atoms.f[i][d] * inv_m;
            }
        }
    }

    /// [`initial_integrate`](VelocityVerlet::initial_integrate) on the
    /// shared runtime: participants update disjoint slices of the position
    /// and velocity arrays. Bitwise identical to the serial form.
    pub fn initial_integrate_on(
        &self,
        atoms: &mut AtomData,
        masses: &[f64],
        sim_box: &SimBox,
        runtime: &ParallelRuntime,
    ) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        let dt = self.dt;
        let n = atoms.n_local;
        let AtomData { x, v, f, type_, .. } = atoms;
        let xs = DisjointSlice::new(&mut x[..n]);
        let vs = DisjointSlice::new(&mut v[..n]);
        let f = &f[..];
        let type_ = &type_[..];
        runtime.par_parts(n, |range| {
            // SAFETY: participant ranges are disjoint and in bounds.
            let my_x = unsafe { xs.slice_mut(range.clone()) };
            let my_v = unsafe { vs.slice_mut(range.clone()) };
            for (k, i) in range.enumerate() {
                let inv_m = 1.0 / masses[type_[i]];
                for d in 0..3 {
                    my_v[k][d] += dtf * f[i][d] * inv_m;
                }
                let mut p = my_x[k];
                for d in 0..3 {
                    p[d] += dt * my_v[k][d];
                }
                my_x[k] = sim_box.wrap(p);
            }
        });
    }

    /// [`initial_integrate`](VelocityVerlet::initial_integrate) over an
    /// explicit set of canonical atom rows — the form the rank-parallel
    /// domain loop uses, where each rank owns a non-contiguous subset of the
    /// canonical arrays. Every atom's update is exactly the serial op
    /// sequence, so the result is bitwise identical under any partition of
    /// the rows across ranks/threads.
    ///
    /// # Safety
    /// Concurrent calls must use disjoint `rows`, all in bounds of `xs`/`vs`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn initial_integrate_rows(
        &self,
        xs: &DisjointSlice<[f64; 3]>,
        vs: &DisjointSlice<[f64; 3]>,
        f: &[[f64; 3]],
        type_: &[usize],
        masses: &[f64],
        sim_box: &SimBox,
        rows: &[usize],
    ) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        for &i in rows {
            // SAFETY: ownership rows are disjoint across concurrent calls.
            let v = unsafe { vs.get_mut(i) };
            let x = unsafe { xs.get_mut(i) };
            let inv_m = 1.0 / masses[type_[i]];
            for d in 0..3 {
                v[d] += dtf * f[i][d] * inv_m;
            }
            let mut p = *x;
            for d in 0..3 {
                p[d] += self.dt * v[d];
            }
            *x = sim_box.wrap(p);
        }
    }

    /// [`final_integrate`](VelocityVerlet::final_integrate) over an explicit
    /// set of canonical atom rows (see
    /// [`initial_integrate_rows`](VelocityVerlet::initial_integrate_rows)).
    ///
    /// # Safety
    /// Concurrent calls must use disjoint `rows`, all in bounds of `vs`.
    pub(crate) unsafe fn final_integrate_rows(
        &self,
        vs: &DisjointSlice<[f64; 3]>,
        f: &[[f64; 3]],
        type_: &[usize],
        masses: &[f64],
        rows: &[usize],
    ) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        for &i in rows {
            // SAFETY: ownership rows are disjoint across concurrent calls.
            let v = unsafe { vs.get_mut(i) };
            let inv_m = 1.0 / masses[type_[i]];
            for d in 0..3 {
                v[d] += dtf * f[i][d] * inv_m;
            }
        }
    }

    /// [`final_integrate`](VelocityVerlet::final_integrate) on the shared
    /// runtime. Bitwise identical to the serial form.
    pub fn final_integrate_on(
        &self,
        atoms: &mut AtomData,
        masses: &[f64],
        runtime: &ParallelRuntime,
    ) {
        let dtf = 0.5 * self.dt * units::FTM2V;
        let n = atoms.n_local;
        let AtomData { v, f, type_, .. } = atoms;
        let vs = DisjointSlice::new(&mut v[..n]);
        let f = &f[..];
        let type_ = &type_[..];
        runtime.par_parts(n, |range| {
            // SAFETY: participant ranges are disjoint and in bounds.
            let my_v = unsafe { vs.slice_mut(range.clone()) };
            for (k, i) in range.enumerate() {
                let inv_m = 1.0 / masses[type_[i]];
                for d in 0..3 {
                    my_v[k][d] += dtf * f[i][d] * inv_m;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Integrating a single particle under a constant force must reproduce
    /// the analytic constant-acceleration trajectory.
    #[test]
    fn constant_force_matches_analytic_solution() {
        let sim_box = SimBox::cubic(1.0e6);
        let start = [5.0e5; 3];
        let mut atoms = AtomData::new();
        atoms.push_local(start, [1.0, 0.0, 0.0], 0, 1);
        let masses = [10.0];
        let force = [0.2, 0.0, -0.1];
        let vv = VelocityVerlet::new(0.001);

        let n_steps = 1000;
        for _ in 0..n_steps {
            atoms.f[0] = force;
            vv.initial_integrate(&mut atoms, &masses, &sim_box);
            atoms.f[0] = force;
            vv.final_integrate(&mut atoms, &masses);
        }

        let t = n_steps as f64 * 0.001;
        let a = [
            force[0] / masses[0] * units::FTM2V,
            0.0,
            force[2] / masses[0] * units::FTM2V,
        ];
        let expect_x = [
            start[0] + 1.0 * t + 0.5 * a[0] * t * t,
            start[1],
            start[2] + 0.5 * a[2] * t * t,
        ];
        let expect_v = [1.0 + a[0] * t, 0.0, a[2] * t];
        for d in 0..3 {
            assert!(
                (atoms.x[0][d] - expect_x[d]).abs() < 1e-6,
                "x[{d}] = {} vs {}",
                atoms.x[0][d],
                expect_x[d]
            );
            assert!((atoms.v[0][d] - expect_v[d]).abs() < 1e-9);
        }
    }

    /// With zero force the particle drifts linearly and gets wrapped.
    #[test]
    fn free_particle_wraps_periodically() {
        let sim_box = SimBox::cubic(10.0);
        let mut atoms = AtomData::new();
        atoms.push_local([9.5, 5.0, 5.0], [100.0, 0.0, 0.0], 0, 1);
        let vv = VelocityVerlet::new(0.01);
        vv.initial_integrate(&mut atoms, &[1.0], &sim_box);
        // Moved 1.0 Å from 9.5 -> wrapped to 0.5.
        assert!((atoms.x[0][0] - 0.5).abs() < 1e-12);
        assert!(sim_box.contains(atoms.x[0]));
    }

    /// The integrator is time-reversible: integrating forward then reversing
    /// velocities and integrating the same number of (force-free) steps
    /// returns to the start.
    #[test]
    fn time_reversibility_without_forces() {
        let sim_box = SimBox::cubic(50.0);
        let mut atoms = AtomData::new();
        atoms.push_local([25.0, 25.0, 25.0], [1.3, -0.4, 0.7], 0, 1);
        let start = atoms.x[0];
        let vv = VelocityVerlet::new(0.002);
        for _ in 0..500 {
            vv.initial_integrate(&mut atoms, &[5.0], &sim_box);
            vv.final_integrate(&mut atoms, &[5.0]);
        }
        for d in 0..3 {
            atoms.v[0][d] = -atoms.v[0][d];
        }
        for _ in 0..500 {
            vv.initial_integrate(&mut atoms, &[5.0], &sim_box);
            vv.final_integrate(&mut atoms, &[5.0]);
        }
        for d in 0..3 {
            assert!((atoms.x[0][d] - start[d]).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "timestep must be positive")]
    fn zero_timestep_rejected() {
        VelocityVerlet::new(0.0);
    }

    #[test]
    fn parallel_integration_is_bitwise_identical_to_serial() {
        let (sim_box, mut serial) =
            crate::lattice::Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 8);
        for i in 0..serial.n_local {
            for d in 0..3 {
                serial.v[i][d] = ((i * 3 + d) as f64 * 0.11).sin();
                serial.f[i][d] = ((i * 3 + d) as f64 * 0.07).cos();
            }
        }
        let masses = [units::mass::SI];
        let vv = VelocityVerlet::new(0.002);
        for threads in [1usize, 2, 4, 8] {
            let rt = ParallelRuntime::new(threads);
            let mut par = serial.clone();
            let mut ser = serial.clone();
            for _ in 0..3 {
                vv.initial_integrate(&mut ser, &masses, &sim_box);
                vv.final_integrate(&mut ser, &masses);
                vv.initial_integrate_on(&mut par, &masses, &sim_box, &rt);
                vv.final_integrate_on(&mut par, &masses, &rt);
            }
            for i in 0..ser.n_local {
                for d in 0..3 {
                    assert_eq!(ser.x[i][d].to_bits(), par.x[i][d].to_bits(), "x[{i}][{d}]");
                    assert_eq!(ser.v[i][d].to_bits(), par.v[i][d].to_bits(), "v[{i}][{d}]");
                }
            }
        }
    }

    #[test]
    fn ghost_atoms_are_not_integrated() {
        let sim_box = SimBox::cubic(10.0);
        let mut atoms = AtomData::new();
        atoms.push_local([1.0; 3], [0.0; 3], 0, 1);
        atoms.push_ghost([5.0; 3], 0, 2);
        atoms.f[1] = [1.0e3; 3];
        let vv = VelocityVerlet::default();
        vv.initial_integrate(&mut atoms, &[1.0], &sim_box);
        vv.final_integrate(&mut atoms, &[1.0]);
        assert_eq!(atoms.x[1], [5.0; 3]);
        assert_eq!(atoms.v[1], [0.0; 3]);
    }
}
