//! Trajectory writers: observers that dump atom configurations to disk.
//!
//! Two formats share one buffered, self-disarming writer ([`FrameFile`]):
//!
//! * [`XyzDump`] — the ubiquitous XYZ format: an atom count, a comment line
//!   carrying the step number and box lengths, and one `element x y z` line
//!   per local atom. Every common visualizer (OVITO, VMD, ASE) reads it
//!   directly.
//! * [`LammpsDump`] — the LAMMPS text dump format (`ITEM: TIMESTEP` /
//!   `NUMBER OF ATOMS` / `BOX BOUNDS` / `ATOMS`): the same frames with
//!   explicit box bounds and 1-based atom ids/types, readable by OVITO, VMD
//!   and LAMMPS' own `read_dump`.
//!
//! Both plug into the simulation loop as [`Observer`]s, the same extension
//! point as the thermo log and timing printers; the `scenario` layer of the
//! facade crate exposes them as the `dump` field of a scenario spec (with a
//! `format` selector). Write errors do not panic the simulation loop: the
//! dump disarms itself and reports the first error through `error()` **and**
//! as an [`Observer::warnings`] entry, so the truncated trajectory surfaces
//! in [`RunReport::warnings`] instead of vanishing silently.

use crate::observer::{Observer, RunReport, StepContext};
use std::any::Any;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The machinery both dump formats share: a buffered file that counts the
/// frames it writes and disarms itself on the first IO error, keeping the
/// error text for `warnings()`.
struct FrameFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    frames: u64,
    error: Option<String>,
}

impl FrameFile {
    fn create(path: PathBuf) -> std::io::Result<Self> {
        let file = File::create(&path)?;
        Ok(FrameFile {
            path,
            writer: Some(BufWriter::new(file)),
            frames: 0,
            error: None,
        })
    }

    /// Run `frame` against the writer (a no-op once disarmed); count the
    /// frame on success, disarm on error.
    fn write_frame(&mut self, frame: impl FnOnce(&mut BufWriter<File>) -> std::io::Result<()>) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        match frame(writer) {
            Ok(()) => self.frames += 1,
            Err(e) => self.disarm(e),
        }
    }

    fn flush(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush() {
                self.disarm(e);
            }
        }
    }

    fn disarm(&mut self, e: std::io::Error) {
        self.error = Some(format!("{}: {e}", self.path.display()));
        self.writer = None;
    }

    fn warnings(&self, format: &str) -> Vec<String> {
        self.error
            .iter()
            .map(|e| format!("{format} dump disarmed (trajectory truncated): {e}"))
            .collect()
    }
}

/// An [`Observer`] that appends an XYZ frame at every step whose index is a
/// multiple of `every`, writing through a buffered file.
///
/// Element symbols are looked up per atom type; types beyond the supplied
/// table fall back to `"X"`. See the module docs for the disarm-on-error
/// contract shared with [`LammpsDump`].
pub struct XyzDump {
    file: FrameFile,
    every: u64,
    elements: Vec<String>,
}

impl XyzDump {
    /// Create (truncating) the dump file at `path`, writing one frame at
    /// every step divisible by `every`; `every == 0` disables frame writing
    /// entirely (the scenario layer rejects it at parse time). `elements`
    /// maps atom type index → element symbol.
    pub fn create(
        path: impl Into<PathBuf>,
        every: u64,
        elements: Vec<String>,
    ) -> std::io::Result<Self> {
        Ok(XyzDump {
            file: FrameFile::create(path.into())?,
            every,
            elements,
        })
    }

    /// The file the dump writes to.
    pub fn path(&self) -> &Path {
        &self.file.path
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.file.frames
    }

    /// The first write error, if any (the dump stops writing after one).
    pub fn error(&self) -> Option<&str> {
        self.file.error.as_deref()
    }

    fn write_frame(&mut self, ctx: &StepContext<'_>) {
        let lengths = ctx.sim_box.lengths();
        let elements = &self.elements;
        self.file.write_frame(|writer| {
            writeln!(writer, "{}", ctx.atoms.n_local)?;
            writeln!(
                writer,
                "step={} box=\"{:.6} {:.6} {:.6}\"",
                ctx.step, lengths[0], lengths[1], lengths[2]
            )?;
            for i in 0..ctx.atoms.n_local {
                let p = ctx.atoms.x[i];
                let element = elements
                    .get(ctx.atoms.type_[i])
                    .map(String::as_str)
                    .unwrap_or("X");
                writeln!(writer, "{element} {:.8} {:.8} {:.8}", p[0], p[1], p[2])?;
            }
            Ok(())
        });
    }
}

impl Observer for XyzDump {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        let due = self.every > 0 && ctx.step.is_multiple_of(self.every);
        if due {
            self.write_frame(ctx);
        }
    }

    fn on_finish(&mut self, _report: &RunReport) {
        self.file.flush();
    }

    fn warnings(&self) -> Vec<String> {
        self.file.warnings("xyz")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An [`Observer`] writing frames in the LAMMPS text dump format
/// (`ITEM: TIMESTEP` / `NUMBER OF ATOMS` / `BOX BOUNDS pp pp pp` /
/// `ATOMS id type element x y z`), with the box bounds the XYZ format
/// lacks. Atom ids and types are 1-based as LAMMPS expects; the element
/// column uses the same type → symbol table as [`XyzDump`].
pub struct LammpsDump {
    file: FrameFile,
    every: u64,
    elements: Vec<String>,
}

impl LammpsDump {
    /// Create (truncating) the dump file at `path`; same contract as
    /// [`XyzDump::create`].
    pub fn create(
        path: impl Into<PathBuf>,
        every: u64,
        elements: Vec<String>,
    ) -> std::io::Result<Self> {
        Ok(LammpsDump {
            file: FrameFile::create(path.into())?,
            every,
            elements,
        })
    }

    /// The file the dump writes to.
    pub fn path(&self) -> &Path {
        &self.file.path
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.file.frames
    }

    /// The first write error, if any (the dump stops writing after one).
    pub fn error(&self) -> Option<&str> {
        self.file.error.as_deref()
    }

    fn write_frame(&mut self, ctx: &StepContext<'_>) {
        let (lo, hi) = (ctx.sim_box.lo, ctx.sim_box.hi);
        let boundary = |p: bool| if p { "pp" } else { "ff" };
        let elements = &self.elements;
        self.file.write_frame(|writer| {
            writeln!(writer, "ITEM: TIMESTEP")?;
            writeln!(writer, "{}", ctx.step)?;
            writeln!(writer, "ITEM: NUMBER OF ATOMS")?;
            writeln!(writer, "{}", ctx.atoms.n_local)?;
            writeln!(
                writer,
                "ITEM: BOX BOUNDS {} {} {}",
                boundary(ctx.sim_box.periodic[0]),
                boundary(ctx.sim_box.periodic[1]),
                boundary(ctx.sim_box.periodic[2]),
            )?;
            for d in 0..3 {
                writeln!(writer, "{:.8} {:.8}", lo[d], hi[d])?;
            }
            writeln!(writer, "ITEM: ATOMS id type element x y z")?;
            for i in 0..ctx.atoms.n_local {
                let p = ctx.atoms.x[i];
                let type_ = ctx.atoms.type_[i];
                let element = elements.get(type_).map(String::as_str).unwrap_or("X");
                writeln!(
                    writer,
                    "{} {} {element} {:.8} {:.8} {:.8}",
                    i + 1,
                    type_ + 1,
                    p[0],
                    p[1],
                    p[2]
                )?;
            }
            Ok(())
        });
    }
}

impl Observer for LammpsDump {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        let due = self.every > 0 && ctx.step.is_multiple_of(self.every);
        if due {
            self.write_frame(ctx);
        }
    }

    fn on_finish(&mut self, _report: &RunReport) {
        self.file.flush();
    }

    fn warnings(&self) -> Vec<String> {
        self.file.warnings("lammps")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;
    use crate::simulation::Simulation;
    use crate::units;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("md_core_dump_{name}_{}.xyz", std::process::id()));
        p
    }

    #[test]
    fn dumps_frames_at_the_requested_cadence() {
        let path = temp_path("cadence");
        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
        let n_atoms = atoms.n_local;
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let dump = XyzDump::create(&path, 5, vec!["Si".to_string()]).expect("create dump");
        let mut sim = Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .observe(dump)
            .build()
            .expect("valid setup");
        sim.run(12);

        let dump = sim.observer::<XyzDump>().expect("dump registered");
        assert_eq!(dump.frames_written(), 2); // steps 5 and 10
        assert!(dump.error().is_none());
        assert_eq!(dump.path(), path.as_path());

        // on_finish flushed the buffer, so the file is complete on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 * (n_atoms + 2));
        assert_eq!(lines[0].parse::<usize>().unwrap(), n_atoms);
        assert!(lines[1].starts_with("step=5 box="));
        assert!(lines[2].starts_with("Si "));
        assert!(lines[n_atoms + 3].starts_with("step=10"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lammps_dump_writes_box_bounds_and_one_based_ids() {
        let path = temp_path("lammps");
        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
        let n_atoms = atoms.n_local;
        let box_hi = sim_box.hi;
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let dump = LammpsDump::create(&path, 5, vec!["Si".to_string()]).expect("create dump");
        let mut sim = Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .observe(dump)
            .build()
            .expect("valid setup");
        sim.run(12);

        let dump = sim.observer::<LammpsDump>().expect("dump registered");
        assert_eq!(dump.frames_written(), 2); // steps 5 and 10
        assert!(dump.error().is_none());

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Each frame: 9 header lines + one line per atom.
        assert_eq!(lines.len(), 2 * (9 + n_atoms));
        assert_eq!(lines[0], "ITEM: TIMESTEP");
        assert_eq!(lines[1], "5");
        assert_eq!(lines[3].parse::<usize>().unwrap(), n_atoms);
        assert_eq!(lines[4], "ITEM: BOX BOUNDS pp pp pp");
        let bounds: Vec<f64> = lines[5]
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(bounds[0], 0.0);
        assert!((bounds[1] - box_hi[0]).abs() < 1e-8);
        assert_eq!(lines[8], "ITEM: ATOMS id type element x y z");
        // 1-based id and type, with the element symbol.
        assert!(lines[9].starts_with("1 1 Si "));
        assert!(lines[9 + n_atoms].starts_with("ITEM: TIMESTEP"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_types_fall_back_to_x() {
        let path = temp_path("fallback");
        let mut atoms = crate::atom::AtomData::new();
        atoms.push_local([1.0; 3], [0.0; 3], 0, 1);
        atoms.push_local([2.0; 3], [0.0; 3], 5, 2); // type with no symbol
        let sim_box = crate::simbox::SimBox::cubic(10.0);
        let neighbors = crate::neighbor::NeighborList::default();
        let mut dump = XyzDump::create(&path, 1, vec!["Si".into()]).unwrap();
        let ctx = StepContext {
            step: 1,
            atoms: &atoms,
            sim_box: &sim_box,
            masses: &[1.0],
            neighbors: &neighbors,
            n_rebuilds: 0,
            potential_energy: 0.0,
            virial: 0.0,
            virial_tensor: &[0.0; 6],
        };
        dump.on_step(&ctx);
        dump.on_finish(&RunReport {
            steps: 1,
            total_steps: 1,
            rebuilds: 0,
            total_rebuilds: 0,
            wall_seconds: 0.0,
            ns_per_day: 0.0,
            max_drift: 0.0,
            last_drift: 0.0,
            final_thermo: Default::default(),
            timers: Default::default(),
            status: Default::default(),
            warnings: Vec::new(),
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with("Si "));
        assert!(lines[3].starts_with("X "));
        let _ = std::fs::remove_file(&path);
    }
}
