//! Trajectory writers: observers that dump atom configurations to disk.
//!
//! [`XyzDump`] writes the ubiquitous XYZ format — one frame per sampling
//! interval, each frame an atom count, a comment line carrying the step
//! number and box lengths, and one `element x y z` line per local atom —
//! which every common visualizer (OVITO, VMD, ASE) reads directly. It plugs
//! into the simulation loop as an [`Observer`], the same extension point as
//! the thermo log and timing printers; the `scenario` layer of the facade
//! crate exposes it as the `dump` field of a scenario spec.

use crate::observer::{Observer, RunReport, StepContext};
use std::any::Any;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// An [`Observer`] that appends an XYZ frame at every step whose index is a
/// multiple of `every`, writing through a buffered file.
///
/// Element symbols are looked up per atom type; types beyond the supplied
/// table fall back to `"X"`. Write errors do not panic the simulation loop:
/// the dump disarms itself and reports the first error through
/// [`XyzDump::error`] **and** as an [`Observer::warnings`] entry, so the
/// truncated trajectory surfaces in [`RunReport::warnings`] and the
/// scenario runner's per-variant table instead of vanishing silently.
pub struct XyzDump {
    path: PathBuf,
    every: u64,
    elements: Vec<String>,
    writer: Option<BufWriter<File>>,
    frames: u64,
    error: Option<String>,
}

impl XyzDump {
    /// Create (truncating) the dump file at `path`, writing one frame at
    /// every step divisible by `every`; `every == 0` disables frame writing
    /// entirely (the scenario layer rejects it at parse time). `elements`
    /// maps atom type index → element symbol.
    pub fn create(
        path: impl Into<PathBuf>,
        every: u64,
        elements: Vec<String>,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(XyzDump {
            path,
            every,
            elements,
            writer: Some(BufWriter::new(file)),
            frames: 0,
            error: None,
        })
    }

    /// The file the dump writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// The first write error, if any (the dump stops writing after one).
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    fn write_frame(&mut self, ctx: &StepContext<'_>) {
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let lengths = ctx.sim_box.lengths();
        let result = (|| -> std::io::Result<()> {
            writeln!(writer, "{}", ctx.atoms.n_local)?;
            writeln!(
                writer,
                "step={} box=\"{:.6} {:.6} {:.6}\"",
                ctx.step, lengths[0], lengths[1], lengths[2]
            )?;
            for i in 0..ctx.atoms.n_local {
                let p = ctx.atoms.x[i];
                let element = self
                    .elements
                    .get(ctx.atoms.type_[i])
                    .map(String::as_str)
                    .unwrap_or("X");
                writeln!(writer, "{element} {:.8} {:.8} {:.8}", p[0], p[1], p[2])?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => self.frames += 1,
            Err(e) => {
                self.error = Some(format!("{}: {e}", self.path.display()));
                self.writer = None;
            }
        }
    }
}

impl Observer for XyzDump {
    fn on_step(&mut self, ctx: &StepContext<'_>) {
        let due = self.every > 0 && ctx.step.is_multiple_of(self.every);
        if due {
            self.write_frame(ctx);
        }
    }

    fn on_finish(&mut self, _report: &RunReport) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush() {
                self.error = Some(format!("{}: {e}", self.path.display()));
                self.writer = None;
            }
        }
    }

    fn warnings(&self) -> Vec<String> {
        self.error
            .iter()
            .map(|e| format!("xyz dump disarmed (trajectory truncated): {e}"))
            .collect()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;
    use crate::simulation::Simulation;
    use crate::units;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("md_core_dump_{name}_{}.xyz", std::process::id()));
        p
    }

    #[test]
    fn dumps_frames_at_the_requested_cadence() {
        let path = temp_path("cadence");
        let (sim_box, atoms) = Lattice::silicon([2, 2, 2]).build_perturbed(0.02, 3);
        let n_atoms = atoms.n_local;
        let lj = LennardJones::new(0.1, 2.0, 4.0);
        let dump = XyzDump::create(&path, 5, vec!["Si".to_string()]).expect("create dump");
        let mut sim = Simulation::builder(atoms, sim_box, lj)
            .masses(vec![units::mass::SI])
            .observe(dump)
            .build()
            .expect("valid setup");
        sim.run(12);

        let dump = sim.observer::<XyzDump>().expect("dump registered");
        assert_eq!(dump.frames_written(), 2); // steps 5 and 10
        assert!(dump.error().is_none());
        assert_eq!(dump.path(), path.as_path());

        // on_finish flushed the buffer, so the file is complete on disk.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 * (n_atoms + 2));
        assert_eq!(lines[0].parse::<usize>().unwrap(), n_atoms);
        assert!(lines[1].starts_with("step=5 box="));
        assert!(lines[2].starts_with("Si "));
        assert!(lines[n_atoms + 3].starts_with("step=10"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_types_fall_back_to_x() {
        let path = temp_path("fallback");
        let mut atoms = crate::atom::AtomData::new();
        atoms.push_local([1.0; 3], [0.0; 3], 0, 1);
        atoms.push_local([2.0; 3], [0.0; 3], 5, 2); // type with no symbol
        let sim_box = crate::simbox::SimBox::cubic(10.0);
        let neighbors = crate::neighbor::NeighborList::default();
        let mut dump = XyzDump::create(&path, 1, vec!["Si".into()]).unwrap();
        let ctx = StepContext {
            step: 1,
            atoms: &atoms,
            sim_box: &sim_box,
            masses: &[1.0],
            neighbors: &neighbors,
            n_rebuilds: 0,
        };
        dump.on_step(&ctx);
        dump.on_finish(&RunReport {
            steps: 1,
            total_steps: 1,
            rebuilds: 0,
            total_rebuilds: 0,
            wall_seconds: 0.0,
            ns_per_day: 0.0,
            max_drift: 0.0,
            last_drift: 0.0,
            final_thermo: Default::default(),
            timers: Default::default(),
            status: Default::default(),
            warnings: Vec::new(),
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].starts_with("Si "));
        assert!(lines[3].starts_with("X "));
        let _ = std::fs::remove_file(&path);
    }
}
