//! The shared parallel runtime: the **one thread owner** in the system.
//!
//! Until this module existed, the condvar [`WorkerPool`] was a private detail
//! of the force engine, and every other phase of a timestep — neighbor
//! binning, ghost exchange, integration, thermo reductions — ran
//! single-threaded. [`ParallelRuntime`] promotes the pool into a first-class
//! API that *all* phases dispatch through, mirroring the shared runtime
//! layers of LAMMPS/USER-INTEL (OpenMP) and the Kokkos port that the paper's
//! cross-platform results rely on:
//!
//! * [`SimulationBuilder`](crate::simulation::SimulationBuilder) creates the
//!   runtime (`.threads(n)`), the [`ForceEngine`](crate::force_engine::
//!   ForceEngine) *borrows* it (a cheap cloneable handle to the same pool),
//!   and neighbor rebuilds, the rank phases of
//!   [`crate::domain::DomainSimulation`], velocity-Verlet updates and
//!   kinetic-energy reductions all run on the same worker team — one pool per simulation,
//!   never one pool per subsystem.
//! * Work is split into **fixed chunks whose boundaries depend only on the
//!   problem size, never on the thread count** ([`fixed_chunk_count`]), and
//!   reductions fold the per-chunk partials in ascending chunk order
//!   ([`ParallelRuntime::par_chunk_map`]). Floating-point summation order is
//!   therefore identical for every thread count: **results are bitwise
//!   identical whether a step runs on 1 thread or 8** (`tests/
//!   runtime_equivalence.rs` holds the whole step to this).
//! * Dispatch is allocation-free: jobs are borrowed closure pointers handed
//!   over through a mutex/condvar, so the steady-state step performs zero
//!   heap allocations (audited by `tests/alloc_free.rs`).
//!
//! The `TERSOFF_THREADS` environment variable overrides every requested
//! thread count ([`resolve_threads`]) — CI uses it to force the entire test
//! suite through the multi-threaded code paths, which the bitwise contract
//! above makes safe.
//!
//! **Fault model.** A panic inside a dispatched job is caught on the
//! participant it happened on; every participant still runs to the epoch
//! barrier, the first payload is captured, and the failure surfaces as a
//! typed [`RuntimeError::WorkerPanic`] ([`ParallelRuntime::try_dispatch`] /
//! [`WorkerPool::try_run`]; the infallible forms re-panic the *caller* with
//! that message). The pool **self-heals**: workers stay alive in their
//! dispatch loop, all internal locks recover from poisoning explicitly
//! ([`lock_recover`]), and the same handle runs the next job — one
//! panicking simulation can never wedge or kill the shared runtime
//! (`tests/fault_tolerance.rs`).

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Typed runtime failures + poison-proof locking
// ---------------------------------------------------------------------------

/// A parallel section failed. The runtime guarantees that after any
/// [`RuntimeError`] the pool is **fully operational**: every worker is still
/// alive (workers catch job panics and return to their dispatch loop), no
/// mutex is left poisoned, and the same [`ParallelRuntime`] /
/// [`WorkerPool`] handle accepts the next job as if nothing happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// One or more participants panicked while running the dispatched job.
    WorkerPanic {
        /// Total participants of the dispatch (workers + caller).
        participants: usize,
        /// How many of them panicked.
        panics: usize,
        /// The payload of the first panic observed (stringified).
        first_payload: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::WorkerPanic {
                participants,
                panics,
                first_payload,
            } => write!(
                f,
                "parallel section failed: {panics} of {participants} participant(s) \
                 panicked (first payload: {first_payload})"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Stringify a caught panic payload (the two shapes `panic!` produces, with
/// a fallback for exotic payloads).
pub fn panic_payload_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock a mutex, explicitly recovering from poisoning. The pool catches
/// every job panic on the thread it happens on, so its mutexes are never
/// poisoned *by job code* — but a panic in pool-internal code (or a caller
/// panicking while the lazy-init lock of [`ParallelRuntime::dispatch`] is
/// held) must not wedge every later job on a `PoisonError`. All pool state
/// guarded by these locks is kept consistent before any panic can unwind
/// through, so recovery is sound.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same explicit poison recovery.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Resolve a requested thread count into the count a runtime will actually
/// use: the `TERSOFF_THREADS` environment variable (a positive integer)
/// overrides everything, `0` means one thread per available CPU, any other
/// value is taken literally.
///
/// A set-but-malformed (or zero) `TERSOFF_THREADS` panics instead of being
/// silently ignored — the variable exists to *force* a scheduling regime
/// (CI's multi-thread pass), and a typo that quietly fell back to the
/// requested count would disarm that coverage while looking green. An empty
/// value counts as unset.
pub fn resolve_threads(requested: usize) -> usize {
    if let Ok(forced) = std::env::var("TERSOFF_THREADS") {
        let forced = forced.trim();
        if !forced.is_empty() {
            match forced.parse::<usize>() {
                Ok(n) if n > 0 => return n,
                _ => panic!("TERSOFF_THREADS must be a positive integer, got {forced:?}"),
            }
        }
    }
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

// ---------------------------------------------------------------------------
// Fixed chunk policy
// ---------------------------------------------------------------------------

/// Upper bound on the number of fixed chunks a range is split into — the
/// per-phase parallelism ceiling, and (for the force engine) the number of
/// per-chunk accumulation buffers.
pub const MAX_CHUNKS: usize = 32;

/// Smallest chunk worth dispatching (items); ranges shorter than
/// `MAX_CHUNKS × MIN_CHUNK_ITEMS` use proportionally fewer chunks.
pub const MIN_CHUNK_ITEMS: usize = 32;

/// Number of fixed chunks for a range of `n` items.
///
/// The count depends **only on `n`** — never on the thread count — which is
/// what makes chunk boundaries (and therefore floating-point summation
/// order) identical across thread counts.
pub fn fixed_chunk_count(n: usize) -> usize {
    n.div_ceil(MIN_CHUNK_ITEMS).clamp(1, MAX_CHUNKS)
}

/// Balanced contiguous partition of `0..n` into `parts` ranges. The first
/// `n % parts` ranges are one element longer.
pub fn chunk_ranges(n: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    let parts = parts.max(1);
    (0..parts).map(move |p| chunk_range(n, parts, p))
}

/// The `index`-th range of [`chunk_ranges`]`(n, parts)`.
pub fn chunk_range(n: usize, parts: usize, index: usize) -> Range<usize> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let lo = index * base + index.min(extra);
    let hi = lo + base + usize::from(index < extra);
    lo..hi
}

/// The fixed chunks of `0..n` (see [`fixed_chunk_count`]).
pub fn fixed_chunks(n: usize) -> impl Iterator<Item = Range<usize>> {
    chunk_ranges(n, fixed_chunk_count(n))
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Type-erased job pointer handed to workers. The lifetime is erased; safety
/// comes from [`WorkerPool::run`] not returning until every worker has
/// finished with it.
#[derive(Copy, Clone)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (callable from any thread through `&`), and
// the dispatch protocol guarantees it outlives all worker accesses.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per dispatched job; workers run when it changes.
    epoch: u64,
    /// The current job, valid while `active > 0`.
    job: Option<Job>,
    /// Workers still running the current epoch.
    active: usize,
    /// Tells workers to exit.
    shutdown: bool,
    /// Participants whose job invocation panicked during the current epoch.
    panics: usize,
    /// Stringified payload of the first panic of the current epoch.
    first_payload: Option<String>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    go: Condvar,
    done: Condvar,
}

/// A persistent team of worker threads with allocation-free job dispatch.
///
/// `run(f)` makes every participant — the calling thread plus each worker —
/// invoke `f(participant_index)` exactly once, then blocks until all are
/// done. Dispatch is a mutex/condvar hand-off of a borrowed closure pointer:
/// no boxing, no channels, no per-step heap traffic.
///
/// Most code should not touch the pool directly: [`ParallelRuntime`] owns
/// one and layers the chunked, deterministic primitives on top.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` background threads (participant indices `1..=workers`;
    /// index 0 is the thread that calls [`WorkerPool::run`]).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                panics: 0,
                first_payload: None,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("md-runtime-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("failed to spawn runtime worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of participants (`workers + 1` for the caller).
    pub fn participants(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(i)` once for every participant index `i` in
    /// `0..participants()`, with index 0 executed on the calling thread.
    ///
    /// Takes `&mut self` deliberately: exclusive access makes overlapping
    /// dispatches — which would race the shared job slot and could leave a
    /// worker holding a dangling closure pointer — unrepresentable in safe
    /// code.
    ///
    /// Panics (with the [`RuntimeError`] message, carrying the first
    /// participant's payload) if any participant panicked; use
    /// [`WorkerPool::try_run`] for the typed form. Either way the pool is
    /// reusable afterwards.
    pub fn run(&mut self, f: &(dyn Fn(usize) + Sync)) {
        if let Err(e) = self.try_run(f) {
            panic!("{e}");
        }
    }

    /// [`WorkerPool::run`], surfacing participant panics as a typed
    /// [`RuntimeError::WorkerPanic`] instead of unwinding the caller.
    ///
    /// Every participant — panicked or not — runs to the epoch barrier, so
    /// on return the job is finished everywhere, the workers are back in
    /// their dispatch loop, and the pool accepts the next job.
    pub fn try_run(&mut self, f: &(dyn Fn(usize) + Sync)) -> Result<(), RuntimeError> {
        // SAFETY: erase the borrow lifetime; `try_run` does not return until
        // `active == 0`, so no worker touches the pointer afterwards, and
        // `&mut self` guarantees no second dispatch overlaps this one.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        });
        {
            let mut st = lock_recover(&self.shared.state);
            debug_assert_eq!(st.active, 0, "pool dispatched while busy");
            st.job = Some(job);
            st.active = self.handles.len();
            st.epoch += 1;
            self.shared.go.notify_all();
        }

        // The caller is participant 0. Its panic is captured like any
        // worker's, so the epoch always completes and the pool state stays
        // consistent.
        let caller_panic = panic::catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut st = lock_recover(&self.shared.state);
        while st.active != 0 {
            st = wait_recover(&self.shared.done, st);
        }
        st.job = None;
        let mut panics = std::mem::replace(&mut st.panics, 0);
        let mut first_payload = st.first_payload.take();
        drop(st);
        if let Err(payload) = caller_panic {
            panics += 1;
            if first_payload.is_none() {
                first_payload = Some(panic_payload_string(payload.as_ref()));
            }
        }
        if panics > 0 {
            return Err(RuntimeError::WorkerPanic {
                participants: self.participants(),
                panics,
                first_payload: first_payload.unwrap_or_else(|| "unknown".to_string()),
            });
        }
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_recover(&self.shared.state);
            st.shutdown = true;
            self.shared.go.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock_recover(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("job set when epoch advances");
                }
                st = wait_recover(&shared.go, st);
            }
        };
        // SAFETY: the dispatcher keeps the closure alive until `active == 0`.
        let f = unsafe { &*job.0 };
        // A panicking job is caught *on the worker*: the worker survives
        // (back to the dispatch loop for the next epoch), the payload is
        // captured for the dispatcher's typed error, and the epoch barrier
        // is honored so the dispatcher never hangs.
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(index)));
        let mut st = lock_recover(&shared.state);
        if let Err(payload) = result {
            st.panics += 1;
            if st.first_payload.is_none() {
                st.first_payload = Some(panic_payload_string(payload.as_ref()));
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

// ---------------------------------------------------------------------------
// Disjoint-access helper
// ---------------------------------------------------------------------------

/// Shared mutable access to the elements of a slice under the *caller's*
/// guarantee that concurrent accesses use disjoint indices/ranges.
///
/// Crate-internal: the safe surface of the runtime is the chunked primitives
/// on [`ParallelRuntime`]; the kernel-style modules (`force_engine`,
/// `neighbor`, `integrate`, `domain`) use this to hand workers
/// aliasing-free access to distinct elements of their arrays.
pub(crate) struct DisjointSlice<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: access discipline (disjoint indices) is enforced by the caller.
unsafe impl<T: Send> Sync for DisjointSlice<T> {}

impl<T> DisjointSlice<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `index < len` and no concurrent access to the same index.
    // The `&self -> &mut` shape is the whole point of this wrapper: it hands
    // workers aliasing-free access to distinct elements.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        &mut *self.ptr.add(index)
    }

    /// # Safety
    /// `range` in bounds and no concurrent access to overlapping ranges.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len())
    }
}

// ---------------------------------------------------------------------------
// The runtime
// ---------------------------------------------------------------------------

/// The shared thread owner: a cheaply cloneable handle to one persistent
/// [`WorkerPool`] plus the deterministic chunked primitives every simulation
/// phase dispatches through.
///
/// Clones share the same pool (that is the "borrow" in *the force engine
/// borrows the runtime*): a simulation, its force engine and a decomposed
/// system can all hold handles to one worker team. Dispatches through
/// different handles serialize on the pool — there is exactly one parallel
/// section in flight at a time, by construction.
///
/// The pool is spawned lazily on the first parallel dispatch, so a
/// single-threaded runtime never creates a thread. Do **not** dispatch from
/// inside a job (the pool is not reentrant); none of the built-in phases do.
#[derive(Clone)]
pub struct ParallelRuntime {
    threads: usize,
    pool: Arc<Mutex<Option<WorkerPool>>>,
}

impl std::fmt::Debug for ParallelRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelRuntime")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Default for ParallelRuntime {
    /// A serial runtime (see [`ParallelRuntime::serial`]).
    fn default() -> Self {
        ParallelRuntime::serial()
    }
}

impl ParallelRuntime {
    /// A runtime with `requested` participants, resolved through
    /// [`resolve_threads`] (`0` = one per available CPU; `TERSOFF_THREADS`
    /// overrides everything).
    pub fn new(requested: usize) -> Self {
        ParallelRuntime {
            threads: resolve_threads(requested),
            pool: Arc::new(Mutex::new(None)),
        }
    }

    /// A runtime that is exactly single-threaded — the internal fallback for
    /// code paths that were handed no runtime. Not subject to the
    /// `TERSOFF_THREADS` override; use [`ParallelRuntime::new`] for anything
    /// user-facing.
    pub fn serial() -> Self {
        ParallelRuntime {
            threads: 1,
            pool: Arc::new(Mutex::new(None)),
        }
    }

    /// Number of participants (calling thread included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` once for every participant index `i` in `0..threads()`;
    /// index 0 runs on the calling thread. The low-level primitive the
    /// chunked helpers are built on.
    ///
    /// If any participant panics, this panics the caller with the
    /// [`RuntimeError`] message (payload preserved in the text); the runtime
    /// handle remains fully usable afterwards. Use
    /// [`try_dispatch`](ParallelRuntime::try_dispatch) for the typed form.
    pub fn dispatch(&self, f: &(dyn Fn(usize) + Sync)) {
        if let Err(e) = self.try_dispatch(f) {
            panic!("{e}");
        }
    }

    /// [`dispatch`](ParallelRuntime::dispatch) with participant panics
    /// surfaced as a typed [`RuntimeError::WorkerPanic`] instead of an
    /// unwinding caller. After an error the pool has self-healed: workers
    /// are alive, no lock is poisoned, and the same handle runs the next
    /// job (`tests/fault_tolerance.rs` holds the runtime to this).
    pub fn try_dispatch(&self, f: &(dyn Fn(usize) + Sync)) -> Result<(), RuntimeError> {
        if self.threads == 1 {
            // Serial runtimes have no pool; capture the caller's panic so a
            // 1-thread job fails exactly like an n-thread one.
            return match panic::catch_unwind(AssertUnwindSafe(|| f(0))) {
                Ok(()) => Ok(()),
                Err(payload) => Err(RuntimeError::WorkerPanic {
                    participants: 1,
                    panics: 1,
                    first_payload: panic_payload_string(payload.as_ref()),
                }),
            };
        }
        // The lazy-init lock is held across the whole parallel section (that
        // is what serializes dispatches from cloned handles); recover it
        // explicitly so a job panic that unwound through `dispatch` can
        // never wedge a later job on a poisoned mutex.
        let mut guard = lock_recover(&self.pool);
        let pool = guard.get_or_insert_with(|| WorkerPool::new(self.threads - 1));
        pool.try_run(f)
    }

    /// Run `body(chunk_index, chunk_range)` for every fixed chunk of `0..n`
    /// (see [`fixed_chunks`]), distributing contiguous blocks of chunks over
    /// the participants.
    ///
    /// Chunk boundaries depend only on `n`, so any per-chunk-deterministic
    /// `body` produces results that are independent of the thread count.
    pub fn par_chunks(&self, n: usize, body: impl Fn(usize, Range<usize>) + Sync) {
        let n_chunks = fixed_chunk_count(n);
        let t = self.threads.min(n_chunks);
        self.dispatch(&|who| {
            if who >= t {
                return;
            }
            for c in chunk_range(n_chunks, t, who) {
                body(c, chunk_range(n, n_chunks, c));
            }
        });
    }

    /// [`par_chunks`](ParallelRuntime::par_chunks) with per-participant
    /// scratch: `body(chunk_index, chunk_range, scratch)` runs with the
    /// scratch slot of whichever participant executes the chunk. Chunks
    /// assigned to one participant run sequentially on its slot.
    ///
    /// `scratch` must provide at least [`threads`](ParallelRuntime::threads)
    /// slots. For thread-count-independent results the `body` output must
    /// not depend on scratch *history* (buffers overwritten per call;
    /// accumulated diagnostics folded associatively are fine).
    pub fn par_for<S: Send>(
        &self,
        n: usize,
        scratch: &mut [S],
        body: impl Fn(usize, Range<usize>, &mut S) + Sync,
    ) {
        assert!(
            scratch.len() >= self.threads,
            "par_for needs one scratch slot per participant ({} < {})",
            scratch.len(),
            self.threads
        );
        let n_chunks = fixed_chunk_count(n);
        let t = self.threads.min(n_chunks);
        let slots = DisjointSlice::new(scratch);
        self.dispatch(&|who| {
            if who >= t {
                return;
            }
            // SAFETY: each participant index is used by exactly one thread
            // per dispatch.
            let my = unsafe { slots.get_mut(who) };
            for c in chunk_range(n_chunks, t, who) {
                body(c, chunk_range(n, n_chunks, c), my);
            }
        });
    }

    /// Split `data` into one contiguous sub-slice per participant and run
    /// `body(range, sub_slice)` on each concurrently.
    ///
    /// The partition *does* depend on the thread count, so this is only for
    /// element-wise work whose per-element result is independent of the
    /// partition (integration updates, ordered per-element reductions).
    pub fn par_slices<T: Send>(
        &self,
        data: &mut [T],
        body: impl Fn(Range<usize>, &mut [T]) + Sync,
    ) {
        let n = data.len();
        let t = self.threads;
        let slice = DisjointSlice::new(data);
        self.dispatch(&|who| {
            let range = chunk_range(n, t, who);
            if range.is_empty() {
                return;
            }
            // SAFETY: participant ranges are disjoint.
            let sub = unsafe { slice.slice_mut(range.clone()) };
            body(range, sub);
        });
    }

    /// Split `0..n` into one contiguous range per participant and run
    /// `body(range)` on each concurrently. Like
    /// [`par_slices`](ParallelRuntime::par_slices) but index-based — for
    /// coarse-grained items (e.g. decomposition ranks) where the fixed-chunk
    /// granularity of [`par_chunks`](ParallelRuntime::par_chunks) would
    /// under-split.
    pub fn par_parts(&self, n: usize, body: impl Fn(Range<usize>) + Sync) {
        let t = self.threads;
        self.dispatch(&|who| {
            let range = chunk_range(n, t, who);
            if !range.is_empty() {
                body(range);
            }
        });
    }

    /// The deterministic chunk→slot reduction: fill `slots` (resized to the
    /// fixed chunk count of `n`, reusing capacity) with
    /// `body(chunk_index, chunk_range)` computed in parallel. The caller
    /// folds the slots **in ascending chunk order**, which fixes the
    /// floating-point summation order independently of the thread count.
    /// Allocation-free once `slots` has reached its high-water capacity.
    pub fn par_chunk_map<R: Send + Clone>(
        &self,
        n: usize,
        slots: &mut Vec<R>,
        zero: R,
        body: impl Fn(usize, Range<usize>) -> R + Sync,
    ) {
        let n_chunks = fixed_chunk_count(n);
        slots.clear();
        slots.resize(n_chunks, zero);
        let out = DisjointSlice::new(slots);
        self.par_chunks(n, |c, range| {
            // SAFETY: each chunk index is written by exactly one thread.
            let slot = unsafe { out.get_mut(c) };
            *slot = body(c, range);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_cover_everything_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 4, 8, 13] {
                let ranges: Vec<_> = chunk_ranges(n, parts).collect();
                assert_eq!(ranges.len(), parts);
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(chunk_range(n, parts, i), *r);
                }
            }
        }
    }

    #[test]
    fn fixed_chunk_count_ignores_thread_count_and_scales_with_n() {
        assert_eq!(fixed_chunk_count(0), 1);
        assert_eq!(fixed_chunk_count(1), 1);
        assert_eq!(fixed_chunk_count(MIN_CHUNK_ITEMS), 1);
        assert_eq!(fixed_chunk_count(MIN_CHUNK_ITEMS + 1), 2);
        assert_eq!(fixed_chunk_count(10 * MIN_CHUNK_ITEMS), 10);
        assert_eq!(fixed_chunk_count(usize::MAX / 2), MAX_CHUNKS);
        let total: usize = fixed_chunks(1000).map(|r| r.len()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn pool_runs_every_participant_exactly_once() {
        let mut pool = WorkerPool::new(3);
        assert_eq!(pool.participants(), 4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|who| {
                counts[who].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn pool_surfaces_worker_panics_as_typed_errors() {
        let mut pool = WorkerPool::new(2);
        let err = pool
            .try_run(&|who| {
                if who == 2 {
                    panic!("boom");
                }
            })
            .unwrap_err();
        match &err {
            RuntimeError::WorkerPanic {
                participants,
                panics,
                first_payload,
            } => {
                assert_eq!(*participants, 3);
                assert_eq!(*panics, 1);
                assert_eq!(first_payload, "boom");
            }
        }
        assert!(err.to_string().contains("boom"));
        // The pool self-heals: the same workers run the next job.
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_captures_caller_panics_too() {
        let mut pool = WorkerPool::new(1);
        let err = pool
            .try_run(&|who| {
                if who == 0 {
                    panic!("caller went down");
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("caller went down"));
        // `run` panics with the typed message instead of a bare payload.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|_| panic!("second failure"));
        }));
        let payload = result.unwrap_err();
        assert!(panic_payload_string(payload.as_ref()).contains("second failure"));
        let hits = AtomicUsize::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn runtime_is_reusable_after_repeated_panics() {
        for threads in [1usize, 3] {
            let rt = ParallelRuntime {
                threads,
                pool: Arc::new(Mutex::new(None)),
            };
            for round in 0..3 {
                let err = rt
                    .try_dispatch(&|who| {
                        if who == threads - 1 {
                            panic!("injected round {round}");
                        }
                    })
                    .unwrap_err();
                assert!(
                    err.to_string().contains(&format!("injected round {round}")),
                    "{err}"
                );
                // Every round after a panic must run normally on the same
                // handle — workers alive, no poisoned locks.
                let hits = AtomicUsize::new(0);
                rt.dispatch(&|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(hits.load(Ordering::Relaxed), threads);
            }
            // A panicking chunked primitive heals the same way.
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                rt.par_chunks(10 * MIN_CHUNK_ITEMS, |c, _| {
                    if c == 0 {
                        panic!("chunk fault");
                    }
                });
            }));
            assert!(caught.is_err());
            let mut slots = Vec::new();
            rt.par_chunk_map(10 * MIN_CHUNK_ITEMS, &mut slots, 0usize, |_c, r| r.len());
            assert_eq!(slots.iter().sum::<usize>(), 10 * MIN_CHUNK_ITEMS);
        }
    }

    #[test]
    fn runtime_dispatch_reaches_every_participant() {
        let rt = ParallelRuntime::new(3);
        let counts: Vec<AtomicUsize> = (0..rt.threads()).map(|_| AtomicUsize::new(0)).collect();
        rt.dispatch(&|who| {
            counts[who].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
        // Clones share the pool and keep working.
        let clone = rt.clone();
        let hits = AtomicUsize::new(0);
        clone.dispatch(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), clone.threads());
    }

    #[test]
    fn par_chunks_visits_every_fixed_chunk_once() {
        for threads in [1usize, 2, 3, 8] {
            let rt = ParallelRuntime {
                threads,
                pool: Arc::new(Mutex::new(None)),
            };
            let n = 10 * MIN_CHUNK_ITEMS + 5;
            let n_chunks = fixed_chunk_count(n);
            let seen: Vec<AtomicUsize> = (0..n_chunks).map(|_| AtomicUsize::new(0)).collect();
            let covered = AtomicUsize::new(0);
            rt.par_chunks(n, |c, range| {
                seen[c].fetch_add(1, Ordering::Relaxed);
                covered.fetch_add(range.len(), Ordering::Relaxed);
                assert_eq!(range, chunk_range(n, n_chunks, c));
            });
            for s in &seen {
                assert_eq!(s.load(Ordering::Relaxed), 1);
            }
            assert_eq!(covered.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn par_slices_and_parts_partition_by_participant() {
        let rt = ParallelRuntime {
            threads: 3,
            pool: Arc::new(Mutex::new(None)),
        };
        let mut data = vec![0usize; 100];
        rt.par_slices(&mut data, |range, sub| {
            for (offset, v) in sub.iter_mut().enumerate() {
                *v = range.start + offset;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
        let covered = AtomicUsize::new(0);
        rt.par_parts(10, |range| {
            covered.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(covered.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn par_chunk_map_reduction_is_thread_count_independent() {
        let n = 7 * MIN_CHUNK_ITEMS + 3;
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut reference: Option<f64> = None;
        for threads in [1usize, 2, 4, 8] {
            let rt = ParallelRuntime {
                threads,
                pool: Arc::new(Mutex::new(None)),
            };
            let mut slots = Vec::new();
            rt.par_chunk_map(n, &mut slots, 0.0f64, |_c, range| {
                values[range].iter().sum::<f64>()
            });
            let total: f64 = slots.iter().sum();
            match reference {
                None => reference = Some(total),
                Some(r) => assert_eq!(
                    r.to_bits(),
                    total.to_bits(),
                    "chunked reduction differs at {threads} threads"
                ),
            }
        }
    }

    #[test]
    fn par_for_hands_each_participant_its_own_scratch() {
        let rt = ParallelRuntime {
            threads: 4,
            pool: Arc::new(Mutex::new(None)),
        };
        let n = 8 * MIN_CHUNK_ITEMS;
        let mut scratch = vec![0usize; rt.threads()];
        rt.par_for(n, &mut scratch, |_c, range, items| {
            *items += range.len();
        });
        let total: usize = scratch.iter().sum();
        assert_eq!(total, n);
    }

    #[test]
    fn serial_runtime_runs_on_the_caller() {
        let rt = ParallelRuntime::serial();
        assert_eq!(rt.threads(), 1);
        let caller = std::thread::current().id();
        rt.par_chunks(100, |_c, _r| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn resolve_threads_maps_zero_to_available_parallelism() {
        // Cannot assert on the env-var path here (tests run concurrently);
        // the CI forced pass exercises it for the whole suite.
        if std::env::var("TERSOFF_THREADS").is_err() {
            assert!(resolve_threads(0) >= 1);
            assert_eq!(resolve_threads(3), 3);
        }
    }
}
