//! Elastic constants and equilibrium lattice properties by finite strain.
//!
//! The driver measures what a materials paper tabulates for a Tersoff
//! parameter set: the equilibrium lattice constant `a₀`, the cohesive energy
//! per atom, and the cubic elastic constants C11/C12/C44. Everything is
//! derived from total energies of small strained supercells:
//!
//! * `a₀`, `E_coh` — parabola refinement of the isotropic energy-volume
//!   curve,
//! * C11 — uniaxial strain `ε_xx = ±δ` on the cubic cell:
//!   `E₊ + E₋ − 2E₀ = C11 · δ² · V`,
//! * C12 — biaxial strain `ε_xx = ε_yy = ±δ`:
//!   `E₊ + E₋ − 2E₀ = 2(C11 + C12) · δ² · V`,
//! * C44 — uniaxial strain on the rotated [110] cell
//!   ([`LatticeKind::Diamond110`]), whose effective uniaxial modulus is
//!   `C11' = (C11 + C12 + 2·C44)/2`; the simulation box stays orthogonal.
//!
//! Cube-axis strains of the diamond structure leave the two sub-lattices
//! fixed by symmetry, but a [110] strain couples to the internal degree of
//! freedom (the Kleinman displacement), so the C44 cells are relaxed with
//! the [`minimize`] FIRE minimizer before their energies are differenced —
//! skipping that step overestimates C44 by roughly 2× for silicon.
//!
//! Every energy evaluation is an independent [`JobSpec`] submitted to a
//! [`JobEngine`], so the strained replicas of one measurement run as
//! parallel jobs.

use crate::atom::AtomData;
use crate::jobs::{JobEngine, JobOutcome, JobSpec};
use crate::lattice::{Lattice, LatticeKind};
use crate::neighbor::{NeighborList, NeighborSettings};
use crate::potential::{ComputeOutput, Potential};
use crate::simbox::SimBox;
use crate::units;
use std::sync::Arc;

/// Neighbor-list skin used by every static evaluation (Å).
const SKIN: f64 = 0.5;

/// Knobs of the finite-strain measurement.
#[derive(Copy, Clone, Debug)]
pub struct ElasticSettings {
    /// Strain amplitude δ for the second-difference quotients.
    pub strain: f64,
    /// FIRE iteration cap for the relaxed (C44) cells; 0 disables
    /// relaxation entirely.
    pub minimize_steps: u64,
}

impl Default for ElasticSettings {
    fn default() -> Self {
        ElasticSettings {
            strain: 5e-3,
            minimize_steps: 1000,
        }
    }
}

/// Result of [`measure_cubic`].
#[derive(Copy, Clone, Debug)]
pub struct ElasticReport {
    /// Equilibrium conventional-cell lattice constant (Å).
    pub lattice_a: f64,
    /// Cohesive energy per atom at `a₀` (eV, negative for a bound crystal).
    pub cohesive_ev: f64,
    /// C11 (GPa). `None` for random alloys (see [`measure_cubic`]).
    pub c11_gpa: Option<f64>,
    /// C12 (GPa). `None` for random alloys.
    pub c12_gpa: Option<f64>,
    /// C44, internally relaxed (GPa). `None` for random alloys.
    pub c44_gpa: Option<f64>,
    /// Total strained-cell energy evaluations submitted as jobs.
    pub energy_evals: u64,
}

/// Convergence summary of one [`minimize`] call.
#[derive(Copy, Clone, Debug)]
pub struct MinimizeResult {
    /// Potential energy after the final step (eV).
    pub energy: f64,
    /// Largest force component after the final step (eV/Å).
    pub max_force: f64,
    /// FIRE iterations actually performed.
    pub steps: u64,
}

/// FIRE relaxation of atom positions at fixed cell. Unit-mass dynamics: the
/// positions follow the force field with an adaptive timestep and velocity
/// mixing, which is all a static relaxation needs — no physical masses, no
/// thermostat. Rebuilds the neighbor list whenever the skin criterion
/// triggers. Returns after `max_steps` iterations or once every force
/// component is below `ftol`.
pub fn minimize(
    potential: &mut dyn Potential,
    sim_box: &SimBox,
    atoms: &mut AtomData,
    max_steps: u64,
    ftol: f64,
) -> MinimizeResult {
    let settings = NeighborSettings::new(potential.cutoff(), SKIN);
    let mut list = NeighborList::build_binned(atoms, sim_box, settings);
    let mut out = ComputeOutput::zeros(atoms.n_total());
    let n = atoms.n_local;
    let mut vel = vec![[0.0f64; 3]; n];

    // Standard FIRE parameters; dt is in arbitrary (unit-mass) time units.
    let mut dt = 0.05;
    let dt_max = 0.2;
    let mut alpha = 0.1;
    let mut steps_since_downhill = 0u32;
    // Cap the per-step displacement so an aggressive dt cannot tunnel atoms
    // through each other on a stiff potential.
    let d_max = 0.05;

    let mut steps = 0;
    for _ in 0..max_steps {
        potential.compute(atoms, sim_box, &list, &mut out);
        if out.max_force_component() < ftol {
            break;
        }
        steps += 1;

        let mut power = 0.0;
        let mut v_norm_sq = 0.0;
        let mut f_norm_sq = 0.0;
        for i in 0..n {
            for d in 0..3 {
                vel[i][d] += out.forces[i][d] * dt;
                power += out.forces[i][d] * vel[i][d];
                v_norm_sq += vel[i][d] * vel[i][d];
                f_norm_sq += out.forces[i][d] * out.forces[i][d];
            }
        }
        if power > 0.0 {
            let mix = alpha * (v_norm_sq / f_norm_sq.max(1e-300)).sqrt();
            for i in 0..n {
                for d in 0..3 {
                    vel[i][d] = (1.0 - alpha) * vel[i][d] + mix * out.forces[i][d];
                }
            }
            steps_since_downhill += 1;
            if steps_since_downhill > 5 {
                dt = (dt * 1.1).min(dt_max);
                alpha *= 0.99;
            }
        } else {
            vel.iter_mut().for_each(|v| *v = [0.0; 3]);
            dt *= 0.5;
            alpha = 0.1;
            steps_since_downhill = 0;
        }
        for i in 0..n {
            let mut pos = atoms.x[i];
            for d in 0..3 {
                pos[d] += (vel[i][d] * dt).clamp(-d_max, d_max);
            }
            atoms.x[i] = sim_box.wrap(pos);
        }
        if list.needs_rebuild(atoms, sim_box) {
            list.rebuild(atoms, sim_box, settings);
        }
    }
    potential.compute(atoms, sim_box, &list, &mut out);
    MinimizeResult {
        energy: out.energy,
        max_force: out.max_force_component(),
        steps,
    }
}

/// Total potential energy of `lattice` with the affine diagonal strain
/// `ε = (strain[0], strain[1], strain[2])` applied to box and positions,
/// optionally FIRE-relaxed. Returns `(energy, n_atoms, strained_volume)`.
pub fn strained_energy(
    potential: &mut dyn Potential,
    lattice: &Lattice,
    strain: [f64; 3],
    minimize_steps: u64,
) -> (f64, usize, f64) {
    let (sim_box, mut atoms) = lattice.build();
    let lengths = sim_box.lengths();
    let hi = [
        lengths[0] * (1.0 + strain[0]),
        lengths[1] * (1.0 + strain[1]),
        lengths[2] * (1.0 + strain[2]),
    ];
    let strained_box = SimBox::orthogonal([0.0; 3], hi);
    for i in 0..atoms.n_local {
        let mut pos = atoms.x[i];
        for d in 0..3 {
            pos[d] *= 1.0 + strain[d];
        }
        atoms.x[i] = strained_box.wrap(pos);
    }
    if minimize_steps > 0 {
        let result = minimize(potential, &strained_box, &mut atoms, minimize_steps, 1e-8);
        return (result.energy, atoms.n_local, strained_box.volume());
    }
    let settings = NeighborSettings::new(potential.cutoff(), SKIN);
    let list = NeighborList::build_binned(&atoms, &strained_box, settings);
    let mut out = ComputeOutput::zeros(atoms.n_total());
    potential.compute(&atoms, &strained_box, &list, &mut out);
    (out.energy, atoms.n_local, strained_box.volume())
}

/// The factory the driver clones into each job: a fresh potential per
/// strained replica (jobs run concurrently, `compute` takes `&mut self`).
pub type PotentialFactory = Arc<dyn Fn() -> Box<dyn Potential> + Send + Sync>;

struct EvalPlan {
    lattice: Lattice,
    strain: [f64; 3],
    minimize_steps: u64,
}

/// Submit one strained-energy evaluation per plan and wait for all of them —
/// the strained replicas of a measurement run as parallel jobs.
fn run_jobs(
    engine: &JobEngine,
    factory: &PotentialFactory,
    name: &str,
    plans: Vec<EvalPlan>,
) -> Result<Vec<(f64, usize, f64)>, String> {
    let mut handles = Vec::with_capacity(plans.len());
    for (k, plan) in plans.into_iter().enumerate() {
        let factory = Arc::clone(factory);
        let spec = JobSpec::new(format!("{name}[{k}]"), move |_ctx| {
            let mut potential = factory();
            strained_energy(
                potential.as_mut(),
                &plan.lattice,
                plan.strain,
                plan.minimize_steps,
            )
        });
        let handle = engine
            .submit(spec)
            .map_err(|e| format!("elastic: submit {name}[{k}] failed: {e:?}"))?;
        handles.push(handle);
    }
    let mut results = Vec::with_capacity(handles.len());
    for handle in handles {
        match handle.wait() {
            JobOutcome::Finished(value) => results.push(value),
            JobOutcome::Faulted(msg) => return Err(format!("elastic: job faulted: {msg}")),
            JobOutcome::Cancelled => return Err("elastic: job cancelled".to_string()),
        }
    }
    Ok(results)
}

/// Smallest cell count per dimension so that every box edge is at least two
/// interaction ranges long (the minimum-image requirement), never below 2.
fn cells_for(cell_lengths: [f64; 3], reach: f64) -> [usize; 3] {
    let mut cells = [2usize; 3];
    for d in 0..3 {
        let need = (2.0 * reach / cell_lengths[d]).ceil() as usize;
        cells[d] = need.max(2);
    }
    cells
}

/// Measure `a₀`, cohesive energy and C11/C12/C44 of a cubic diamond-family
/// crystal described by `lattice` (its `a` is the initial guess; its cell
/// counts are ignored and re-derived from the potential's reach). C44 uses
/// the rotated [110] cell, so the driver requires `LatticeKind::Diamond`.
///
/// Random alloys ([`crate::SpeciesMix`]) get the scan only — every scan cell
/// is FIRE-relaxed (species disorder leaves the ideal sites off-equilibrium)
/// and the elastic constants come back `None`: at these cell sizes one seed
/// of disorder has no well-defined cubic constants.
pub fn measure_cubic(
    engine: &JobEngine,
    factory: PotentialFactory,
    lattice: &Lattice,
    settings: ElasticSettings,
) -> Result<ElasticReport, String> {
    if lattice.kind != LatticeKind::Diamond {
        return Err(format!(
            "elastic: measure_cubic needs a Diamond lattice, got {:?}",
            lattice.kind
        ));
    }
    let alloy = lattice.species_mix.is_some();
    let scan_relax = if alloy { settings.minimize_steps } else { 0 };
    let reach = factory().cutoff() + SKIN;
    let mut evals = 0u64;

    // --- 1. equilibrium lattice constant: three parabola refinements -------
    let mut center = lattice.a;
    let mut width = 0.02 * lattice.a;
    let mut a0 = center;
    for _round in 0..3 {
        let offsets = [-1.0, -0.5, 0.0, 0.5, 1.0];
        let plans = offsets
            .iter()
            .map(|&o| {
                let a = center + o * width;
                EvalPlan {
                    lattice: Lattice {
                        cells: cells_for([a; 3], reach),
                        ..*lattice
                    }
                    .with_a(a),
                    strain: [0.0; 3],
                    minimize_steps: scan_relax,
                }
            })
            .collect();
        let results = run_jobs(engine, &factory, "scan", plans)?;
        evals += 5;
        // Least-squares parabola through the 5 per-atom energies.
        let pts: Vec<(f64, f64)> = offsets
            .iter()
            .zip(&results)
            .map(|(&o, &(e, n, _))| (center + o * width, e / n as f64))
            .collect();
        a0 = parabola_minimum(&pts).clamp(center - width, center + width);
        center = a0;
        width /= 5.0;
    }

    // --- 2. reference cells, strained replicas ------------------------------
    let cubic = Lattice {
        cells: cells_for([a0; 3], reach),
        ..*lattice
    }
    .with_a(a0);
    if alloy {
        let plans = vec![EvalPlan {
            lattice: cubic,
            strain: [0.0; 3],
            minimize_steps: scan_relax,
        }];
        let r = run_jobs(engine, &factory, "cohesive", plans)?;
        evals += 1;
        let (e0, n0, _) = r[0];
        return Ok(ElasticReport {
            lattice_a: a0,
            cohesive_ev: e0 / n0 as f64,
            c11_gpa: None,
            c12_gpa: None,
            c44_gpa: None,
            energy_evals: evals,
        });
    }
    let rot = Lattice::diamond_110(a0, [1, 1, 1]);
    let rot = Lattice {
        cells: cells_for(rot.cell_lengths(), reach),
        ..rot
    };
    let d = settings.strain;
    let relax = settings.minimize_steps;
    let plans = vec![
        EvalPlan {
            lattice: cubic,
            strain: [0.0; 3],
            minimize_steps: 0,
        }, // 0: E0
        EvalPlan {
            lattice: cubic,
            strain: [d, 0.0, 0.0],
            minimize_steps: 0,
        }, // 1: C11 +
        EvalPlan {
            lattice: cubic,
            strain: [-d, 0.0, 0.0],
            minimize_steps: 0,
        }, // 2: C11 −
        EvalPlan {
            lattice: cubic,
            strain: [d, d, 0.0],
            minimize_steps: 0,
        }, // 3: C12 +
        EvalPlan {
            lattice: cubic,
            strain: [-d, -d, 0.0],
            minimize_steps: 0,
        }, // 4: C12 −
        EvalPlan {
            lattice: rot,
            strain: [0.0; 3],
            minimize_steps: relax,
        }, // 5: E0 (110)
        EvalPlan {
            lattice: rot,
            strain: [d, 0.0, 0.0],
            minimize_steps: relax,
        }, // 6: C44 +
        EvalPlan {
            lattice: rot,
            strain: [-d, 0.0, 0.0],
            minimize_steps: relax,
        }, // 7: C44 −
    ];
    let r = run_jobs(engine, &factory, "strain", plans)?;
    evals += r.len() as u64;

    let (e0, n0, v0) = r[0];
    let d2 = d * d;
    // Second differences in eV/Å³, converted to GPa.
    let c11 = (r[1].0 + r[2].0 - 2.0 * e0) / (d2 * v0) * units::EV_A3_TO_GPA;
    let c11_plus_c12 = (r[3].0 + r[4].0 - 2.0 * e0) / (2.0 * d2 * v0) * units::EV_A3_TO_GPA;
    let c12 = c11_plus_c12 - c11;
    let (e0r, _, v0r) = r[5];
    let c11_110 = (r[6].0 + r[7].0 - 2.0 * e0r) / (d2 * v0r) * units::EV_A3_TO_GPA;
    // C11' of the rotated cell = (C11 + C12 + 2·C44) / 2.
    let c44 = c11_110 - (c11 + c12) / 2.0;

    Ok(ElasticReport {
        lattice_a: a0,
        cohesive_ev: e0 / n0 as f64,
        c11_gpa: Some(c11),
        c12_gpa: Some(c12),
        c44_gpa: Some(c44),
        energy_evals: evals,
    })
}

/// Vertex abscissa of the least-squares parabola through `pts`; falls back
/// to the lowest-energy point when the fit is degenerate or non-convex.
fn parabola_minimum(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    // Center x for conditioning.
    let x_mean = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
    let (mut sy, mut sxy, mut sx2y) = (0.0, 0.0, 0.0);
    for &(x, y) in pts {
        let u = x - x_mean;
        let u2 = u * u;
        s1 += u;
        s2 += u2;
        s3 += u2 * u;
        s4 += u2 * u2;
        sy += y;
        sxy += u * y;
        sx2y += u2 * y;
    }
    // Normal equations for y = a·u² + b·u + c.
    let det = s4 * (s2 * n - s1 * s1) - s3 * (s3 * n - s1 * s2) + s2 * (s3 * s1 - s2 * s2);
    let fallback = pts
        .iter()
        .fold(pts[0], |best, &p| if p.1 < best.1 { p } else { best })
        .0;
    if det.abs() < 1e-300 {
        return fallback;
    }
    let a =
        (sx2y * (s2 * n - s1 * s1) - s3 * (sxy * n - s1 * sy) + s2 * (sxy * s1 - s2 * sy)) / det;
    let b =
        (s4 * (sxy * n - s1 * sy) - sx2y * (s3 * n - s1 * s2) + s2 * (s3 * sy - s2 * sxy)) / det;
    if a <= 0.0 {
        return fallback;
    }
    x_mean - b / (2.0 * a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair_lj::LennardJones;

    #[test]
    fn parabola_fit_recovers_the_vertex() {
        // y = 3(x − 1.2)² + 0.5 sampled away from the vertex.
        let pts: Vec<(f64, f64)> = [-1.0, 0.0, 0.5, 2.0, 3.0]
            .iter()
            .map(|&x| (x, 3.0 * (x - 1.2f64).powi(2) + 0.5))
            .collect();
        assert!((parabola_minimum(&pts) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn parabola_fit_falls_back_on_concave_data() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, -2.0)];
        assert_eq!(parabola_minimum(&pts), 3.0);
    }

    #[test]
    fn minimize_relaxes_a_stretched_dimer() {
        // Two LJ atoms placed off the minimum must relax to r_min = 2^(1/6)σ.
        let sim_box = SimBox::cubic(50.0);
        let mut atoms = AtomData::new();
        atoms.push_local([20.0, 20.0, 20.0], [0.0; 3], 0, 1);
        atoms.push_local([21.4, 20.0, 20.0], [0.0; 3], 0, 2);
        let mut lj = LennardJones::new(0.8, 1.0, 5.0);
        let result = minimize(&mut lj, &sim_box, &mut atoms, 2000, 1e-9);
        assert!(
            result.max_force < 1e-9,
            "residual force {}",
            result.max_force
        );
        let r = sim_box.min_image(atoms.x[0], atoms.x[1]);
        let dist = (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt();
        assert!((dist - 2.0f64.powf(1.0 / 6.0)).abs() < 1e-6, "r = {dist}");
        assert!((result.energy - (-0.8)).abs() < 1e-3);
    }

    #[test]
    fn strained_energy_scales_the_box() {
        let lattice = Lattice::silicon([2, 2, 2]);
        let mut lj = LennardJones::new(0.1, 2.0, 5.0);
        let (_, n, v) = strained_energy(&mut lj, &lattice, [0.01, 0.0, 0.0], 0);
        assert_eq!(n, 64);
        let v0 = lattice.simbox().volume();
        assert!((v - v0 * 1.01).abs() < 1e-6);
    }

    #[test]
    fn cells_for_respects_minimum_image() {
        let cells = cells_for([5.431; 3], 3.5);
        assert_eq!(cells, [2, 2, 2]);
        let cells = cells_for([2.5, 5.0, 10.0], 3.5);
        assert_eq!(cells, [3, 2, 2]);
    }
}
