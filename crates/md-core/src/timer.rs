//! LAMMPS-style stage timers.
//!
//! The paper's primary metric is "simulated time over run time" with all
//! stages included except initialization — force (pair) computation, neighbor
//! list builds, communication, and time integration ("other"). [`Timers`]
//! accumulates wall-clock time per stage and computes the same breakdown that
//! LAMMPS prints at the end of a run and that the paper quotes when it notes
//! the communication layer takes "between 5% and 30% of the execution time".

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Simulation stages that are timed separately.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Force computation (the "pair" time in LAMMPS output).
    Force,
    /// Neighbor-list construction.
    Neighbor,
    /// Communication: ghost exchange, force reverse communication, packing.
    Comm,
    /// Atom migration between ranks of a decomposed run (ownership
    /// transfers at re-neighboring; always zero for single-domain runs).
    Migrate,
    /// Velocity-Verlet time integration (position/velocity updates).
    Integrate,
    /// Everything else (rebuild checks, thermo sampling, bookkeeping).
    Other,
}

impl Stage {
    /// All stages, in reporting order.
    pub const ALL: [Stage; 6] = [
        Stage::Force,
        Stage::Neighbor,
        Stage::Comm,
        Stage::Migrate,
        Stage::Integrate,
        Stage::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Force => "force",
            Stage::Neighbor => "neighbor",
            Stage::Comm => "comm",
            Stage::Migrate => "migrate",
            Stage::Integrate => "integrate",
            Stage::Other => "other",
        }
    }
}

/// Accumulated wall-clock time per stage.
#[derive(Clone, Debug, Default)]
pub struct Timers {
    accum: [Duration; 6],
}

impl Timers {
    /// New, zeroed timer set.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(stage: Stage) -> usize {
        match stage {
            Stage::Force => 0,
            Stage::Neighbor => 1,
            Stage::Comm => 2,
            Stage::Migrate => 3,
            Stage::Integrate => 4,
            Stage::Other => 5,
        }
    }

    /// Time a closure and charge its duration to `stage`, returning its
    /// result.
    pub fn time<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.accum[Self::slot(stage)] += start.elapsed();
        r
    }

    /// Add an externally measured duration to a stage.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.accum[Self::slot(stage)] += d;
    }

    /// Accumulated time for one stage, in seconds.
    pub fn seconds(&self, stage: Stage) -> f64 {
        self.accum[Self::slot(stage)].as_secs_f64()
    }

    /// Total accumulated time over all stages, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.accum.iter().map(|d| d.as_secs_f64()).sum()
    }

    /// Fraction of the total spent in one stage (0 if nothing was recorded).
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total_seconds();
        if total <= 0.0 {
            0.0
        } else {
            self.seconds(stage) / total
        }
    }

    /// Merge another timer set into this one (used when aggregating the
    /// per-rank timers of a decomposed run).
    pub fn merge(&mut self, other: &Timers) {
        for i in 0..self.accum.len() {
            self.accum[i] += other.accum[i];
        }
    }

    /// A formatted breakdown table.
    pub fn report(&self) -> String {
        let mut s = String::new();
        for stage in Stage::ALL {
            s.push_str(&format!(
                "{:<9} {:>10.4} s  ({:>5.1}%)\n",
                stage.name(),
                self.seconds(stage),
                100.0 * self.fraction(stage)
            ));
        }
        s.push_str(&format!(
            "{:<9} {:>10.4} s\n",
            "total",
            self.total_seconds()
        ));
        s
    }

    /// Reset all stages to zero.
    pub fn reset(&mut self) {
        self.accum = [Duration::ZERO; 6];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_charges_the_right_stage() {
        let mut t = Timers::new();
        let v = t.time(Stage::Force, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.seconds(Stage::Force) >= 0.004);
        assert_eq!(t.seconds(Stage::Comm), 0.0);
    }

    #[test]
    fn add_and_fractions() {
        let mut t = Timers::new();
        t.add(Stage::Force, Duration::from_millis(75));
        t.add(Stage::Comm, Duration::from_millis(25));
        assert!((t.fraction(Stage::Force) - 0.75).abs() < 1e-9);
        assert!((t.fraction(Stage::Comm) - 0.25).abs() < 1e-9);
        assert!((t.total_seconds() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_timers_report_zero_fractions() {
        let t = Timers::new();
        assert_eq!(t.fraction(Stage::Force), 0.0);
        assert_eq!(t.total_seconds(), 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Timers::new();
        let mut b = Timers::new();
        a.add(Stage::Neighbor, Duration::from_millis(10));
        b.add(Stage::Neighbor, Duration::from_millis(30));
        b.add(Stage::Other, Duration::from_millis(10));
        a.merge(&b);
        assert!((a.seconds(Stage::Neighbor) - 0.04).abs() < 1e-9);
        assert!((a.seconds(Stage::Other) - 0.01).abs() < 1e-9);
        a.reset();
        assert_eq!(a.total_seconds(), 0.0);
    }

    #[test]
    fn report_contains_all_stages() {
        let mut t = Timers::new();
        t.add(Stage::Force, Duration::from_millis(1));
        let r = t.report();
        for stage in Stage::ALL {
            assert!(r.contains(stage.name()));
        }
        assert!(r.contains("total"));
    }
}
