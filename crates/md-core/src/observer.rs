//! Run observers: the hooks the simulation loop drives.
//!
//! The original driver hard-coded its outputs — a thermo-history `Vec`, an
//! energy-drift tracker and the timer report all lived as fields on
//! [`crate::simulation::Simulation`]. The observer layer turns each of them
//! into a pluggable component: an [`Observer`] registers interest in the
//! events of a run (steps, thermo samples, neighbor rebuilds, run
//! completion) and the loop calls back into it. Built-in observers cover the
//! old behaviour ([`ThermoLog`], [`EnergyDrift`]) plus console reporting
//! ([`ThermoPrinter`], [`TimingPrinter`]); downstream code can implement the
//! trait for trajectory writers, custom diagnostics, steering, ...
//!
//! Observer dispatch is allocation-free: the hooks receive borrowed context
//! structs, so a steady-state step with passive observers performs zero heap
//! allocations (audited by `tests/alloc_free.rs`).

use crate::atom::AtomData;
use crate::neighbor::NeighborList;
use crate::simbox::SimBox;
use crate::thermo::{EnergyDriftTracker, ThermoState};
use crate::timer::Timers;
use crate::units;
use std::any::Any;

/// What a call to [`crate::simulation::Simulation::run`] is about to do.
/// Passed to [`Observer::on_run_start`] so observers can size buffers.
#[derive(Copy, Clone, Debug)]
pub struct RunPlan {
    /// Step counter value before the run starts.
    pub first_step: u64,
    /// Number of steps the run will advance.
    pub n_steps: u64,
    /// Thermo sampling interval (0 = only the final state).
    pub thermo_every: u64,
    /// Timestep in ps.
    pub timestep: f64,
}

impl RunPlan {
    /// Upper bound on the number of thermo samples this run will produce.
    pub fn expected_samples(&self) -> usize {
        match self.n_steps.checked_div(self.thermo_every) {
            None => 1, // thermo_every == 0: only the final state
            Some(n) => n as usize + 1,
        }
    }
}

/// Per-step context passed to [`Observer::on_step`] (borrowed, so the hook
/// cannot outlive the step and the dispatch never allocates).
pub struct StepContext<'a> {
    /// Step index that was just completed.
    pub step: u64,
    /// Atom data after the step.
    pub atoms: &'a AtomData,
    /// The periodic box.
    pub sim_box: &'a SimBox,
    /// Per-type masses (g/mol).
    pub masses: &'a [f64],
    /// The current neighbor list (its `reference_x` snapshot is what a
    /// checkpoint needs for bitwise-identical resume).
    pub neighbors: &'a NeighborList,
    /// Neighbor-list rebuilds performed so far (whole simulation).
    pub n_rebuilds: u64,
    /// Total potential energy of the step's force computation (eV).
    pub potential_energy: f64,
    /// Scalar virial of the step's force computation (eV) — the trace
    /// channel the pressure flows from.
    pub virial: f64,
    /// Per-interaction virial tensor of the step in Voigt order
    /// `[xx, yy, zz, xy, xz, yz]` (eV) — what the
    /// [`crate::properties::StressTensor`] observer consumes.
    pub virial_tensor: &'a [f64; 6],
}

/// A condition an observer detected that must abort the run — what
/// [`Observer::fault`] reports and the loop turns into
/// [`crate::simulation::RunError::Diverged`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFault {
    /// The step at which the condition was detected.
    pub step: u64,
    /// Deterministic human-readable description (identical across thread
    /// counts and backends, because the state it derives from is bitwise
    /// identical across them).
    pub reason: String,
}

/// How a run ended — recorded on every [`RunReport`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum RunStatus {
    /// The run completed every requested step.
    #[default]
    Completed,
    /// An observer fault (e.g. a [`crate::health::HealthGuard`] violation)
    /// aborted the run at `step`.
    Diverged {
        /// The step the abort was triggered at.
        step: u64,
        /// The fault's deterministic description.
        reason: String,
    },
}

impl RunStatus {
    /// True when the run completed every requested step.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// Summary of one [`crate::simulation::Simulation::run`] call — what `run`
/// returns and what [`Observer::on_finish`] receives.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Steps advanced by this run call.
    pub steps: u64,
    /// Step counter after the run (cumulative over all run calls).
    pub total_steps: u64,
    /// Neighbor-list rebuilds during this run call.
    pub rebuilds: u64,
    /// Rebuilds over the whole simulation (including the initial build).
    pub total_rebuilds: u64,
    /// Wall-clock seconds spent in this run call.
    pub wall_seconds: f64,
    /// Throughput of this run call in the paper's ns/day metric.
    pub ns_per_day: f64,
    /// Largest |ΔE/E₀| seen over the whole trajectory so far.
    pub max_drift: f64,
    /// Relative energy drift of the most recent thermo sample.
    pub last_drift: f64,
    /// Thermodynamic state at the end of the run.
    pub final_thermo: ThermoState,
    /// Snapshot of the cumulative per-stage timers.
    pub timers: Timers,
    /// How the run ended ([`RunStatus::Completed`], or the recorded abort).
    pub status: RunStatus,
    /// Non-fatal problems observers reported at the end of the run (e.g. an
    /// IO error that silently disarmed a trajectory dump).
    pub warnings: Vec<String>,
}

impl RunReport {
    /// Seconds per timestep of this run call (0 for an empty run).
    pub fn seconds_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.wall_seconds / self.steps as f64
        }
    }
}

/// A hook into the simulation loop. All methods have empty defaults —
/// implement only the events of interest. `as_any`/`as_any_mut` enable
/// retrieval of a concrete observer (and its collected data) back out of the
/// simulation via [`crate::simulation::Simulation::observer`].
pub trait Observer: Any {
    /// A `run` call is starting.
    fn on_run_start(&mut self, _plan: &RunPlan) {}
    /// A timestep just completed (fires every step — keep it cheap).
    fn on_step(&mut self, _ctx: &StepContext<'_>) {}
    /// A thermo sample was taken (per `thermo_every`, plus the initial state
    /// at construction and the final state of each run).
    fn on_thermo(&mut self, _state: &ThermoState) {}
    /// The neighbor list was rebuilt during step `step`.
    fn on_rebuild(&mut self, _step: u64, _n_rebuilds: u64) {}
    /// A `run` call finished.
    fn on_finish(&mut self, _report: &RunReport) {}
    /// Polled by the loop after every step's `on_step` dispatch: return
    /// `Some` to abort the run deterministically — the loop stops, drives
    /// `on_finish`, and `try_run` returns
    /// [`crate::simulation::RunError::Diverged`] with this fault. The
    /// default (`None`) keeps the polling allocation-free.
    fn fault(&self) -> Option<RunFault> {
        None
    }
    /// Polled once when a run ends: non-fatal problems to surface in
    /// [`RunReport::warnings`] (e.g. a dump that disarmed itself on an IO
    /// error). Only called at run end, so implementations may allocate.
    fn warnings(&self) -> Vec<String> {
        Vec::new()
    }
    /// Upcast for concrete-type retrieval.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for concrete-type retrieval.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

// ---------------------------------------------------------------------------
// Built-in observers
// ---------------------------------------------------------------------------

/// Records every thermo sample — the old `Simulation::thermo_history` field
/// as an observer. Installed by default by the builder.
#[derive(Clone, Debug, Default)]
pub struct ThermoLog {
    samples: Vec<ThermoState>,
}

impl ThermoLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the log (useful before an allocation-audited run).
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// All recorded samples, in order.
    pub fn samples(&self) -> &[ThermoState] {
        &self.samples
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<&ThermoState> {
        self.samples.last()
    }

    /// Drop all samples (keeps capacity).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

impl Observer for ThermoLog {
    fn on_run_start(&mut self, plan: &RunPlan) {
        // Pre-size for the samples this run will produce, so pushes inside
        // the loop never reallocate: the steady-state step stays
        // allocation-free without callers reaching in to reserve by hand.
        self.samples.reserve(plan.expected_samples());
    }

    fn on_thermo(&mut self, state: &ThermoState) {
        self.samples.push(*state);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Tracks the relative drift of the total energy — the old `Simulation::
/// drift` field as an observer. Installed by default by the builder; the
/// run loop reads it back to fill [`RunReport::max_drift`].
#[derive(Clone, Debug, Default)]
pub struct EnergyDrift {
    tracker: EnergyDriftTracker,
}

impl EnergyDrift {
    /// Fresh tracker; the first thermo sample becomes the reference energy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest relative drift seen so far.
    pub fn max_relative_drift(&self) -> f64 {
        self.tracker.max_relative_drift()
    }

    /// Relative drift of the most recent sample.
    pub fn last_relative_drift(&self) -> f64 {
        self.tracker.last_relative_drift()
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &EnergyDriftTracker {
        &self.tracker
    }
}

impl Observer for EnergyDrift {
    fn on_thermo(&mut self, state: &ThermoState) {
        self.tracker.record(state.total);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Prints one formatted line per thermo sample (LAMMPS-style console
/// output), with a drift column relative to the first sample it sees.
#[derive(Clone, Debug, Default)]
pub struct ThermoPrinter {
    header_printed: bool,
    tracker: EnergyDriftTracker,
}

impl ThermoPrinter {
    /// New printer; prints its column header before the first sample.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for ThermoPrinter {
    fn on_thermo(&mut self, state: &ThermoState) {
        if !self.header_printed {
            println!(
                "{:>8} {:>12} {:>14} {:>14} {:>12} {:>10}",
                "step", "T (K)", "E_pot (eV)", "E_tot (eV)", "P (bar)", "drift"
            );
            self.header_printed = true;
        }
        self.tracker.record(state.total);
        println!(
            "{:>8} {:>12.2} {:>14.4} {:>14.4} {:>12.1} {:>10.2e}",
            state.step,
            state.temperature,
            state.potential,
            state.total,
            state.pressure,
            self.tracker.last_relative_drift()
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Prints the per-stage timer breakdown and throughput when a run finishes —
/// the old hand-rolled `timers.report()` epilogue as an observer.
#[derive(Clone, Debug, Default)]
pub struct TimingPrinter;

impl TimingPrinter {
    /// New printer.
    pub fn new() -> Self {
        Self
    }
}

impl Observer for TimingPrinter {
    fn on_finish(&mut self, report: &RunReport) {
        println!(
            "run: {} steps, {} rebuilds, {:.3} s wall ({:.3} ns/day)",
            report.steps, report.rebuilds, report.wall_seconds, report.ns_per_day
        );
        print!("{}", report.timers.report());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Convert a run's wall time into ns/day (helper shared with the report
/// assembly in the run loop).
pub fn run_ns_per_day(timestep_ps: f64, steps: u64, wall_seconds: f64) -> f64 {
    if steps == 0 || wall_seconds <= 0.0 {
        return 0.0;
    }
    units::ns_per_day(timestep_ps, wall_seconds / steps as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermo_log_records_samples() {
        let mut log = ThermoLog::new();
        assert!(log.last().is_none());
        let s = ThermoState {
            step: 3,
            total: -1.0,
            ..Default::default()
        };
        log.on_thermo(&s);
        assert_eq!(log.samples().len(), 1);
        assert_eq!(log.last().unwrap().step, 3);
        log.clear();
        assert!(log.samples().is_empty());
    }

    #[test]
    fn energy_drift_observer_tracks_reference() {
        let mut d = EnergyDrift::new();
        for (step, total) in [(0u64, -100.0), (1, -100.001), (2, -99.9)] {
            d.on_thermo(&ThermoState {
                step,
                total,
                ..Default::default()
            });
        }
        assert!((d.max_relative_drift() - 1e-3).abs() < 1e-9);
        assert!(d.tracker().samples() == 3);
    }

    #[test]
    fn run_plan_sample_counts() {
        let plan = RunPlan {
            first_step: 0,
            n_steps: 100,
            thermo_every: 10,
            timestep: 0.001,
        };
        assert_eq!(plan.expected_samples(), 11);
        let sparse = RunPlan {
            thermo_every: 0,
            ..plan
        };
        assert_eq!(sparse.expected_samples(), 1);
    }

    #[test]
    fn ns_per_day_helper_handles_empty_runs() {
        assert_eq!(run_ns_per_day(0.001, 0, 1.0), 0.0);
        assert!(run_ns_per_day(0.001, 10, 1.0) > 0.0);
    }
}
