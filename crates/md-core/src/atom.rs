//! Structure-of-arrays atom storage.
//!
//! Master atom data is always stored in double precision — exactly like
//! LAMMPS. The reduced-precision solvers (Opt-S / Opt-M of the paper) work on
//! *packed* copies of the positions produced by [`AtomData::pack_positions`],
//! which is the role the USER-INTEL package's data-packing step plays.

use serde::{Deserialize, Serialize};

/// Per-atom data in structure-of-arrays layout.
///
/// The first `n_local` entries are atoms owned by this rank/domain; entries
/// beyond that are ghost atoms (copies of atoms owned elsewhere, or periodic
/// images) that only participate as neighbors.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AtomData {
    /// Positions (Å).
    pub x: Vec<[f64; 3]>,
    /// Velocities (Å/ps).
    pub v: Vec<[f64; 3]>,
    /// Forces (eV/Å).
    pub f: Vec<[f64; 3]>,
    /// Atom type index (0-based; indexes into the potential's species table).
    pub type_: Vec<usize>,
    /// Globally unique atom id (stable across ghost copies and migrations).
    pub id: Vec<u64>,
    /// Number of locally owned atoms; the rest are ghosts.
    pub n_local: usize,
}

impl AtomData {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage pre-sized for `n` local atoms.
    pub fn with_capacity(n: usize) -> Self {
        AtomData {
            x: Vec::with_capacity(n),
            v: Vec::with_capacity(n),
            f: Vec::with_capacity(n),
            type_: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
            n_local: 0,
        }
    }

    /// Total number of atoms stored (local + ghost).
    #[inline]
    pub fn n_total(&self) -> usize {
        self.x.len()
    }

    /// Number of ghost atoms.
    #[inline]
    pub fn n_ghost(&self) -> usize {
        self.n_total() - self.n_local
    }

    /// Append one local atom. Must not be called after ghosts were added.
    pub fn push_local(&mut self, x: [f64; 3], v: [f64; 3], type_: usize, id: u64) {
        assert_eq!(
            self.n_local,
            self.n_total(),
            "cannot add local atoms after ghost atoms"
        );
        self.x.push(x);
        self.v.push(v);
        self.f.push([0.0; 3]);
        self.type_.push(type_);
        self.id.push(id);
        self.n_local += 1;
    }

    /// Append one ghost atom (a copy of an atom owned elsewhere).
    pub fn push_ghost(&mut self, x: [f64; 3], type_: usize, id: u64) {
        self.x.push(x);
        self.v.push([0.0; 3]);
        self.f.push([0.0; 3]);
        self.type_.push(type_);
        self.id.push(id);
    }

    /// Remove all ghost atoms (done before every re-neighboring / exchange).
    pub fn clear_ghosts(&mut self) {
        self.x.truncate(self.n_local);
        self.v.truncate(self.n_local);
        self.f.truncate(self.n_local);
        self.type_.truncate(self.n_local);
        self.id.truncate(self.n_local);
    }

    /// Zero all force entries (local and ghost).
    pub fn zero_forces(&mut self) {
        for f in self.f.iter_mut() {
            *f = [0.0; 3];
        }
    }

    /// Pack positions into a flat `[x0, y0, z0, pad, x1, ...]` buffer of the
    /// requested precision with stride 4 (padded for alignment, matching the
    /// layout the USER-INTEL package uses). The packed buffer covers local
    /// *and* ghost atoms because both appear as neighbors.
    pub fn pack_positions<T: vektor_real_shim::RealLike>(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.n_total() * 4);
        for p in &self.x {
            out.push(T::from_f64(p[0]));
            out.push(T::from_f64(p[1]));
            out.push(T::from_f64(p[2]));
            out.push(T::from_f64(0.0));
        }
        out
    }

    /// Pack atom types into a flat buffer (stride 1), parallel to
    /// [`AtomData::pack_positions`].
    pub fn pack_types(&self) -> Vec<usize> {
        self.type_.clone()
    }

    /// Net momentum (mass-weighted velocity sum) of the local atoms, given a
    /// per-type mass table.
    pub fn net_momentum(&self, masses: &[f64]) -> [f64; 3] {
        let mut p = [0.0; 3];
        for i in 0..self.n_local {
            let m = masses[self.type_[i]];
            for d in 0..3 {
                p[d] += m * self.v[i][d];
            }
        }
        p
    }
}

/// A tiny local shim so `md-core` does not need to depend on `vektor` just to
/// express "a float type convertible from f64" for the packing helpers.
/// `tersoff` converts freely between this and `vektor::Real` because both are
/// implemented for exactly `f32` and `f64`.
pub mod vektor_real_shim {
    /// A float type the packing helpers can convert into.
    pub trait RealLike: Copy {
        /// Convert from `f64` (possibly rounding).
        fn from_f64(x: f64) -> Self;
        /// Convert back to `f64`.
        fn to_f64(self) -> f64;
    }
    impl RealLike for f32 {
        fn from_f64(x: f64) -> Self {
            x as f32
        }
        fn to_f64(self) -> f64 {
            self as f64
        }
    }
    impl RealLike for f64 {
        fn from_f64(x: f64) -> Self {
            x
        }
        fn to_f64(self) -> f64 {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AtomData {
        let mut a = AtomData::new();
        a.push_local([0.0, 0.0, 0.0], [1.0, 0.0, 0.0], 0, 1);
        a.push_local([1.0, 2.0, 3.0], [0.0, -1.0, 0.0], 1, 2);
        a.push_ghost([9.0, 9.0, 9.0], 0, 1);
        a
    }

    #[test]
    fn counts_track_local_and_ghost() {
        let a = sample();
        assert_eq!(a.n_local, 2);
        assert_eq!(a.n_total(), 3);
        assert_eq!(a.n_ghost(), 1);
    }

    #[test]
    fn clear_ghosts_keeps_locals() {
        let mut a = sample();
        a.clear_ghosts();
        assert_eq!(a.n_total(), 2);
        assert_eq!(a.n_ghost(), 0);
        assert_eq!(a.id, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot add local atoms after ghost")]
    fn push_local_after_ghost_panics() {
        let mut a = sample();
        a.push_local([0.0; 3], [0.0; 3], 0, 3);
    }

    #[test]
    fn zero_forces_resets_everything() {
        let mut a = sample();
        a.f[0] = [1.0, 2.0, 3.0];
        a.f[2] = [4.0, 5.0, 6.0];
        a.zero_forces();
        assert!(a.f.iter().all(|f| *f == [0.0; 3]));
    }

    #[test]
    fn pack_positions_pads_and_converts() {
        let a = sample();
        let packed: Vec<f32> = a.pack_positions();
        assert_eq!(packed.len(), 12);
        assert_eq!(&packed[4..8], &[1.0, 2.0, 3.0, 0.0]);
        let packed_d: Vec<f64> = a.pack_positions();
        assert_eq!(packed_d[8], 9.0);
    }

    #[test]
    fn net_momentum_weighs_by_mass() {
        let a = sample();
        let p = a.net_momentum(&[2.0, 4.0]);
        // atom0: m=2, v=(1,0,0) ; atom1: m=4, v=(0,-1,0); ghost ignored.
        assert_eq!(p, [2.0, -4.0, 0.0]);
    }
}
