//! Maxwell–Boltzmann velocity initialization.
//!
//! Velocities are drawn from the Gaussian distribution for the requested
//! temperature, the center-of-mass drift is removed, and the result is
//! rescaled so the instantaneous temperature matches the target exactly —
//! the same procedure as LAMMPS' `velocity ... create`.

use crate::atom::AtomData;
use crate::units;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Draw one standard-normal variate via the Box–Muller transform (keeps the
/// dependency set to the plain `rand` crate).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Initialize velocities of all local atoms to the target temperature (K).
///
/// `masses` maps atom type → mass (g/mol). Deterministic in `seed`.
pub fn init_velocities(atoms: &mut AtomData, masses: &[f64], temperature: f64, seed: u64) {
    assert!(temperature >= 0.0, "temperature must be non-negative");
    let n = atoms.n_local;
    if n == 0 {
        return;
    }
    if temperature == 0.0 {
        for v in atoms.v.iter_mut().take(n) {
            *v = [0.0; 3];
        }
        return;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..n {
        let m = masses[atoms.type_[i]];
        // σ² = kB T / (mvv2e · m) in (Å/ps)².
        let sigma = (units::BOLTZMANN * temperature / (units::MVV2E * m)).sqrt();
        for d in 0..3 {
            atoms.v[i][d] = sigma * standard_normal(&mut rng);
        }
    }

    remove_center_of_mass_drift(atoms, masses);
    rescale_to_temperature(atoms, masses, temperature);
}

/// Subtract the center-of-mass velocity from every local atom.
pub fn remove_center_of_mass_drift(atoms: &mut AtomData, masses: &[f64]) {
    let n = atoms.n_local;
    if n == 0 {
        return;
    }
    let mut p = [0.0f64; 3];
    let mut total_mass = 0.0;
    for i in 0..n {
        let m = masses[atoms.type_[i]];
        total_mass += m;
        for d in 0..3 {
            p[d] += m * atoms.v[i][d];
        }
    }
    for i in 0..n {
        for d in 0..3 {
            atoms.v[i][d] -= p[d] / total_mass;
        }
    }
}

/// Total kinetic energy (eV) of the local atoms.
pub fn kinetic_energy(atoms: &AtomData, masses: &[f64]) -> f64 {
    (0..atoms.n_local)
        .map(|i| units::kinetic_energy(masses[atoms.type_[i]], atoms.v[i]))
        .sum()
}

/// [`kinetic_energy`] as a deterministic chunked reduction on the shared
/// [`ParallelRuntime`]: per-chunk partial sums (chunk boundaries fixed by
/// the atom count) are folded in ascending chunk order, so the result is
/// bitwise identical for every thread count. `slots` is caller-owned
/// reduction scratch, reused across calls so the steady state allocates
/// nothing.
pub fn kinetic_energy_on(
    atoms: &AtomData,
    masses: &[f64],
    runtime: &crate::runtime::ParallelRuntime,
    slots: &mut Vec<f64>,
) -> f64 {
    runtime.par_chunk_map(atoms.n_local, slots, 0.0, |_c, range| {
        range
            .map(|i| units::kinetic_energy(masses[atoms.type_[i]], atoms.v[i]))
            .sum()
    });
    slots.iter().sum()
}

/// Instantaneous temperature (K) of the local atoms.
pub fn current_temperature(atoms: &AtomData, masses: &[f64]) -> f64 {
    units::temperature(kinetic_energy(atoms, masses), atoms.n_local)
}

/// Rescale all velocities so the instantaneous temperature equals `target`.
pub fn rescale_to_temperature(atoms: &mut AtomData, masses: &[f64], target: f64) {
    let current = current_temperature(atoms, masses);
    if current <= 0.0 {
        return;
    }
    let scale = (target / current).sqrt();
    for v in atoms.v.iter_mut().take(atoms.n_local) {
        for d in 0..3 {
            v[d] *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    fn si_atoms() -> AtomData {
        Lattice::silicon([3, 3, 3]).build().1
    }

    #[test]
    fn init_hits_target_temperature_exactly() {
        let mut atoms = si_atoms();
        let masses = [units::mass::SI];
        init_velocities(&mut atoms, &masses, 1000.0, 1234);
        let t = current_temperature(&atoms, &masses);
        assert!((t - 1000.0).abs() < 1e-9, "T = {t}");
    }

    #[test]
    fn init_removes_momentum() {
        let mut atoms = si_atoms();
        let masses = [units::mass::SI];
        init_velocities(&mut atoms, &masses, 500.0, 7);
        let p = atoms.net_momentum(&masses);
        for d in 0..3 {
            assert!(p[d].abs() < 1e-9, "net momentum {p:?}");
        }
    }

    #[test]
    fn zero_temperature_means_zero_velocities() {
        let mut atoms = si_atoms();
        init_velocities(&mut atoms, &[units::mass::SI], 0.0, 3);
        assert!(atoms.v.iter().all(|v| *v == [0.0; 3]));
        assert_eq!(current_temperature(&atoms, &[units::mass::SI]), 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let masses = [units::mass::SI];
        let mut a = si_atoms();
        let mut b = si_atoms();
        init_velocities(&mut a, &masses, 300.0, 42);
        init_velocities(&mut b, &masses, 300.0, 42);
        assert_eq!(a.v, b.v);
        let mut c = si_atoms();
        init_velocities(&mut c, &masses, 300.0, 43);
        assert_ne!(a.v, c.v);
    }

    #[test]
    fn multispecies_masses_are_respected() {
        let (_, mut atoms) = Lattice::silicon_carbide([2, 2, 2]).build();
        let masses = [units::mass::SI, units::mass::C];
        init_velocities(&mut atoms, &masses, 800.0, 9);
        assert!((current_temperature(&atoms, &masses) - 800.0).abs() < 1e-9);
        // Lighter carbon atoms should move faster on average.
        let mean_speed = |t: usize| {
            let (sum, count) = (0..atoms.n_local)
                .filter(|&i| atoms.type_[i] == t)
                .map(|i| {
                    let v = atoms.v[i];
                    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
                })
                .fold((0.0, 0usize), |(s, c), x| (s + x, c + 1));
            sum / count as f64
        };
        assert!(mean_speed(1) > mean_speed(0));
    }

    #[test]
    fn rescale_is_noop_for_static_atoms() {
        let mut atoms = si_atoms();
        rescale_to_temperature(&mut atoms, &[units::mass::SI], 300.0);
        assert!(atoms.v.iter().all(|v| *v == [0.0; 3]));
    }
}
