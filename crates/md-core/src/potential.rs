//! The interface force fields implement.
//!
//! A [`Potential`] consumes the current atom data and a full neighbor list
//! and produces forces, the total potential energy, and the scalar virial.
//! Both the Lennard-Jones baseline ([`crate::pair_lj`]) and every Tersoff
//! variant in the `tersoff` crate implement this trait, which is what lets
//! the simulation driver, the examples and the benchmark harness treat
//! `Ref`, `Opt-D`, `Opt-S` and `Opt-M` uniformly.

use crate::atom::AtomData;
use crate::neighbor::NeighborList;
use crate::runtime::ParallelRuntime;
use crate::simbox::SimBox;

/// The (row, column) index pairs of the Voigt components
/// `[xx, yy, zz, xy, xz, yz]` — the layout of
/// [`ComputeOutput::virial_tensor`]. Shared by every kernel that tallies the
/// tensor so the component order can never drift between implementations.
pub const VOIGT: [(usize, usize); 6] = [(0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)];

/// Output of one force computation.
#[derive(Clone, Debug, Default)]
pub struct ComputeOutput {
    /// Per-atom forces (eV/Å), indexed like the atom arrays (local + ghost;
    /// ghost entries hold partial forces that the decomposition folds back
    /// onto the owning rank).
    pub forces: Vec<[f64; 3]>,
    /// Total potential energy of the locally owned atoms (eV).
    pub energy: f64,
    /// Scalar virial Σ r·f over the interactions computed here (eV), used
    /// for the pressure. This is the **trace channel** of
    /// [`ComputeOutput::virial_tensor`]: kernels accumulate it per
    /// interaction as the fused dot product `del·f` (the historical scalar
    /// path), which keeps its floating-point summation order — and therefore
    /// its bits — independent of the tensor promotion.
    pub virial: f64,
    /// Per-interaction virial tensor `W_ab = Σ del_a · f_b` in Voigt order
    /// `[xx, yy, zz, xy, xz, yz]` (eV). The diagonal agrees with
    /// [`ComputeOutput::virial`] up to floating-point reassociation (the
    /// scalar folds each interaction's three products before accumulating;
    /// the tensor accumulates the components separately).
    pub virial_tensor: [f64; 6],
}

impl ComputeOutput {
    /// Zeroed output sized for `n` atoms.
    pub fn zeros(n: usize) -> Self {
        ComputeOutput {
            forces: vec![[0.0; 3]; n],
            energy: 0.0,
            virial: 0.0,
            virial_tensor: [0.0; 6],
        }
    }

    /// Reset in place, resizing if the atom count changed.
    pub fn reset(&mut self, n: usize) {
        self.forces.clear();
        self.forces.resize(n, [0.0; 3]);
        self.energy = 0.0;
        self.virial = 0.0;
        self.virial_tensor = [0.0; 6];
    }

    /// Sum of the tensor diagonal (Σ W_aa). Equals [`ComputeOutput::virial`]
    /// up to floating-point reassociation; the scalar channel stays the
    /// pressure source so thermo traces are bitwise stable.
    pub fn virial_tensor_trace(&self) -> f64 {
        self.virial_tensor[0] + self.virial_tensor[1] + self.virial_tensor[2]
    }

    /// Largest per-component absolute force difference against another
    /// output (used pervasively by the equivalence tests).
    pub fn max_force_difference(&self, other: &ComputeOutput) -> f64 {
        self.forces
            .iter()
            .zip(other.forces.iter())
            .map(|(a, b)| (0..3).map(|d| (a[d] - b[d]).abs()).fold(0.0f64, f64::max))
            .fold(0.0f64, f64::max)
    }

    /// Net force (must vanish for a translation-invariant potential on a
    /// complete system).
    pub fn net_force(&self) -> [f64; 3] {
        let mut net = [0.0; 3];
        for f in &self.forces {
            for d in 0..3 {
                net[d] += f[d];
            }
        }
        net
    }

    /// Largest absolute force component.
    pub fn max_force_component(&self) -> f64 {
        self.forces
            .iter()
            .flat_map(|f| f.iter())
            .fold(0.0f64, |m, &x| m.max(x.abs()))
    }
}

/// A force field.
pub trait Potential {
    /// Human-readable name (used in benchmark output, e.g. `"tersoff/ref"`).
    fn name(&self) -> String;

    /// Interaction cutoff (Å); the neighbor list must be built with at least
    /// this cutoff (plus skin).
    fn cutoff(&self) -> f64;

    /// Compute forces, energy and virial for the current configuration.
    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    );

    /// The [`ParallelRuntime`] this potential computes on, if it is
    /// thread-parallel (the [`crate::force_engine::ForceEngine`] reports its
    /// runtime here). The simulation builder reuses it for the other phases
    /// of the timestep, so the whole step runs on one worker team.
    fn parallel_runtime(&self) -> Option<ParallelRuntime> {
        None
    }

    /// Re-bind a thread-parallel potential onto (a handle to) `runtime` —
    /// called by [`crate::simulation::SimulationBuilder`] when the builder
    /// owns the runtime. Single-threaded potentials ignore it.
    fn bind_runtime(&mut self, _runtime: &ParallelRuntime) {}

    /// The short name of the vector implementation this potential's kernel
    /// instance executes (`"portable"`, `"avx2"`, `"avx512"`), if the
    /// kernel is backend-dispatched. `None` for potentials without a
    /// dispatched vector path (the reference implementation, LJ). Wrappers
    /// such as the [`crate::force_engine::ForceEngine`] forward the inner
    /// kernel's answer, so reports and tests can ask a built potential
    /// what actually runs.
    fn executed_backend(&self) -> Option<&'static str> {
        None
    }
}

impl Potential for Box<dyn Potential> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn cutoff(&self) -> f64 {
        self.as_ref().cutoff()
    }

    fn compute(
        &mut self,
        atoms: &AtomData,
        sim_box: &SimBox,
        neighbors: &NeighborList,
        out: &mut ComputeOutput,
    ) {
        self.as_mut().compute(atoms, sim_box, neighbors, out);
    }

    fn parallel_runtime(&self) -> Option<ParallelRuntime> {
        self.as_ref().parallel_runtime()
    }

    fn bind_runtime(&mut self, runtime: &ParallelRuntime) {
        self.as_mut().bind_runtime(runtime);
    }

    fn executed_backend(&self) -> Option<&'static str> {
        self.as_ref().executed_backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_reset() {
        let mut o = ComputeOutput::zeros(3);
        assert_eq!(o.forces.len(), 3);
        o.forces[1] = [1.0, 2.0, 3.0];
        o.energy = 5.0;
        o.virial = 2.0;
        o.virial_tensor = [1.0; 6];
        o.reset(5);
        assert_eq!(o.forces.len(), 5);
        assert!(o.forces.iter().all(|f| *f == [0.0; 3]));
        assert_eq!(o.energy, 0.0);
        assert_eq!(o.virial, 0.0);
        assert_eq!(o.virial_tensor, [0.0; 6]);
    }

    #[test]
    fn tensor_trace_sums_the_diagonal() {
        let mut o = ComputeOutput::zeros(1);
        o.virial_tensor = [1.0, 2.0, 4.0, 9.0, 9.0, 9.0];
        assert_eq!(o.virial_tensor_trace(), 7.0);
    }

    #[test]
    fn difference_and_net_force() {
        let mut a = ComputeOutput::zeros(2);
        let mut b = ComputeOutput::zeros(2);
        a.forces[0] = [1.0, 0.0, 0.0];
        a.forces[1] = [-1.0, 0.5, 0.0];
        b.forces[0] = [1.0, 0.0, 0.25];
        assert!((a.max_force_difference(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.net_force(), [0.0, 0.5, 0.0]);
        assert_eq!(a.max_force_component(), 1.0);
    }
}
