//! Spatial domain decomposition with ghost-atom exchange.
//!
//! LAMMPS parallelizes across nodes with an MPI domain decomposition; the
//! paper's single-node and cluster measurements (Figs. 5, 8, 9) run on top of
//! it unchanged. This module reproduces the same structure in-process: the
//! box is split into a grid of sub-domains ("ranks"), each rank owns the
//! atoms inside its sub-domain, receives ghost copies of all atoms within the
//! interaction cutoff of its boundary (with periodic images), computes forces
//! for its own atoms, and finally the partial forces accumulated on ghost
//! copies are folded back onto the owning rank (the "reverse communication"
//! of LAMMPS' newton-on mode, which the three-body force terms require).
//!
//! Ranks can be processed sequentially (deterministic, used by the
//! equivalence tests) or concurrently with scoped threads.

use crate::atom::AtomData;
use crate::neighbor::{NeighborList, NeighborSettings};
use crate::potential::{ComputeOutput, Potential};
use crate::runtime::{DisjointSlice, ParallelRuntime};
use crate::simbox::SimBox;
use crate::timer::{Stage, Timers};
use std::collections::HashMap;

/// One rank's share of the system.
#[derive(Clone, Debug)]
pub struct RankDomain {
    /// Rank index (row-major over the grid).
    pub rank: usize,
    /// Grid coordinate of this rank.
    pub coord: [usize; 3],
    /// The spatial sub-domain owned by this rank.
    pub domain: SimBox,
    /// Local + ghost atoms of this rank.
    pub atoms: AtomData,
    /// Force-computation output of the last call.
    pub output: ComputeOutput,
    /// This rank's neighbor list (rebuilt in place by
    /// [`DecomposedSystem::compute_forces`], reusing its storage).
    pub list: NeighborList,
}

/// A decomposed system.
pub struct DecomposedSystem {
    /// The global periodic box.
    pub global_box: SimBox,
    /// Decomposition grid (ranks per dimension).
    pub grid: [usize; 3],
    /// Per-rank domains.
    pub ranks: Vec<RankDomain>,
    /// Ghost cutoff used by the last exchange.
    pub ghost_cutoff: f64,
    /// Aggregated communication/neighbor/force timers.
    pub timers: Timers,
    /// The shared runtime ghost exchange dispatches through (serial unless
    /// [`DecomposedSystem::use_runtime`] hands one in).
    runtime: ParallelRuntime,
    /// Reusable snapshot of all owned atoms `(id, type, position, owner)`,
    /// rebuilt in place by every exchange so the steady state allocates
    /// nothing.
    snapshot: Vec<(u64, usize, [f64; 3], usize)>,
}

impl DecomposedSystem {
    /// Total number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Decompose a single-domain system onto a grid of ranks. Atoms are
    /// assigned to the rank whose sub-domain contains them.
    pub fn new(atoms: &AtomData, global_box: SimBox, grid: [usize; 3]) -> Self {
        assert!(grid.iter().all(|&g| g >= 1), "grid dimensions must be >= 1");
        assert_eq!(atoms.n_ghost(), 0, "decompose from a ghost-free system");

        let mut ranks = Vec::new();
        for ix in 0..grid[0] {
            for iy in 0..grid[1] {
                for iz in 0..grid[2] {
                    let coord = [ix, iy, iz];
                    let rank = Self::rank_index(grid, coord);
                    ranks.push(RankDomain {
                        rank,
                        coord,
                        domain: global_box.subdomain(grid, coord),
                        atoms: AtomData::new(),
                        output: ComputeOutput::default(),
                        list: NeighborList::default(),
                    });
                }
            }
        }
        ranks.sort_by_key(|r| r.rank);

        let lengths = global_box.lengths();
        for i in 0..atoms.n_local {
            let p = global_box.wrap(atoms.x[i]);
            let mut coord = [0usize; 3];
            for d in 0..3 {
                let rel = (p[d] - global_box.lo[d]) / lengths[d];
                coord[d] = ((rel * grid[d] as f64).floor() as usize).min(grid[d] - 1);
            }
            let rank = Self::rank_index(grid, coord);
            ranks[rank]
                .atoms
                .push_local(p, atoms.v[i], atoms.type_[i], atoms.id[i]);
        }

        DecomposedSystem {
            global_box,
            grid,
            ranks,
            ghost_cutoff: 0.0,
            timers: Timers::new(),
            runtime: ParallelRuntime::serial(),
            snapshot: Vec::new(),
        }
    }

    /// Dispatch ghost exchange through (a handle to) `runtime` — the same
    /// shared pool a simulation's force engine and integrator run on.
    pub fn use_runtime(&mut self, runtime: &ParallelRuntime) {
        self.runtime = runtime.clone();
    }

    /// The runtime ghost exchange dispatches through.
    pub fn runtime(&self) -> &ParallelRuntime {
        &self.runtime
    }

    fn rank_index(grid: [usize; 3], coord: [usize; 3]) -> usize {
        coord[0] * grid[1] * grid[2] + coord[1] * grid[2] + coord[2]
    }

    /// Exchange ghost atoms: every rank receives a copy of every atom (from
    /// any rank, including periodic images of its own atoms) that lies within
    /// `cutoff` of its sub-domain. Ghost positions are stored already shifted
    /// by the periodic image vector so that rank-local computations never
    /// need to apply minimum-image corrections.
    ///
    /// Ranks build their ghost lists concurrently on the shared runtime
    /// (each rank writes only its own atom storage while reading the shared
    /// owned-atom snapshot), and each rank's list is assembled in a fixed
    /// scan order — the exchange is bitwise identical for any thread count.
    /// All buffers (the snapshot and every rank's ghost storage) are reused
    /// across exchanges, so the steady state performs no heap allocation
    /// (audited by `tests/alloc_free.rs`).
    pub fn exchange_ghosts(&mut self, cutoff: f64) {
        assert!(cutoff > 0.0);
        self.ghost_cutoff = cutoff;
        let lengths = self.global_box.lengths();
        let periodic = self.global_box.periodic;
        let grid = self.grid;

        // Snapshot of all owned atoms (id, type, position, owner rank),
        // rebuilt into the retained buffer.
        self.snapshot.clear();
        for r in &mut self.ranks {
            r.atoms.clear_ghosts();
            for i in 0..r.atoms.n_local {
                self.snapshot
                    .push((r.atoms.id[i], r.atoms.type_[i], r.atoms.x[i], r.rank));
            }
        }

        // Periodic image shifts per dimension: ±L and 0 where periodic,
        // just 0 otherwise (fixed-size, no per-call allocation).
        let shifts_for = |d: usize| -> ([f64; 3], usize) {
            if periodic[d] && grid[d] >= 1 {
                ([-lengths[d], 0.0, lengths[d]], 3)
            } else {
                ([0.0, 0.0, 0.0], 1)
            }
        };
        let (sx, sy, sz) = (shifts_for(0), shifts_for(1), shifts_for(2));

        let start = std::time::Instant::now();
        let DecomposedSystem {
            ranks,
            snapshot,
            runtime,
            ..
        } = self;
        let all: &[(u64, usize, [f64; 3], usize)] = snapshot;
        let n_ranks = ranks.len();
        {
            let ranks = DisjointSlice::new(ranks);
            runtime.par_parts(n_ranks, |range| {
                for k in range {
                    // SAFETY: participant rank ranges are disjoint.
                    let r = unsafe { ranks.get_mut(k) };
                    let lo = r.domain.lo;
                    let hi = r.domain.hi;
                    for &(id, type_, x, owner) in all {
                        for &dx in &sx.0[..sx.1] {
                            for &dy in &sy.0[..sy.1] {
                                for &dz in &sz.0[..sz.1] {
                                    let img = [x[0] + dx, x[1] + dy, x[2] + dz];
                                    // Skip the atom's own primary copy on
                                    // its own rank.
                                    if owner == r.rank && dx == 0.0 && dy == 0.0 && dz == 0.0 {
                                        continue;
                                    }
                                    // Within `cutoff` of this sub-domain?
                                    let mut inside = true;
                                    for d in 0..3 {
                                        let p = img[d];
                                        if p < lo[d] - cutoff || p > hi[d] + cutoff {
                                            inside = false;
                                            break;
                                        }
                                    }
                                    if inside {
                                        r.atoms.push_ghost(img, type_, id);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        self.timers.add(Stage::Comm, start.elapsed());
    }

    /// Compute forces on every rank with a freshly constructed potential per
    /// rank, then fold the partial forces accumulated on ghost atoms back
    /// onto the owning rank's local copy (reverse communication).
    ///
    /// Neighbor settings use the potential's cutoff with the given skin; the
    /// ghost exchange must have been performed with at least
    /// `cutoff + skin`.
    pub fn compute_forces<P: Potential>(&mut self, make_potential: impl Fn() -> P, skin: f64) {
        let mut potential = make_potential();
        let settings = NeighborSettings::new(potential.cutoff(), skin);
        assert!(
            self.ghost_cutoff + 1e-12 >= settings.build_cutoff(),
            "ghost exchange cutoff {} is smaller than neighbor cutoff {}",
            self.ghost_cutoff,
            settings.build_cutoff()
        );

        // Per-rank force computation. Ranks run sequentially, but each
        // rank's neighbor rebuild dispatches through the shared runtime
        // (and reuses the rank's CRS/bin storage in place), and a threaded
        // potential parallelizes within the rank.
        let DecomposedSystem {
            ranks,
            global_box,
            timers,
            runtime,
            ..
        } = self;
        for r in ranks.iter_mut() {
            let atoms = &r.atoms;
            let list = &mut r.list;
            timers.time(Stage::Neighbor, || {
                list.rebuild_on(atoms, global_box, settings, runtime)
            });
            r.output.reset(atoms.n_total());
            let out = &mut r.output;
            let list = &r.list;
            timers.time(Stage::Force, || {
                potential.compute(atoms, global_box, list, out);
            });
        }

        // Reverse communication: ghost forces go back to the owner.
        let start = std::time::Instant::now();
        let mut ghost_contributions: HashMap<u64, [f64; 3]> = HashMap::new();
        for r in &self.ranks {
            for g in r.atoms.n_local..r.atoms.n_total() {
                let f = r.output.forces[g];
                if f == [0.0; 3] {
                    continue;
                }
                let entry = ghost_contributions.entry(r.atoms.id[g]).or_insert([0.0; 3]);
                for d in 0..3 {
                    entry[d] += f[d];
                }
            }
        }
        for r in &mut self.ranks {
            for i in 0..r.atoms.n_local {
                if let Some(extra) = ghost_contributions.get(&r.atoms.id[i]) {
                    for d in 0..3 {
                        r.output.forces[i][d] += extra[d];
                    }
                }
            }
        }
        self.timers.add(Stage::Comm, start.elapsed());
    }

    /// Total potential energy over all ranks.
    pub fn total_energy(&self) -> f64 {
        self.ranks.iter().map(|r| r.output.energy).sum()
    }

    /// Total number of locally owned atoms over all ranks.
    pub fn total_local_atoms(&self) -> usize {
        self.ranks.iter().map(|r| r.atoms.n_local).sum()
    }

    /// Collect the force on every owned atom, keyed by atom id.
    pub fn collect_forces(&self) -> HashMap<u64, [f64; 3]> {
        let mut map = HashMap::new();
        for r in &self.ranks {
            for i in 0..r.atoms.n_local {
                map.insert(r.atoms.id[i], r.output.forces[i]);
            }
        }
        map
    }

    /// Per-rank owned-atom counts — the load-balance view.
    pub fn atoms_per_rank(&self) -> Vec<usize> {
        self.ranks.iter().map(|r| r.atoms.n_local).collect()
    }

    /// Fraction of total atom copies that are ghosts — a proxy for the
    /// communication volume that grows as domains shrink (the surface-to-
    /// volume effect behind the strong-scaling curve of Fig. 9).
    pub fn ghost_fraction(&self) -> f64 {
        let local: usize = self.ranks.iter().map(|r| r.atoms.n_local).sum();
        let ghost: usize = self.ranks.iter().map(|r| r.atoms.n_ghost()).sum();
        if local + ghost == 0 {
            0.0
        } else {
            ghost as f64 / (local + ghost) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::pair_lj::LennardJones;

    fn reference_forces(
        atoms: &AtomData,
        sim_box: &SimBox,
        skin: f64,
    ) -> (HashMap<u64, [f64; 3]>, f64) {
        let mut lj = LennardJones::new(0.1, 2.0, 4.0);
        let list =
            NeighborList::build_binned(atoms, sim_box, NeighborSettings::new(lj.cutoff(), skin));
        let mut out = ComputeOutput::zeros(atoms.n_total());
        lj.compute(atoms, sim_box, &list, &mut out);
        let mut map = HashMap::new();
        for i in 0..atoms.n_local {
            map.insert(atoms.id[i], out.forces[i]);
        }
        (map, out.energy)
    }

    #[test]
    fn decomposition_partitions_all_atoms() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.02, 5);
        let dec = DecomposedSystem::new(&atoms, b, [2, 2, 1]);
        assert_eq!(dec.n_ranks(), 4);
        assert_eq!(dec.total_local_atoms(), atoms.n_local);
        // Every rank owns a roughly equal share of a homogeneous crystal.
        for &n in &dec.atoms_per_rank() {
            assert!(n > 0);
        }
    }

    #[test]
    fn ghosts_cover_the_halo() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build();
        let mut dec = DecomposedSystem::new(&atoms, b, [2, 2, 2]);
        dec.exchange_ghosts(4.2);
        for r in &dec.ranks {
            assert!(r.atoms.n_ghost() > 0, "rank {} has no ghosts", r.rank);
        }
        assert!(dec.ghost_fraction() > 0.0 && dec.ghost_fraction() < 1.0);
    }

    #[test]
    fn decomposed_forces_match_single_domain() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build_perturbed(0.05, 17);
        let skin = 0.5;
        let (reference, ref_energy) = reference_forces(&atoms, &b, skin);

        for grid in [[2, 1, 1], [2, 2, 1], [2, 2, 2]] {
            let mut dec = DecomposedSystem::new(&atoms, b, grid);
            dec.exchange_ghosts(4.0 + skin);
            dec.compute_forces(|| LennardJones::new(0.1, 2.0, 4.0), skin);

            assert!(
                (dec.total_energy() - ref_energy).abs() < 1e-9,
                "grid {grid:?}: energy {} vs {}",
                dec.total_energy(),
                ref_energy
            );
            let forces = dec.collect_forces();
            assert_eq!(forces.len(), reference.len());
            for (id, f_ref) in &reference {
                let f = forces[id];
                for d in 0..3 {
                    assert!(
                        (f[d] - f_ref[d]).abs() < 1e-9,
                        "grid {grid:?}, atom {id}, dim {d}: {} vs {}",
                        f[d],
                        f_ref[d]
                    );
                }
            }
        }
    }

    #[test]
    fn ghost_fraction_grows_with_rank_count() {
        let (b, atoms) = Lattice::silicon([4, 4, 4]).build();
        let mut one = DecomposedSystem::new(&atoms, b, [1, 1, 1]);
        one.exchange_ghosts(4.2);
        let mut eight = DecomposedSystem::new(&atoms, b, [2, 2, 2]);
        eight.exchange_ghosts(4.2);
        assert!(eight.ghost_fraction() > one.ghost_fraction());
    }

    #[test]
    #[should_panic(expected = "ghost exchange cutoff")]
    fn compute_without_sufficient_ghosts_panics() {
        let (b, atoms) = Lattice::silicon([2, 2, 2]).build();
        let mut dec = DecomposedSystem::new(&atoms, b, [2, 1, 1]);
        dec.exchange_ghosts(1.0);
        dec.compute_forces(|| LennardJones::new(0.1, 2.0, 4.0), 0.5);
    }

    #[test]
    fn comm_time_is_recorded() {
        let (b, atoms) = Lattice::silicon([3, 3, 3]).build();
        let mut dec = DecomposedSystem::new(&atoms, b, [2, 2, 1]);
        dec.exchange_ghosts(4.2);
        dec.compute_forces(|| LennardJones::new(0.1, 2.0, 4.0), 0.2);
        assert!(dec.timers.seconds(Stage::Comm) > 0.0);
        assert!(dec.timers.seconds(Stage::Force) > 0.0);
    }
}
